//! E19 — overload and recovery in the concurrent allocation service
//! (extension).
//!
//! The paper's machines degrade gracefully on one thread; this
//! experiment asks the same of the *service*. A tenant grid offers more
//! storage than the striped arena holds — tenants × offered load, with
//! priorities striped across tenants — once with the service bare and
//! once behind the `OverloadGuard`. Without admission control the
//! arena fills and every class fails alike (collapse: the highest
//! priority is exactly as dead as the lowest). With the guard, low
//! classes are refused at the door past the occupancy watermarks and
//! the degradation ladder (retry → coalesce → compact-and-steal → shed
//! lowest-priority tenants) keeps serving the top class — graceful
//! saturation, measured per class.
//!
//! Every grid cell is a deterministic single-threaded replay, so the
//! whole table is byte-identical at any `--jobs` width (the flag fans
//! the *cells*, never the traffic). The multithreaded sections print
//! only verdicts — books that reconcile exactly are the same words at
//! any interleaving — and `--chaos` adds deterministic fault injection:
//! forced allocation failures, channel delays, and shard corruption
//! that is quarantined and healed under live traffic, with a fault
//! schedule that is a pure function of (seed, stream).

use dsa_arena::{ArenaService, OverloadConfig, Priority, Request, Response, Tenant};
use dsa_bench::metrics::RunMetrics;
use dsa_exec::{cli, par_map, product2};
use dsa_faults::{FaultConfig, SyncFaultInjector};
use dsa_freelist::Placement;
use dsa_metrics::table::Table;
use dsa_telemetry::FlightRecorder;
use dsa_trace::rng::Rng64;

/// Words per shard; the shard *count* comes from `--shards`
/// (default 4, the golden configuration), derived once in `main` and
/// threaded everywhere as [`Geometry`].
const SHARD_WORDS: u64 = 4096;

/// Striped-arena geometry for the grid cells — the one place capacity
/// and offered load derive from the shard count.
#[derive(Clone, Copy)]
struct Geometry {
    shards: u32,
    shard_words: u64,
}

impl Geometry {
    fn capacity(self) -> u64 {
        u64::from(self.shards) * self.shard_words
    }

    /// Offered load per cell, as words requested: past twice the
    /// capacity, so every cell runs deep into overload.
    fn offered_target(self) -> u64 {
        self.capacity() * 22 / 10
    }
}

/// The priority a tenant index allocates at: striped Low / Normal /
/// High so every class is present (from three tenants up) and the
/// per-class fates are comparable across cells.
fn tenant_priority(i: u32) -> Priority {
    match i % 3 {
        0 => Priority::Low,
        1 => Priority::Normal,
        _ => Priority::High,
    }
}

fn class_index(p: Priority) -> usize {
    match p {
        Priority::Low => 0,
        Priority::Normal => 1,
        Priority::High => 2,
    }
}

/// One cell's outcome, per priority class.
struct CellOut {
    attempts: [u64; 3],
    ok: [u64; 3],
    quota_denials: u64,
    admission_rejects: u64,
    sheds: u64,
}

/// Builds the cell's service: low/normal tenants get quotas of
/// 1.2 × C ∕ t (oversubscribing the arena, so storage — not the quota —
/// is the binding constraint), while high-priority tenants are surge
/// clients with 3 × C ∕ t: more than the watermarks can ever clear, so
/// serving them forces the guard all the way down the ladder to the
/// shed rung. Guarded or bare.
/// Arms the arena's quick lists when `--quick-lists` was passed — an
/// opt-in accelerator for the recurring tenant block sizes. The
/// acknowledgment goes to stderr (in `main`), never stdout, so the
/// golden output is byte-identical with the flag absent.
fn arm_quick(svc: ArenaService) -> ArenaService {
    if cli::quick_lists_from_env() {
        svc.with_quick_lists(64, 16)
    } else {
        svc
    }
}

fn cell_service(geo: Geometry, tenants: u32, guarded: bool) -> ArenaService {
    let mut svc = arm_quick(ArenaService::striped(
        geo.shards,
        geo.shard_words,
        Placement::FirstFit,
    ));
    if guarded {
        svc = svc.with_overload(OverloadConfig {
            shed_budget: 1024,
            ..OverloadConfig::default()
        });
    }
    for i in 0..tenants {
        let p = tenant_priority(i);
        let quota = match p {
            Priority::High => geo.capacity() * 30 / (10 * u64::from(tenants)),
            _ => geo.capacity() * 12 / (10 * u64::from(tenants)),
        };
        svc.register_tenant(Tenant::with_priority(i, p), quota);
    }
    svc
}

/// Drives one grid cell: tenants take turns offering blocks, each
/// working toward a live set of 1.1 × C ∕ t words — individually under
/// quota, but summed to 110% of the arena, so the binding constraint is
/// the storage itself and the cell runs in perpetual mild overload.
/// Tenants free their own oldest blocks to stay at their target, which
/// keeps churn (and fragmentation for the coalesce/compact rungs) in
/// the hole pattern. Single-threaded and seeded per cell — a pure
/// function of the coordinates.
fn drive_cell(svc: &ArenaService, geo: Geometry, tenants: u32) -> CellOut {
    let mut rng = Rng64::new(0xE19_0000 + u64::from(tenants));
    let mut live: Vec<Vec<(u64, u64)>> = vec![Vec::new(); tenants as usize];
    let mut live_words: Vec<u64> = vec![0; tenants as usize];
    let target_for = |t: u32| match tenant_priority(t) {
        Priority::High => geo.capacity() * 28 / (10 * u64::from(tenants)),
        _ => geo.capacity() * 11 / (10 * u64::from(tenants)),
    };
    let mut next_id = 0u64;
    let mut offered = 0u64;
    let mut out = CellOut {
        attempts: [0; 3],
        ok: [0; 3],
        quota_denials: 0,
        admission_rejects: 0,
        sheds: 0,
    };
    'offer: loop {
        for t in 0..tenants {
            if offered >= geo.offered_target() {
                break 'offer;
            }
            let slot = t as usize;
            let words = 16 + rng.next_u64() % 48;
            // Stay at the target live set: free own blocks (random
            // members, so holes scatter) until the new block would fit.
            while live_words[slot] + words > target_for(t) && !live[slot].is_empty() {
                let i = (rng.next_u64() as usize) % live[slot].len();
                let (id, freed) = live[slot].swap_remove(i);
                live_words[slot] -= freed;
                let _ = svc.submit(&[Request::free(id)]);
            }
            offered += words;
            let tn = Tenant::with_priority(t, tenant_priority(t));
            let cls = class_index(tn.priority);
            out.attempts[cls] += 1;
            let id = next_id;
            next_id += 1;
            match svc.submit(&[Request::alloc_as(id, words, tn)])[0] {
                Response::Allocated { .. } => {
                    out.ok[cls] += 1;
                    live[slot].push((id, words));
                    live_words[slot] += words;
                }
                Response::Freed { .. } | Response::Failed { .. } => {}
            }
        }
    }
    svc.check_reconciliation();
    for occ in svc.tenant_occupancy() {
        out.quota_denials += occ.quota_denials;
        out.sheds += occ.shed;
    }
    out.admission_rejects = svc
        .guard()
        .map_or(0, dsa_arena::OverloadGuard::admission_rejects);
    out
}

fn pct(ok: u64, attempts: u64) -> String {
    if attempts == 0 {
        "-".to_owned()
    } else {
        format!("{:.1}%", ok as f64 * 100.0 / attempts as f64)
    }
}

/// A deterministic churn stream for the multithreaded sections: grow a
/// bounded live set as `tenant`, free random members, drain at the end.
/// Pre-generated, so a worker's requests (and with `--chaos` its
/// injector rolls) never depend on what other workers did.
fn churn_stream(worker: u64, tenant: Tenant, ops: usize) -> Vec<Request> {
    let mut rng = Rng64::new(0xE19_C0DE + worker);
    let mut live: Vec<u64> = Vec::new();
    let mut next = 0u64;
    let mut out = Vec::with_capacity(ops + 128);
    for _ in 0..ops {
        let grow = live.len() < 8 || (live.len() < 96 && rng.next_u64() % 100 < 55);
        if grow {
            let id = (worker << 40) | next;
            next += 1;
            out.push(Request::alloc_as(id, 8 + rng.next_u64() % 56, tenant));
            live.push(id);
        } else {
            let i = (rng.next_u64() as usize) % live.len();
            out.push(Request::free(live.swap_remove(i)));
        }
    }
    // Drain everything the stream ever allocated — frees of ids whose
    // alloc failed (or that the ladder shed) answer Failed, harmlessly.
    for id in live {
        out.push(Request::free(id));
    }
    out
}

/// A guarded 4-tenant service for the multithreaded sections.
fn mt_service(geo: Geometry, tenants: u32) -> ArenaService {
    let mut svc = arm_quick(ArenaService::striped(
        geo.shards,
        geo.shard_words,
        Placement::FirstFit,
    ));
    svc = svc.with_overload(OverloadConfig::default());
    for i in 0..tenants {
        svc.register_tenant(
            Tenant::with_priority(i, tenant_priority(i)),
            geo.capacity() / 3,
        );
    }
    svc
}

fn yes(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "NO"
    }
}

fn main() {
    cli::enforce_standard_flags("exp_19_overload", &[cli::CHAOS, cli::SHARDS]);
    let chaos = cli::switch_from_env(cli::CHAOS);
    if cli::quick_lists_from_env() {
        eprintln!("exp_19_overload: arena quick lists armed (max 64 words, depth 16)");
    }
    let jobs = cli::jobs_from_env();
    let geo = Geometry {
        shards: cli::shards_or(4) as u32,
        shard_words: SHARD_WORDS,
    };
    let (shards, shard_words, capacity, offered) = (
        geo.shards,
        geo.shard_words,
        geo.capacity(),
        geo.offered_target(),
    );
    let mut metrics = RunMetrics::new("exp_19_overload");
    println!("E19: overload-hardened service — collapse vs graceful saturation\n");
    println!(
        "striped arena: {shards} shards x {shard_words} words = {capacity} words; every cell \
         offers {offered} words\n(2.2x capacity) from t tenants with priorities striped \
         low/normal/high and\nquotas of 1.2 x C/t (low/normal, live target 1.1 x C/t) — except \
         the high\nclass, surge clients at 3 x C/t whose appetite only the shed rung can\n\
         clear; cells are single-threaded deterministic replays (no high tenant\n\
         exists below three tenants)\n"
    );

    // Part 1: the tenant grid, bare vs guarded.
    let cells: Vec<(u32, bool)> = product2(&[2u32, 4, 8, 16], &[false, true]);
    let outs = par_map(jobs, &cells, |_, &(tenants, guarded)| {
        let svc = cell_service(geo, tenants, guarded);
        drive_cell(&svc, geo, tenants)
    });
    let mut t = Table::new(&[
        "tenants",
        "mode",
        "attempts",
        "ok",
        "adm rejects",
        "quota denials",
        "sheds",
        "low ok",
        "top ok",
        "books",
    ])
    .with_title("offered load 2.2x capacity, per-class fates");
    for (&(tenants, guarded), out) in cells.iter().zip(&outs) {
        let attempts: u64 = out.attempts.iter().sum();
        let ok: u64 = out.ok.iter().sum();
        // The top class present: High from three tenants up, else the
        // best of what the stripe produced.
        let top = (0..3).rev().find(|&c| out.attempts[c] > 0).unwrap_or(0);
        t.row_owned(vec![
            tenants.to_string(),
            if guarded { "guarded" } else { "bare" }.to_owned(),
            attempts.to_string(),
            ok.to_string(),
            out.admission_rejects.to_string(),
            out.quota_denials.to_string(),
            out.sheds.to_string(),
            pct(out.ok[0], out.attempts[0]),
            pct(out.ok[top], out.attempts[top]),
            "exact".to_owned(),
        ]);
    }
    println!("{t}");
    metrics.table("overload_grid", &t);
    println!(
        "bare: past the fill the arena answers Exhausted to every class alike —\n\
         the top class collapses with the bottom. guarded: low and normal are\n\
         refused at the watermarks and the shed rung evicts low-priority blocks,\n\
         so the top class keeps landing while the books stay exact.\n"
    );

    // Part 2: a shed postmortem. A tiny guarded arena is filled by a
    // low-priority tenant until admission closes, then one high-priority
    // request arrives that only the ladder can serve. The flight
    // recorder rides the submit and shows the ladder's actual steps.
    let recorder =
        dsa_bench::metrics::flight_recorder_from_env().unwrap_or_else(|| FlightRecorder::new(64));
    let mut handle = recorder.handle();
    let mut showcase =
        ArenaService::striped(2, 512, Placement::FirstFit).with_overload(OverloadConfig::default());
    let low = Tenant::with_priority(0, Priority::Low);
    let high = Tenant::with_priority(1, Priority::High);
    showcase.register_tenant(low, 1024);
    showcase.register_tenant(high, 1024);
    let mut id = 0u64;
    while let Response::Allocated { .. } =
        showcase.submit_with(&[Request::alloc_as(id, 48, low)], &mut handle)[0]
    {
        id += 1;
    }
    let verdict =
        match &showcase.submit_with(&[Request::alloc_as(1 << 20, 160, high)], &mut handle)[0] {
            Response::Allocated { .. } => "served — the ladder shed low-priority blocks".to_owned(),
            Response::Failed { error, .. } => format!("failed ({error})"),
            Response::Freed { .. } => unreachable!("an alloc request cannot answer Freed"),
        };
    showcase.check_reconciliation();
    println!("shed postmortem: low tenant fills 2x512 words, then one 160-word high alloc");
    println!("high-priority alloc: {verdict}");
    println!("{}", recorder.postmortem(14));
    showcase.export_into(metrics.snapshot());

    // Part 3: multithreaded reconciliation. Four workers (fixed — the
    // `--jobs` flag fans grid cells, never this traffic) churn one
    // guarded service as four tenants; only interleaving-independent
    // verdicts are printed.
    let svc = mt_service(geo, 4);
    let streams: Vec<Vec<Request>> = (0..4u64)
        .map(|w| {
            churn_stream(
                w,
                Tenant::with_priority(w as u32, tenant_priority(w as u32)),
                5000,
            )
        })
        .collect();
    std::thread::scope(|scope| {
        for stream in &streams {
            scope.spawn(|| {
                for batch in stream.chunks(256) {
                    let _ = svc.submit(batch);
                }
            });
        }
    });
    svc.check_reconciliation();
    let drained = svc.occupied() == 0;
    let quotas_zero = svc.tenant_occupancy().iter().all(|o| o.in_use == 0);
    println!("## multithreaded reconciliation (4 workers, guarded, one tenant each)");
    println!("books reconcile exactly after concurrent churn: yes");
    println!("arena drained to zero: {}", yes(drained));
    println!(
        "every tenant's quota occupancy returned to zero: {}\n",
        yes(quotas_zero)
    );

    // Part 4 (--chaos): the same churn under deterministic fault
    // injection. The injector's schedule is a pure function of (seed,
    // stream) — rolled unconditionally per request — so the totals
    // below are byte-identical at any thread count and any --jobs.
    if chaos {
        println!("## chaos injection (forced failures, delays, shard corruption)");
        let mut t = Table::new(&[
            "workers",
            "faults",
            "forced fails",
            "delays",
            "corruptions",
            "healed",
            "books",
            "drained",
        ])
        .with_title("fault schedule deterministic per stream; verdicts only");
        for &workers in &[1u64, 2, 8] {
            let svc = mt_service(geo, 8);
            let inj = SyncFaultInjector::new(
                0x19C4A05,
                FaultConfig {
                    alloc_fail_rate: 0.01,
                    channel_delay_rate: 0.005,
                    channel_delay: dsa_core::clock::Cycles::from_micros(20),
                    shard_corruption_rate: 0.002,
                    burst_len: 1,
                    ..FaultConfig::default()
                },
            );
            let streams: Vec<Vec<Request>> = (0..workers)
                .map(|w| {
                    churn_stream(
                        w,
                        Tenant::with_priority(w as u32, tenant_priority(w as u32)),
                        4000,
                    )
                })
                .collect();
            std::thread::scope(|scope| {
                for (w, stream) in streams.iter().enumerate() {
                    let inj = &inj;
                    let svc = &svc;
                    scope.spawn(move || {
                        let mut worker = inj.worker(w as u64);
                        for batch in stream.chunks(256) {
                            let _ = svc.submit_chaos(batch, &mut worker, &mut dsa_probe::NullProbe);
                        }
                    });
                }
            });
            let report = inj.report();
            svc.check_reconciliation();
            let arena = svc.arena().expect("striped service has an arena");
            arena.check_invariants();
            let healed = arena.quarantined_count() == 0;
            t.row_owned(vec![
                workers.to_string(),
                report.faults_injected.to_string(),
                report.forced_alloc_failures.to_string(),
                report.channel_delays.to_string(),
                report.shard_corruptions.to_string(),
                if healed { "all" } else { "SOME LEFT" }.to_owned(),
                "exact".to_owned(),
                yes(svc.occupied() == 0).to_owned(),
            ]);
        }
        println!("{t}");
        metrics.table("chaos_verdicts", &t);
        println!(
            "every corruption was quarantined, rebuilt from the live-allocation\n\
             book, audited and readmitted under traffic; the books reconcile\n\
             exactly through all of it.\n"
        );
    }
    metrics.emit();
}
