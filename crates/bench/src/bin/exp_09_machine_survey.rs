//! E9 — the appendix survey, measured.
//!
//! One phase-structured program runs on all seven machines; the output
//! is the appendix as a table: each machine's position on the four
//! characteristic axes, then what actually happened — faults, traffic,
//! addressing overhead, bounds interception.

use dsa_bench::workloads::survey_program_cfg;
use dsa_exec::{jobs_from_env, SimGrid};
use dsa_machines::presets::{favoured, machine_by_index, machine_count};
use dsa_machines::report::Machine;
use dsa_metrics::table::Table;
use dsa_trace::rng::Rng64;

fn main() {
    dsa_exec::cli::enforce_standard_flags("exp_09_machine_survey", &[]);
    let mut metrics = dsa_bench::metrics::RunMetrics::new("exp_09_machine_survey");
    println!("E9: the seven appendix machines under one workload\n");
    let mut rng = Rng64::new(9);
    let mut cfg = survey_program_cfg();
    cfg.wild_touch_prob = 0.002;
    let program = cfg.generate(&mut rng);
    println!(
        "workload: {} segments, {} declared words, {} touches (0.2% wild)\n",
        cfg.segments,
        program.total_declared_words(),
        program.touch_count()
    );

    let mut chars = Table::new(&["machine", "name space", "predictive", "contiguity", "unit"])
        .with_title("the four characteristics (paper's classification)");
    let mut results = Table::new(&[
        "machine",
        "faults",
        "fault rate",
        "words in",
        "words out",
        "ns/touch map",
        "bounds caught",
        "wild missed",
        "fetch wait",
    ])
    .with_title("measured on the survey workload");
    // Each machine runs the shared workload independently: the seven
    // appendix presets plus the authors' favoured combination. Machines
    // are built inside their cell (they are stateful), then both rows
    // are returned together and emitted in grid order.
    let grid = SimGrid::new((0..=machine_count()).collect::<Vec<_>>());
    for (chars_row, results_row) in grid.run(jobs_from_env(), |_, &i| {
        let mut m: Box<dyn Machine> = if i < machine_count() {
            machine_by_index(i)
        } else {
            Box::new(favoured())
        };
        let c = m.characteristics();
        let chars_row = vec![
            m.name().to_owned(),
            c.name_space.label().to_owned(),
            c.predictive.label().to_owned(),
            c.contiguity.label().to_owned(),
            c.unit.label().to_owned(),
        ];
        let r = m
            .run(&program.ops)
            .expect("survey workload runs everywhere");
        let results_row = vec![
            m.name().to_owned(),
            r.faults.to_string(),
            format!("{:.4}", r.fault_rate()),
            r.fetched_words.to_string(),
            r.writeback_words.to_string(),
            format!("{:.0}", r.mean_map_overhead_nanos()),
            r.bounds_caught.to_string(),
            r.wild_undetected.to_string(),
            r.fetch_time.to_string(),
        ];
        (chars_row, results_row)
    }) {
        chars.row_owned(chars_row);
        results.row_owned(results_row);
    }
    println!("{chars}");
    println!("{results}");
    metrics.table("survey", &results);
    metrics.emit();
    println!(
        "things to see: the segmented machines (B5000, Rice, B8500,\n\
         MULTICS) intercept every wild subscript while the linear and\n\
         packed-segment machines let them through; the Rice machine pays\n\
         its tape latency on every segment fault; the B8500's associative\n\
         memory undercuts the B5000's descriptor-access overhead; the big\n\
         cores (M44, 360/67, MULTICS) fault only on first touch. the\n\
         eighth row is the combination the authors themselves favoured —\n\
         no 1967 machine built it, but the components compose it: symbolic\n\
         segments with full bounds interception, advice accepted, cheap\n\
         cached descriptor access, and large segments in separate blocks."
    );
}
