//! E13 — segmentation advantage (iii): automatic interception of
//! illegal subscripts.
//!
//! "Each array used by a program can be specified to be a separate
//! segment in order that attempted violations of the array bounds can be
//! intercepted." A name space that carries per-object structure traps a
//! wild subscript at the limit check (special hardware facility (ii));
//! a linear name space lets it land in the neighbouring object's names.
//! We inject a known rate of wild touches and watch each machine's
//! interception rate, and price the check itself.

use dsa_bench::workloads::survey_program_cfg;
use dsa_exec::{jobs_from_env, SimGrid};
use dsa_machines::presets::{machine_by_index, machine_count};
use dsa_metrics::table::Table;
use dsa_trace::rng::Rng64;

fn main() {
    dsa_exec::cli::enforce_standard_flags("exp_13_bounds", &[]);
    let mut metrics = dsa_bench::metrics::RunMetrics::new("exp_13_bounds");
    println!("E13: bounds checking across the seven machines\n");
    let mut cfg = survey_program_cfg();
    cfg.wild_touch_prob = 0.01; // 1% of touches are illegal subscripts
    cfg.touches = 20_000;
    let program = cfg.generate(&mut Rng64::new(13));
    let wild_expected: u64 = (program.touch_count() as f64 * 0.01).round() as u64;

    let mut t = Table::new(&[
        "machine",
        "wild caught",
        "wild missed",
        "interception",
        "ns/touch map cost",
    ])
    .with_title(&format!(
        "~{wild_expected} wild touches injected among {} touches",
        program.touch_count()
    ));
    // One independent cell per machine, built inside its cell.
    let grid = SimGrid::new((0..machine_count()).collect::<Vec<_>>());
    for row in grid.run(jobs_from_env(), |_, &i| {
        let mut m = machine_by_index(i);
        let r = m.run(&program.ops).expect("workload runs everywhere");
        let wild_total = r.bounds_caught + r.wild_undetected;
        let interception = if wild_total == 0 {
            0.0
        } else {
            r.bounds_caught as f64 / wild_total as f64
        };
        vec![
            m.name().to_owned(),
            r.bounds_caught.to_string(),
            r.wild_undetected.to_string(),
            format!("{:.0}%", interception * 100.0),
            format!("{:.0}", r.mean_map_overhead_nanos()),
        ]
    }) {
        t.row_owned(row);
    }
    println!("{t}");
    metrics.table("bounds", &t);
    metrics.emit();
    println!(
        "the per-object segmented machines intercept every violation; the\n\
         linear machines (ATLAS, M44) intercept none — a wild subscript\n\
         simply reads someone else's words; the 360/67, though segmented\n\
         in hardware, packs objects into one big segment and so inherits\n\
         the linear machines' blindness. the check itself costs nothing\n\
         extra: it rides the same descriptor/limit access the mapping\n\
         already performs."
    );
}
