//! E6 — §Uniformity of Unit of Storage Allocation: paging obscures
//! fragmentation, and the page size is a genuine dilemma.
//!
//! Two measurements:
//!
//! 1. **Space**: for a realistic population of request sizes, the words
//!    lost *inside* pages (internal fragmentation) plus the words the
//!    page tables occupy, across page sizes — the paper's "if it is too
//!    small, there will be an unacceptable amount of overhead. If it is
//!    too large, too much space will be wasted". The MULTICS 64+1024
//!    mix is included (conclusion (v) and A.6).
//! 2. **Faults**: the same word-granular reference string evaluated on
//!    a fixed 16K-word working storage at each page size — large pages
//!    waste capacity on words never touched; tiny pages multiply the
//!    table and fetch count. One string is generated once; each page
//!    size regroups it with `to_page_trace` and gets its exact LRU
//!    fault count from a single `dsa-stackdist` pass instead of a
//!    machine replay (parity is property-tested in
//!    `tests/properties_stackdist.rs`).

use dsa_core::ids::Words;
use dsa_exec::{jobs_from_env, SimGrid};
use dsa_freelist::frag::{dual_size_waste, paged_overhead};
use dsa_metrics::sparkline::labelled_sparkline;
use dsa_metrics::table::Table;
use dsa_paging::page_size::{frames_for, to_page_trace};
use dsa_stackdist::lru_success;
use dsa_trace::allocstream::SizeDist;
use dsa_trace::rng::Rng64;

fn main() {
    dsa_exec::cli::enforce_standard_flags("exp_06_page_size", &[]);
    let mut metrics = dsa_bench::metrics::RunMetrics::new("exp_06_page_size");
    println!("E6: the page-size dilemma (paging obscures fragmentation)\n");

    // Part 1: space overhead across page sizes.
    let mut rng = Rng64::new(6);
    let dist = SizeDist::Exponential {
        mean: 900.0,
        cap: 16_000,
    };
    let requests: Vec<Words> = (0..2_000).map(|_| dist.sample(&mut rng)).collect();
    let total: Words = requests.iter().sum();
    let mut t = Table::new(&[
        "page size",
        "pages",
        "in-page waste",
        "table words",
        "total overhead",
        "% of data",
    ])
    .with_title(&format!(
        "2000 requests, exponential mean 900 words ({total} data words), 1-word table entries"
    ));
    for page in [16u64, 64, 256, 512, 1024, 4096, 16_384] {
        let o = paged_overhead(&requests, page, 1);
        t.row_owned(vec![
            page.to_string(),
            o.pages.to_string(),
            o.internal_waste.to_string(),
            o.table_words.to_string(),
            o.total().to_string(),
            format!("{:.1}%", o.total() as f64 / total as f64 * 100.0),
        ]);
    }
    // The MULTICS mix: bulk in 1024s, tail in 64s.
    let mut waste = 0;
    let mut pages = 0u64;
    for &r in &requests {
        waste += dual_size_waste(r, 64, 1024);
        let bulk = r / 1024;
        let tail = r - bulk * 1024;
        pages += bulk + tail.div_ceil(64).max(u64::from(tail > 0));
    }
    t.row_owned(vec![
        "64+1024 (MULTICS)".to_owned(),
        pages.to_string(),
        waste.to_string(),
        pages.to_string(),
        (waste + pages).to_string(),
        format!("{:.1}%", (waste + pages) as f64 / total as f64 * 100.0),
    ]);
    println!("{t}");
    metrics.table("space_overhead", &t);

    // Part 2: fault behaviour across page sizes at fixed working
    // storage. The workload scans objects sequentially — 2000 objects of
    // 600 words; each "visit" picks an object with Zipf locality and
    // reads a 100-word run — so page size trades spatial prefetch
    // against frames squandered on unreferenced words.
    let mut rng = Rng64::new(66);
    let n_objects = 2_000u64;
    let object_words = 600u64;
    let mut scaled: Vec<dsa_core::access::Access> = Vec::new();
    while scaled.len() < 120_000 {
        let obj = rng.zipf(n_objects, 1.0);
        let start = rng.below(object_words - 100);
        let base = obj * object_words + start;
        for w in 0..100 {
            scaled.push(dsa_core::access::Access::read(base + w));
        }
    }
    let memory: Words = 16_384;
    // An 8 ms drum latency plus 4 us per word transferred.
    let drum_latency_ns = 8_000_000u64;
    let word_ns = 4_000u64;
    let mut t = Table::new(&[
        "page size",
        "frames",
        "fault rate",
        "faults",
        "total fetch time",
    ])
    .with_title("sequential 100-word runs over 2000 objects, 16K-word storage, LRU, drum timing");
    let mut curve: Vec<f64> = Vec::new();
    let grid = SimGrid::new(vec![16u64, 64, 128, 256, 512, 1024, 2048, 4096]);
    for (fetch_ms, row) in grid.run(jobs_from_env(), |_, &page| {
        let trace = to_page_trace(&scaled, page);
        let frames = frames_for(memory, page);
        let success = lru_success(&trace);
        let faults = success.faults(frames);
        let fetch_ms = faults as f64 * (drum_latency_ns + word_ns * page) as f64 / 1e6;
        (
            fetch_ms,
            vec![
                page.to_string(),
                frames.to_string(),
                format!("{:.4}", success.fault_rate(frames)),
                faults.to_string(),
                format!("{fetch_ms:.0} ms"),
            ],
        )
    }) {
        curve.push(fetch_ms);
        t.row_owned(row);
    }
    println!("{t}");
    metrics.table("fault_behaviour", &t);
    metrics.emit();
    println!(
        "{}\n",
        labelled_sparkline("fetch time vs page size", &curve)
    );
    println!(
        "space: overhead is U-shaped — table words dominate at tiny pages,\n\
         in-page waste at huge ones; the MULTICS two-size mix undercuts\n\
         every uniform size. time: with working storage fixed, total fetch\n\
         time is U-shaped too — tiny pages pay the drum latency once per\n\
         few dozen words of a sequential run, huge pages squander frames\n\
         on unreferenced words until the working set no longer fits."
    );
}
