//! E16 — conclusion (i): storage allocation integrated with scheduling.
//!
//! "A system in which entirely independent decisions are taken as to
//! processor scheduling and storage allocation is unlikely to perform
//! acceptably in any but the most undemanding of environments."
//!
//! A shared pool of frames, one drum channel, and a growing batch of
//! identical phase-structured jobs. The independent scheduler admits
//! every job at once; the integrated one admits jobs only while their
//! working-set estimates (measured beforehand with the working-set
//! simulator — the storage side talking to the scheduling side) fit in
//! core. Past saturation the independent system thrashes; the
//! integrated one runs in shifts.

use dsa_core::clock::Cycles;
use dsa_core::ids::JobId;
use dsa_exec::{jobs_from_env, product2};
use dsa_metrics::table::Table;
use dsa_paging::replacement::lru::LruRepl;
use dsa_paging::replacement::ws::working_set_sim;
use dsa_sched::load_control::{Admission, GlobalJobSpec, GlobalMultiprogramSim};
use dsa_sched::sim::SimConfig;
use dsa_trace::refstring::RefStringCfg;
use dsa_trace::rng::Rng64;

const FRAMES: usize = 32;
const REFS: usize = 6_000;

fn job_specs(n: usize) -> Vec<GlobalJobSpec> {
    (0..n)
        .map(|i| {
            let trace = RefStringCfg::WorkingSetPhases {
                pages: 24,
                set: 8,
                phase_len: 500,
            }
            .generate_pages(REFS, &mut Rng64::new(160 + i as u64));
            // The integration: measure the job's appetite with the
            // working-set simulator and hand it to the scheduler.
            let ws = working_set_sim(&trace, 400).mean_resident.ceil() as usize + 2;
            GlobalJobSpec {
                id: JobId(i as u32),
                trace,
                est_working_set: ws,
            }
        })
        .collect()
}

fn cfg() -> SimConfig {
    SimConfig {
        instr_time: Cycles::from_micros(10),
        fetch_time: Cycles::from_millis(4),
        page_size: 512,
        quantum_refs: 50,
        fetch_channels: Some(1), // one drum channel
    }
}

fn main() {
    dsa_exec::cli::enforce_standard_flags("exp_16_load_control", &[]);
    let mut metrics = dsa_bench::metrics::RunMetrics::new("exp_16_load_control");
    println!("E16: independent vs integrated scheduling and storage allocation\n");
    let mut t = Table::new(&[
        "jobs",
        "policy",
        "peak admitted",
        "faults",
        "cpu util",
        "makespan",
        "jobs/s",
    ])
    .with_title(&format!(
        "{FRAMES} shared frames, one drum channel, ~10-page working sets"
    ));
    // Every (batch size, admission policy) pair simulates its own job
    // mix from fixed seeds — an independent point of the sched crate's
    // parallel admission sweep.
    let policies = [
        ("independent", Admission::All),
        ("integrated", Admission::WorkingSet),
    ];
    let points: Vec<(usize, Admission)> = product2(&[2usize, 4, 8, 16], &policies)
        .into_iter()
        .map(|(n, (_, admission))| (n, admission))
        .collect();
    let reports = dsa_sched::sweep::admission_sweep(jobs_from_env(), points, |n, admission| {
        GlobalMultiprogramSim::new(
            cfg(),
            FRAMES,
            Box::new(LruRepl::new()),
            admission,
            job_specs(n),
        )
    });
    for ((n, (label, _)), r) in product2(&[2usize, 4, 8, 16], &policies)
        .into_iter()
        .zip(reports)
    {
        let r = r.expect("no pinning");
        t.row_owned(vec![
            n.to_string(),
            label.to_owned(),
            r.peak_admitted.to_string(),
            r.faults.to_string(),
            format!("{:.1}%", r.cpu_utilization() * 100.0),
            r.makespan.to_string(),
            format!("{:.2}", r.throughput_per_second()),
        ]);
    }
    println!("{t}");
    metrics.table("load_control", &t);
    metrics.emit();
    println!(
        "below saturation (2-3 jobs' working sets fit in 32 frames) the two\n\
         policies are identical. past it, the independent scheduler's jobs\n\
         steal each other's pages: faults multiply, the single channel\n\
         queues, and throughput collapses. the integrated scheduler holds\n\
         the surplus jobs back and loses nothing — conclusion (i),\n\
         measured."
    );
}
