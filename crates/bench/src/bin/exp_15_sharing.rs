//! E15 — segmentation advantage (ii): segments as the unit of
//! information protection and sharing.
//!
//! "Segments form a very convenient unit for purposes of information
//! protection and sharing, between programs." Two measurements:
//!
//! 1. **Sharing**: N programs all use one library of pure procedures.
//!    With shared segments a single resident copy serves everyone; the
//!    no-sharing alternative loads one copy per program. We sweep N and
//!    report resident words, fetch traffic and fault counts.
//! 2. **Protection**: the same capability machinery rejects writes
//!    through read-only grants and all access without a grant — at zero
//!    added addressing cost (the check rides the descriptor access).

use dsa_core::ids::{SegId, Words};
use dsa_exec::{jobs_from_env, SimGrid};
use dsa_freelist::freelist::{FreeListAllocator, Placement};
use dsa_metrics::table::Table;
use dsa_seg::sharing::{AccessMode, AccessType, SharedSegments};
use dsa_seg::store::{SegReplacement, SegmentStore, StoreBackend};
use dsa_trace::rng::Rng64;

const CORE: Words = 24_000;
const LIB_SEGS: u32 = 6;
const LIB_SEG_WORDS: Words = 800;
const PRIVATE_WORDS: Words = 400;
const TOUCHES_PER_PROGRAM: usize = 2_000;

fn store() -> SegmentStore {
    SegmentStore::new(
        StoreBackend::FreeList(FreeListAllocator::new(CORE, Placement::BestFit)),
        SegReplacement::Cyclic,
        1024,
    )
}

/// Runs N programs over a shared library (if `share`) plus private data
/// segments; returns (peak resident words, fetched words, seg faults).
fn run(programs: u32, share: bool, rng: &mut Rng64) -> (Words, Words, u64) {
    let mut s = SharedSegments::new(store());
    // The library: published once by program 0 and either granted to
    // everyone (sharing) or replicated per program (no sharing).
    let lib_of = |prog: u32, k: u32| -> SegId {
        if share {
            SegId(k)
        } else {
            SegId(prog * LIB_SEGS + k)
        }
    };
    if share {
        for k in 0..LIB_SEGS {
            s.publish(0, SegId(k), LIB_SEG_WORDS, AccessMode::RX)
                .expect("fits");
            for p in 1..programs {
                s.grant(0, p, SegId(k), AccessMode::RX)
                    .expect("owner grants");
            }
        }
    } else {
        for p in 0..programs {
            for k in 0..LIB_SEGS {
                s.publish(p, lib_of(p, k), LIB_SEG_WORDS, AccessMode::RX)
                    .expect("fits");
            }
        }
    }
    // Private data, one segment per program.
    let data_base = 10_000u32;
    for p in 0..programs {
        s.publish(p, SegId(data_base + p), PRIVATE_WORDS, AccessMode::RW)
            .expect("fits");
    }
    // Interleaved execution: each step one program touches library code
    // then its data.
    let mut peak = 0;
    for i in 0..(TOUCHES_PER_PROGRAM * programs as usize) {
        let p = (i % programs as usize) as u32;
        let k = rng.below(u64::from(LIB_SEGS)) as u32;
        s.access(
            p,
            lib_of(p, k),
            rng.below(LIB_SEG_WORDS),
            AccessType::Execute,
        )
        .expect("granted");
        s.access(
            p,
            SegId(data_base + p),
            rng.below(PRIVATE_WORDS),
            AccessType::Write,
        )
        .expect("own data");
        peak = peak.max(s.store().resident_words());
    }
    let st = s.store().stats();
    (peak, st.fetched_words, st.seg_faults)
}

fn main() {
    dsa_exec::cli::enforce_standard_flags("exp_15_sharing", &[]);
    let mut metrics = dsa_bench::metrics::RunMetrics::new("exp_15_sharing");
    println!("E15: segments as the unit of protection and sharing\n");
    let mut t = Table::new(&[
        "programs",
        "resident (shared)",
        "resident (copies)",
        "fetched (shared)",
        "fetched (copies)",
        "faults (shared)",
        "faults (copies)",
    ])
    .with_title(&format!(
        "{LIB_SEGS} library segments x {LIB_SEG_WORDS} words + {PRIVATE_WORDS}-word private data, {CORE}-word core"
    ));
    // Each program count runs both regimes from the same fixed seed —
    // an independent cell.
    let grid = SimGrid::new(vec![1u32, 2, 4, 8, 16]);
    for row in grid.run(jobs_from_env(), |_, &programs| {
        let (rs, fs, qs) = run(programs, true, &mut Rng64::new(15));
        let (rc, fc, qc) = run(programs, false, &mut Rng64::new(15));
        vec![
            programs.to_string(),
            rs.to_string(),
            rc.to_string(),
            fs.to_string(),
            fc.to_string(),
            qs.to_string(),
            qc.to_string(),
        ]
    }) {
        t.row_owned(row);
    }
    println!("{t}");
    metrics.table("sharing", &t);

    // Protection: a hostile program probes the library and others' data.
    let mut s = SharedSegments::new(store());
    s.publish(0, SegId(0), 500, AccessMode::RX).expect("fits");
    s.grant(0, 1, SegId(0), AccessMode::RX)
        .expect("owner grants");
    s.publish(0, SegId(1), 300, AccessMode::RW).expect("fits");
    let mut rng = Rng64::new(16);
    let mut refused = 0;
    for _ in 0..1000 {
        // Program 1 tries to write the shared code and read 0's data.
        if s.access(1, SegId(0), rng.below(500), AccessType::Write)
            .is_err()
        {
            refused += 1;
        }
        if s.access(1, SegId(1), rng.below(300), AccessType::Read)
            .is_err()
        {
            refused += 1;
        }
    }
    println!(
        "protection: {refused}/2000 hostile accesses refused \
         ({} capability checks, {} violations recorded)",
        s.stats().checks,
        s.stats().protection_violations
    );
    metrics.counter(
        "hostile_refused_total",
        "Hostile accesses the capability checks refused",
        &[],
        refused,
    );
    metrics.counter(
        "capability_checks_total",
        "Capability checks performed",
        &[],
        s.stats().checks,
    );
    metrics.emit();
    println!(
        "\nsharing keeps one resident copy of the library no matter how many\n\
         programs execute it: resident words and fetch traffic stay flat\n\
         while the per-copy alternative grows linearly until it no longer\n\
         fits in core and starts thrashing — and the same per-segment\n\
         capability that enables the sharing refuses every hostile access."
    );
}
