//! E18 — the concurrent allocation service: throughput scaling with
//! shard count (extension).
//!
//! The paper's machines allocate on one thread; the service front-end
//! (`dsa-arena`) is what happens when the taxonomy has to serve
//! traffic. This experiment drives it the way the other experiments
//! drive machines: a deterministic workload, every count reconciled.
//! Worker threads (`std::thread::scope`) push pre-generated churn
//! streams through `ArenaService::submit` and we sweep the shard count
//! of the variable-size arena — the concurrency analogue of E5's
//! placement sweep — then run the lock-free fixed-size slab as the
//! uniform-unit endpoint (Blelloch & Wei: constant-time concurrent
//! alloc/free, no locks at all).
//!
//! Unlike E1–E17, the rows are *not* independent grid cells: every
//! worker hammers one shared service, which is the entire point. The
//! throughput column is wall-clock (and compresses toward flat on a
//! 1-CPU host), and the interleaving shapes the contention columns —
//! steals, CAS retries — and the free-list hole pattern behind mean
//! search. What does NOT vary: the op and success counts, and the
//! books, which reconcile exactly at any thread count.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use dsa_arena::{ArenaError, ArenaService, Request, Response, ShardedArena};
use dsa_bench::metrics::RunMetrics;
use dsa_exec::cli;
use dsa_freelist::Placement;
use dsa_metrics::table::Table;
use dsa_probe::{CountingProbe, Stamp};
use dsa_telemetry::{FlightRecorder, HeatFrame, HeatmapSampler};
use dsa_trace::rng::Rng64;

/// Ops per worker stream (alloc/free mixed, plus the drain tail).
const OPS_PER_WORKER: usize = 40_000;
/// Requests per `submit` batch.
const BATCH: usize = 512;
/// Total striped-arena capacity, split across however many shards.
const TOTAL_WORDS: u64 = 1 << 20;
/// Slab geometry: uniform 64-word units.
const SLAB_UNITS: u32 = 1 << 14;
const UNIT_WORDS: u64 = 64;

/// One worker's deterministic churn stream: grow a bounded live set,
/// free random members, drain at the end. Ids are namespaced by worker
/// so streams never collide.
fn worker_stream(worker: u64, max_words: u64) -> Vec<Request> {
    let mut rng = Rng64::new(0xE18_0000 + worker);
    let mut live: Vec<u64> = Vec::new();
    let mut next = 0u64;
    let mut out = Vec::with_capacity(OPS_PER_WORKER + 300);
    for _ in 0..OPS_PER_WORKER {
        let grow = live.len() < 16 || (live.len() < 256 && rng.next_u64() % 100 < 55);
        if grow {
            let id = (worker << 40) | next;
            next += 1;
            let words = 8 + rng.next_u64() % max_words;
            out.push(Request::alloc(id, words));
            live.push(id);
        } else {
            let i = (rng.next_u64() as usize) % live.len();
            let id = live.swap_remove(i);
            out.push(Request::free(id));
        }
    }
    for id in live {
        out.push(Request::free(id));
    }
    out
}

/// Arms the arena's quick lists when `--quick-lists` was passed — an
/// opt-in accelerator for the recurring small sizes in the worker
/// streams. The acknowledgment goes to stderr (in `main`), never
/// stdout, so default output is byte-identical with the flag absent.
fn arm_quick(svc: ArenaService) -> ArenaService {
    if cli::quick_lists_from_env() {
        svc.with_quick_lists(64, 16)
    } else {
        svc
    }
}

/// Per-worker response tallies, for reconciliation against the shared
/// probe.
#[derive(Default)]
struct Tally {
    allocs: u64,
    alloc_words: u64,
    frees: u64,
    failed: u64,
}

/// Pushes every stream through the service from `streams.len()` scoped
/// workers and returns (elapsed seconds, summed tallies).
fn drive(svc: &ArenaService, streams: &[Vec<Request>]) -> (f64, Tally) {
    let allocs = AtomicU64::new(0);
    let alloc_words = AtomicU64::new(0);
    let frees = AtomicU64::new(0);
    let failed = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for stream in streams {
            scope.spawn(|| {
                let mut t = Tally::default();
                for batch in stream.chunks(BATCH) {
                    for (req, resp) in batch.iter().zip(svc.submit(batch)) {
                        match resp {
                            Response::Allocated { .. } => {
                                t.allocs += 1;
                                if let Request::Alloc { words, .. } = *req {
                                    t.alloc_words += words;
                                }
                            }
                            Response::Freed { .. } => t.frees += 1,
                            Response::Failed { .. } => t.failed += 1,
                        }
                    }
                }
                allocs.fetch_add(t.allocs, Ordering::Relaxed);
                alloc_words.fetch_add(t.alloc_words, Ordering::Relaxed);
                frees.fetch_add(t.frees, Ordering::Relaxed);
                failed.fetch_add(t.failed, Ordering::Relaxed);
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    (
        elapsed,
        Tally {
            allocs: allocs.into_inner(),
            alloc_words: alloc_words.into_inner(),
            frees: frees.into_inner(),
            failed: failed.into_inner(),
        },
    )
}

/// Exact books check: the shared atomic sink vs the workers' own
/// response tallies. Any interleaving that loses or double-counts an
/// operation shows up here. The workers can't see freed sizes (a
/// `Free{id}` carries no word count), but the streams drain fully, so
/// for the striped arena freed words must equal requested words; the
/// slab accounts whole units on both sides (`unit` is its grain).
fn reconciled(svc: &ArenaService, t: &Tally, unit: Option<u64>) -> bool {
    let c = svc.counters();
    let words_ok = match unit {
        Some(u) => c.alloc_words == t.allocs * u && c.freed_words == t.frees * u,
        None => c.alloc_words == t.alloc_words && c.freed_words == t.alloc_words,
    };
    c.allocs == t.allocs && c.frees == t.frees && words_ok
}

fn main() {
    cli::enforce_standard_flags("exp_18_concurrency", &[cli::SHARDS]);
    let mut metrics = RunMetrics::new("exp_18_concurrency");
    // Workers are a workload parameter (clients of the service), not a
    // grid fan-out: default 4 even on narrow hosts, `--jobs` overrides.
    let workers = match cli::parse_jobs(std::env::args().skip(1)) {
        Ok(explicit) => explicit.unwrap_or(4),
        Err(msg) => {
            eprintln!("exp_18_concurrency: {msg}");
            std::process::exit(2);
        }
    };
    let max_shards = cli::shards_or(8);
    if cli::quick_lists_from_env() {
        eprintln!("exp_18_concurrency: arena quick lists armed (max 64 words, depth 16)");
    }
    println!("E18: concurrent allocation service — scaling with shard count\n");
    println!(
        "{workers} workers x {OPS_PER_WORKER} ops, batches of {BATCH}; striped arena \
         capacity {TOTAL_WORDS} words total (constant across shard counts)"
    );
    println!(
        "counts reconcile exactly at any thread count; Mops/s is wall-clock\n\
         (flat on a 1-CPU host) and the interleaving-shaped columns — mean\n\
         search, steals, cas retries — vary run to run\n"
    );

    // Part 1: variable units — the sharded free-list arena.
    let shard_counts: Vec<u32> = cli::doubling_sweep(max_shards)
        .into_iter()
        .map(|s| s as u32)
        .collect();
    let streams: Vec<Vec<Request>> = (0..workers as u64).map(|w| worker_stream(w, 120)).collect();
    let total_ops: usize = streams.iter().map(Vec::len).sum();

    let mut t = Table::new(&[
        "shards",
        "ops",
        "ok allocs",
        "failed",
        "steals",
        "mean search",
        "books",
        "Mops/s",
    ])
    .with_title("striped variable-size arena (first-fit shards, overflow stealing)");
    for &shards in &shard_counts {
        let svc = arm_quick(ArenaService::striped(
            shards,
            TOTAL_WORDS / u64::from(shards),
            Placement::FirstFit,
        ));
        let (elapsed, tally) = drive(&svc, &streams);
        let arena = svc.arena().expect("striped service has an arena");
        arena.check_invariants();
        let snap = arena.snapshot();
        assert_eq!(
            snap.allocated_words(),
            0,
            "drained streams leave nothing live"
        );
        t.row_owned(vec![
            shards.to_string(),
            total_ops.to_string(),
            tally.allocs.to_string(),
            tally.failed.to_string(),
            snap.steals.to_string(),
            format!("{:.2}", snap.stats().mean_search()),
            if reconciled(&svc, &tally, None) {
                "exact"
            } else {
                "MISMATCH"
            }
            .to_owned(),
            format!("{:.2}", total_ops as f64 / elapsed / 1e6),
        ]);
    }
    println!("{t}");
    metrics.table("striped_sweep", &t);

    // Part 1b: the always-on telemetry, inspected. One more service at
    // the largest shard count, driven for two rounds; between rounds
    // the shared probe's delta is the per-interval rate a production
    // scraper would chart, and the metrics file is rewritten after
    // every interval (periodic emission, not just end-of-run).
    let shards = *shard_counts.last().expect("the sweep has a shard count");
    let svc = arm_quick(ArenaService::striped(
        shards,
        TOTAL_WORDS / u64::from(shards),
        Placement::FirstFit,
    ));
    let mut prev = CountingProbe::new();
    for round in 0..2u32 {
        let (elapsed, _) = drive(&svc, &streams);
        let interval = svc.probe().delta(&prev);
        prev = svc.probe().snapshot();
        let label = round.to_string();
        let labels: &[(&str, &str)] = &[("round", &label)];
        metrics.counter(
            "interval_allocs_total",
            "Successful allocations in the scrape interval",
            labels,
            interval.allocs,
        );
        metrics.counter(
            "interval_frees_total",
            "Frees in the scrape interval",
            labels,
            interval.frees,
        );
        metrics.gauge(
            "interval_alloc_rate_mops",
            "Allocation rate over the scrape interval (millions/s)",
            labels,
            interval.allocs as f64 / elapsed.max(1e-9) / 1e6,
        );
        metrics.emit();
        println!(
            "interval {round} ({shards} shards): {} allocs, {} frees, \
             {} searched holes",
            interval.allocs, interval.frees, interval.alloc_searched
        );
    }
    println!();

    // Per-shard distributions from the service's sharded atomic
    // histograms: where the placement searches actually went.
    let tel = svc.telemetry();
    let mut t = Table::new(&[
        "shard",
        "allocs",
        "search p50",
        "search p90",
        "search p99",
        "search max",
        "alloc words p50",
        "alloc words p99",
    ])
    .with_title(&format!(
        "per-shard telemetry after 2 rounds ({shards} shards)"
    ));
    for s in 0..shards {
        let search = tel.shard_search(s);
        let words = tel.shard_alloc_words(s);
        t.row_owned(vec![
            s.to_string(),
            words.count().to_string(),
            search.quantile(0.5).to_string(),
            search.quantile(0.9).to_string(),
            search.quantile(0.99).to_string(),
            search.max().to_string(),
            words.quantile(0.5).to_string(),
            words.quantile(0.99).to_string(),
        ]);
    }
    println!("{t}");
    metrics.table("shard_telemetry", &t);
    tel.export_into(metrics.snapshot());

    // Fragmentation heatmap: a deterministic single-threaded replay of
    // one worker's stream against a small 4-shard arena, the global
    // hole map sampled every 4096 ops.
    let small = arm_quick(ArenaService::striped(4, 8192, Placement::FirstFit));
    let arena = small.arena().expect("striped service has an arena");
    let mut sampler = HeatmapSampler::new(4096, 64);
    for (i, req) in streams[0].iter().enumerate() {
        let _ = small.submit(std::slice::from_ref(req));
        let vt = i as u64;
        if sampler.due(vt) {
            sampler.push(HeatFrame::capture(
                vt,
                arena.capacity(),
                arena.hole_map().into_iter(),
                sampler.buckets(),
            ));
        }
    }
    println!(
        "{}",
        sampler.render("striped arena fragmentation (1 worker, 4 shards x 8192 words)")
    );
    for frame in sampler.frames() {
        let vt = frame.vtime.to_string();
        metrics.gauge(
            "heatmap_occupied_fraction",
            "Occupied fraction of the striped arena at the sampled instant",
            &[("vt", &vt)],
            frame.occupied_fraction(),
        );
    }

    // Exhaustion postmortem: a deliberately tiny arena filled until the
    // allocator returns Exhausted, with a flight recorder on the probe.
    // The recorder is always on here; `--flight-recorder N` resizes it.
    let recorder =
        dsa_bench::metrics::flight_recorder_from_env().unwrap_or_else(|| FlightRecorder::new(64));
    let mut handle = recorder.handle();
    let tiny = ShardedArena::new(2, 256, Placement::FirstFit);
    let mut id = 0u64;
    let exhausted = loop {
        match tiny.alloc_probed(id, 48, Stamp::vtime(id), &mut handle) {
            Ok(_) => id += 1,
            Err(e @ ArenaError::Exhausted { .. }) => break e,
            Err(e) => unreachable!("only exhaustion can stop the fill: {e}"),
        }
    };
    println!("exhaustion postmortem ({exhausted}):");
    println!("{}", recorder.postmortem(12));

    // Part 2: uniform units — the lock-free slab, swept over workers.
    let mut t = Table::new(&[
        "workers",
        "ops",
        "ok allocs",
        "failed",
        "cas retries",
        "books",
        "Mops/s",
    ])
    .with_title(&format!(
        "lock-free fixed-size slab ({SLAB_UNITS} units x {UNIT_WORDS} words)"
    ));
    for w in cli::doubling_sweep(workers.max(1)) {
        let slab_streams: Vec<Vec<Request>> = (0..w as u64)
            .map(|i| worker_stream(i, UNIT_WORDS - 8))
            .collect();
        let ops: usize = slab_streams.iter().map(Vec::len).sum();
        let svc = ArenaService::fixed(SLAB_UNITS, UNIT_WORDS);
        let (elapsed, tally) = drive(&svc, &slab_streams);
        let slab = svc.slab().expect("fixed service has a slab");
        slab.check_invariants();
        let stats = slab.stats();
        t.row_owned(vec![
            w.to_string(),
            ops.to_string(),
            tally.allocs.to_string(),
            tally.failed.to_string(),
            (stats.cas_attempts - (stats.allocs + stats.frees)).to_string(),
            if reconciled(&svc, &tally, Some(UNIT_WORDS)) {
                "exact"
            } else {
                "MISMATCH"
            }
            .to_owned(),
            format!("{:.2}", ops as f64 / elapsed / 1e6),
        ]);
    }
    println!("{t}");
    metrics.table("slab_sweep", &t);
    metrics.emit();
    println!(
        "shards cut lock conflicts (home-shard hashing spreads ids), at the\n\
         price of steals once a shard fills; the slab needs no locks at all —\n\
         the uniform unit removes the placement search, so a version-tagged\n\
         CAS is the whole operation, and retries stand in for contention."
    );
}
