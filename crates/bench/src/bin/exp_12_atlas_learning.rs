//! E12 — Appendix A.1: the ATLAS learning program in and out of its
//! element.
//!
//! Kilburn's learning program records, per page, the time since last
//! access and the previous duration of inactivity, predicting periodic
//! reuse. On strictly periodic programs (loop nests, cyclic sweeps) the
//! prediction is perfect and the policy matches MIN; as period jitter
//! grows, the learned periods mislead it and LRU closes the gap — the
//! trade Belady's study reported. A second table ablates the "keep one
//! frame vacant" discipline.

use dsa_core::ids::PageNo;
use dsa_exec::{jobs_from_env, SimGrid};
use dsa_metrics::table::Table;
use dsa_paging::paged::PagedMemory;
use dsa_paging::replacement::atlas::AtlasLearning;
use dsa_paging::replacement::registry::{policy_by_index, ATLAS, FIFO};
use dsa_stackdist::{lru_success, opt_success};
use dsa_trace::refstring::RefStringCfg;
use dsa_trace::rng::Rng64;

const LEN: usize = 50_000;
const FRAMES: usize = 16;

/// A loop nest whose outer-page periods are jittered: each outer touch
/// is displaced with probability `jitter` to a random position in the
/// iteration.
fn jittered_loop(jitter: f64, rng: &mut Rng64) -> Vec<PageNo> {
    let base = RefStringCfg::LoopNest {
        inner: 8,
        outer: 32,
        period: 8,
    }
    .generate_pages(LEN, rng);
    let mut out = base;
    let n = out.len();
    let swaps = (n as f64 * jitter) as usize;
    for _ in 0..swaps {
        let i = rng.below(n as u64) as usize;
        let j = rng.below(n as u64) as usize;
        out.swap(i, j);
    }
    out
}

fn fault_rate(trace: &[PageNo], policy: Box<dyn dsa_paging::replacement::Replacer>) -> f64 {
    let mut mem = PagedMemory::new(FRAMES, policy);
    mem.run_pages(trace).expect("no pinning").fault_rate()
}

fn main() {
    dsa_exec::cli::enforce_standard_flags("exp_12_atlas_learning", &[]);
    let mut metrics = dsa_bench::metrics::RunMetrics::new("exp_12_atlas_learning");
    println!("E12: the ATLAS learning program vs period regularity\n");
    let jobs = jobs_from_env();
    let mut t = Table::new(&[
        "jitter",
        "MIN",
        "ATLAS learning",
        "LRU",
        "FIFO",
        "ATLAS/LRU",
    ])
    .with_title(&format!(
        "loop nest 8 inner + 32 outer pages, {FRAMES} frames"
    ));
    // Each jitter level regenerates its trace from the fixed seed and
    // replays it under all four policies — an independent cell.
    let grid = SimGrid::new(vec![0.0f64, 0.01, 0.05, 0.1, 0.25, 0.5]);
    for row in grid.run(jobs, |_, &jitter| {
        let mut rng = Rng64::new(12);
        let trace = jittered_loop(jitter, &mut rng);
        // MIN and LRU are exact stack policies: one stackdist pass each
        // replaces their machine replays (same fault counts, proven by
        // the parity property tests).
        let min = opt_success(&trace).fault_rate(FRAMES);
        let atlas = fault_rate(&trace, policy_by_index(ATLAS, FRAMES, &trace));
        let lru = lru_success(&trace).fault_rate(FRAMES);
        let fifo = fault_rate(&trace, policy_by_index(FIFO, FRAMES, &trace));
        vec![
            format!("{:.0}%", jitter * 100.0),
            format!("{min:.3}"),
            format!("{atlas:.3}"),
            format!("{lru:.3}"),
            format!("{fifo:.3}"),
            format!("{:.2}", atlas / lru),
        ]
    }) {
        t.row_owned(row);
    }
    println!("{t}");
    metrics.table("jitter_sweep", &t);

    // Ablation: the vacant-frame reserve. It trades one frame of
    // capacity for having a frame already free at every demand — on
    // ATLAS the fetch could begin a drum revolution earlier.
    let mut t = Table::new(&["trace", "fault rate (plain)", "fault rate (vacant reserve)"])
        .with_title("ablation: keep one frame vacant (ATLAS discipline)");
    let grid = SimGrid::new(vec![
        (
            "loop nest",
            RefStringCfg::LoopNest {
                inner: 8,
                outer: 32,
                period: 8,
            },
        ),
        (
            "lru-stack th=1.0",
            RefStringCfg::LruStack {
                pages: 48,
                theta: 1.0,
            },
        ),
    ]);
    for row in grid.run(jobs, |_, (name, cfg)| {
        let trace = cfg.generate_pages(LEN, &mut Rng64::new(13));
        let plain = {
            let mut m = PagedMemory::new(FRAMES, Box::new(AtlasLearning::new()));
            m.run_pages(&trace).expect("no pinning").fault_rate()
        };
        let reserved = {
            let mut m =
                PagedMemory::new(FRAMES, Box::new(AtlasLearning::new())).with_vacant_reserve();
            m.run_pages(&trace).expect("no pinning").fault_rate()
        };
        vec![
            (*name).to_owned(),
            format!("{plain:.3}"),
            format!("{reserved:.3}"),
        ]
    }) {
        t.row_owned(row);
    }
    println!("{t}");
    metrics.table("vacant_reserve", &t);
    metrics.emit();
    println!(
        "at zero jitter the learning program tracks MIN exactly — the\n\
         periods it learns are the truth — while LRU, fooled by cyclic\n\
         reuse, faults on every outer page. as jitter grows the learned\n\
         periods go stale and the advantage erodes toward parity. the\n\
         vacant reserve costs a small, roughly constant fault-rate premium\n\
         (one frame's worth) in exchange for zero allocation delay at\n\
         fault time — the latency win is what mattered on the drum."
    );
}
