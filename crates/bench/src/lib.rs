//! Experiment harness library.
//!
//! The `exp_*` binaries in `src/bin/` regenerate every figure and
//! quantitative claim of the paper (see DESIGN.md's experiment index and
//! EXPERIMENTS.md for paper-vs-measured); the Criterion benches in
//! `benches/` time the underlying mechanisms. Shared workload builders
//! live here.

pub mod guard;
pub mod metrics;
pub mod workloads;
