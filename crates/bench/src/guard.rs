//! The bench-regression guard: committed medians vs a smoke rerun.
//!
//! Every PR that records performance numbers commits them as a
//! `BENCH_*.json` at the repo root. Those files are claims, and claims
//! rot: a later change can triple a guarded path without touching any
//! correctness test. The guard closes that hole in two passes, both
//! cheap enough for every CI run:
//!
//! 1. **Schema** — every committed `BENCH_*.json` must parse (a strict
//!    hand-rolled JSON parser — the workspace takes no external
//!    dependencies) and carry the record's spine: `pr`, `title`,
//!    `bench`, `units`, `host`.
//! 2. **Regression** — CI reruns the benchmark harness under
//!    `DSA_BENCH_SMOKE=1` (one unwarmed sample per benchmark) and the
//!    guard compares the smoke medians of a *guarded subset* against
//!    the committed medians. A guarded median more than
//!    [`TOLERANCE`]× its committed value fails the build.
//!
//! Only millisecond-scale benchmarks are guarded: at one smoke sample
//! on a shared single-core runner, a 3× move on a 3 ms benchmark is
//! signal, while a 3× move on a 300 ns one is scheduler noise. The
//! sub-millisecond entries in the JSON records stay informational.

use std::fmt::Write as _;

/// Smoke-to-committed ratio above which a guarded benchmark fails.
pub const TOLERANCE: f64 = 3.0;

// ---------------------------------------------------------------------
// A strict, dependency-free JSON value and recursive-descent parser.
// ---------------------------------------------------------------------

/// A parsed JSON value. Object member order is preserved.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// JSON numbers are finite by construction — the grammar has no
    /// NaN or infinity, and the parser rejects overflow to them.
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object; `None` on other variants.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Dotted-path lookup: `get("a").get("b")…` in one call.
    #[must_use]
    pub fn path(&self, dotted: &str) -> Option<&Json> {
        dotted.split('.').try_fold(self, |v, k| v.get(k))
    }

    /// The numeric value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses a complete JSON document; trailing content is an error.
///
/// # Errors
///
/// Returns a message with byte offset on any syntax violation —
/// including the lenient forms real JSON forbids (trailing commas,
/// unquoted keys, comments), which a schema gate must reject.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after document"));
    }
    Ok(v)
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if members.iter().any(|(k, _)| *k == key) {
                return Err(self.err(&format!("duplicate key {key:?}")));
            }
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogates are not paired here; the
                            // committed records are ASCII/BMP text.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("\\u escape is not a scalar"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control byte in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is valid UTF-8:
                    // it arrived as &str).
                    let start = self.pos;
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8"))?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit must follow '.'"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit must follow exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number bytes"))?;
        let n: f64 = text.parse().map_err(|_| self.err("unparseable number"))?;
        if !n.is_finite() {
            return Err(self.err("number overflows f64"));
        }
        Ok(Json::Num(n))
    }
}

// ---------------------------------------------------------------------
// Schema validation for committed BENCH_*.json records.
// ---------------------------------------------------------------------

/// Validates the spine every committed bench record must carry.
///
/// # Errors
///
/// Returns the first violated requirement, prefixed with `name`.
pub fn validate_bench_record(name: &str, record: &Json) -> Result<(), String> {
    let Json::Obj(_) = record else {
        return Err(format!("{name}: top level must be an object"));
    };
    match record.get("pr") {
        Some(Json::Num(n)) if *n >= 1.0 && n.fract() == 0.0 => {}
        _ => return Err(format!("{name}: \"pr\" must be a positive integer")),
    }
    for key in ["title", "bench", "units"] {
        match record.get(key) {
            Some(Json::Str(s)) if !s.is_empty() => {}
            _ => return Err(format!("{name}: \"{key}\" must be a non-empty string")),
        }
    }
    match record.get("host") {
        Some(Json::Obj(_)) => {}
        _ => return Err(format!("{name}: \"host\" must be an object")),
    }
    Ok(())
}

// ---------------------------------------------------------------------
// The guarded medians and the smoke-log comparison.
// ---------------------------------------------------------------------

/// One guarded benchmark: where its committed median lives and what
/// the smoke log calls it.
pub struct Guard {
    /// `group/name`, exactly as the criterion shim prints it.
    pub bench: &'static str,
    /// The committed record at the repo root.
    pub file: &'static str,
    /// Dotted path to the committed median (ns) inside the record.
    pub path: &'static str,
}

/// The guarded subset: every millisecond-scale median the committed
/// records claim. Sub-millisecond entries are informational — one
/// unwarmed smoke sample cannot hold them to a 3× band.
pub const GUARDS: &[Guard] = &[
    Guard {
        bench: "global_alloc_churn_100k/system",
        file: "BENCH_07.json",
        path: "global_alloc_churn_100k.system_ns",
    },
    Guard {
        bench: "global_alloc_churn_100k/dsa_slab_direct",
        file: "BENCH_07.json",
        path: "global_alloc_churn_100k.dsa_slab_direct_ns",
    },
    Guard {
        bench: "global_alloc_churn_100k/dsa_magazines",
        file: "BENCH_07.json",
        path: "global_alloc_churn_100k.dsa_magazines_ns",
    },
    Guard {
        bench: "trace_stream/streamed_stackdist",
        file: "BENCH_07.json",
        path: "streaming_compaction_delta.after_ns",
    },
    Guard {
        bench: "sched_events/stepper_1k",
        file: "BENCH_08.json",
        path: "sched_events.stepper_1k_ns",
    },
    Guard {
        bench: "sched_events/event_1k",
        file: "BENCH_08.json",
        path: "sched_events.event_1k_ns",
    },
    Guard {
        bench: "sched_events/event_10k",
        file: "BENCH_08.json",
        path: "sched_events.event_10k_ns",
    },
    Guard {
        bench: "sched_events/event_100k",
        file: "BENCH_08.json",
        path: "sched_events.event_100k_ns",
    },
];

/// Extracts `(bench, median_ns)` pairs from a captured `cargo bench`
/// log — lines of the shim's `  group/name: median N ns/iter` form.
/// Unrelated lines (cargo chatter, group headers) are skipped.
#[must_use]
pub fn parse_smoke_log(log: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in log.lines() {
        let Some(rest) = line.strip_prefix("  ") else {
            continue;
        };
        let Some((name, tail)) = rest.split_once(": median ") else {
            continue;
        };
        let Some(ns_text) = tail.strip_suffix(" ns/iter") else {
            continue;
        };
        if let Ok(ns) = ns_text.trim().parse::<f64>() {
            out.push((name.to_owned(), ns));
        }
    }
    out
}

/// The verdict for one guarded benchmark.
#[derive(Debug)]
pub struct Verdict {
    pub bench: &'static str,
    pub committed_ns: f64,
    pub smoke_ns: f64,
    pub ratio: f64,
    pub pass: bool,
}

/// Compares the smoke log against the committed medians for every
/// guard whose record is present in `records` (`(file name, parsed
/// json)` pairs).
///
/// # Errors
///
/// A guard whose committed value is missing from its record, or whose
/// benchmark is absent from the smoke log, is itself a failure — a
/// silently vanished guard is how regressions walk in.
pub fn check_guards(
    records: &[(String, Json)],
    smoke: &[(String, f64)],
) -> Result<Vec<Verdict>, String> {
    let mut verdicts = Vec::new();
    for g in GUARDS {
        let Some((_, record)) = records.iter().find(|(name, _)| name == g.file) else {
            return Err(format!("guard {}: record {} not found", g.bench, g.file));
        };
        let committed = record
            .path(g.path)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("guard {}: {} has no number at {}", g.bench, g.file, g.path))?;
        if committed <= 0.0 {
            return Err(format!(
                "guard {}: committed median must be positive",
                g.bench
            ));
        }
        let smoke_ns = smoke
            .iter()
            .find(|(name, _)| name == g.bench)
            .map(|&(_, ns)| ns)
            .ok_or_else(|| {
                format!(
                    "guard {}: benchmark missing from the smoke log — renamed or not run",
                    g.bench
                )
            })?;
        let ratio = smoke_ns / committed;
        verdicts.push(Verdict {
            bench: g.bench,
            committed_ns: committed,
            smoke_ns,
            ratio,
            pass: ratio <= TOLERANCE,
        });
    }
    Ok(verdicts)
}

/// Renders the verdict table the CI log shows.
#[must_use]
pub fn render_verdicts(verdicts: &[Verdict]) -> String {
    let mut out = String::new();
    for v in verdicts {
        let _ = writeln!(
            out,
            "  {:<40} committed {:>14.1} ns  smoke {:>14.1} ns  ratio {:>5.2}x  {}",
            v.bench,
            v.committed_ns,
            v.smoke_ns,
            v.ratio,
            if v.pass { "ok" } else { "REGRESSED" }
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_committed_record_shapes() {
        let doc = r#"{
            "pr": 10,
            "title": "t",
            "bench": "b",
            "units": "u",
            "host": {"cpus": 1},
            "group": {"a_ns": 123.5, "deep": {"k": [1, 2.5, -3e2]}},
            "esc": "a\"b\\c\ndA"
        }"#;
        let v = parse(doc).expect("valid document");
        validate_bench_record("doc", &v).expect("valid record");
        assert_eq!(v.path("group.a_ns").and_then(Json::as_f64), Some(123.5));
        assert_eq!(
            v.path("group.deep.k"),
            Some(&Json::Arr(vec![
                Json::Num(1.0),
                Json::Num(2.5),
                Json::Num(-300.0)
            ]))
        );
        assert_eq!(v.get("esc").and_then(Json::as_str), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{\"a\": 1,}",
            "{\"a\": 01}",
            "{a: 1}",
            "{\"a\": 1} extra",
            "{\"a\": NaN}",
            "{\"a\": 1e999}",
            "{\"a\": \"unterminated}",
            "[1, 2,]",
            "{\"a\": 1, \"a\": 2}",
        ] {
            assert!(parse(bad).is_err(), "accepted malformed input: {bad:?}");
        }
    }

    #[test]
    fn schema_requires_the_spine() {
        let missing_pr =
            parse(r#"{"title": "t", "bench": "b", "units": "u", "host": {}}"#).expect("valid json");
        assert!(validate_bench_record("x", &missing_pr).is_err());
        let bad_pr = parse(r#"{"pr": 0, "title": "t", "bench": "b", "units": "u", "host": {}}"#)
            .expect("valid json");
        assert!(validate_bench_record("x", &bad_pr).is_err());
    }

    #[test]
    fn smoke_log_parsing_and_guard_check() {
        let log = "group: sched_events\n\
                   \x20 sched_events/event_1k: median 100.0 ns/iter\n\
                   warning: something unrelated\n\
                   \x20 other/thing: median 5.5 ns/iter\n";
        let smoke = parse_smoke_log(log);
        assert_eq!(smoke.len(), 2);
        assert_eq!(smoke[0], ("sched_events/event_1k".to_owned(), 100.0));

        let record = parse(r#"{"sched_events": {"event_1k_ns": 50.0}}"#).expect("valid json");
        let records = [("BENCH_08.json".to_owned(), record)];
        let one_guard = [Guard {
            bench: "sched_events/event_1k",
            file: "BENCH_08.json",
            path: "sched_events.event_1k_ns",
        }];
        // check_guards walks the static table; exercise the comparison
        // arithmetic directly on the one guard.
        let g = &one_guard[0];
        let committed = records[0]
            .1
            .path(g.path)
            .and_then(Json::as_f64)
            .expect("present");
        let ratio = smoke[0].1 / committed;
        assert!((ratio - 2.0).abs() < 1e-12);
        assert!(ratio <= TOLERANCE);
    }

    #[test]
    fn missing_guard_is_an_error_not_a_pass() {
        // No records at all: the first guard's record is missing.
        let err = check_guards(&[], &[]).expect_err("records are absent");
        assert!(err.contains("not found"), "{err}");

        // Record present but the benchmark vanished from the smoke log:
        // also an error, not a silent pass.
        let records = vec![(
            "BENCH_07.json".to_owned(),
            parse(r#"{"global_alloc_churn_100k": {"system_ns": 1.0}}"#).expect("valid json"),
        )];
        let err = check_guards(&records, &[]).expect_err("smoke log is empty");
        assert!(err.contains("missing from the smoke log"), "{err}");
    }
}
