//! Shared workload builders for the experiment binaries.

use dsa_trace::allocstream::SizeDist;
use dsa_trace::program::ProgramCfg;

/// The standard survey program used by experiment E9: large enough to
/// pressure every machine's working storage.
#[must_use]
pub fn survey_program_cfg() -> ProgramCfg {
    ProgramCfg {
        segments: 48,
        seg_sizes: SizeDist::Exponential {
            mean: 700.0,
            cap: 4000,
        },
        touches: 30_000,
        phase_set: 6,
        phase_len: 500,
        write_fraction: 0.3,
        resize_prob: 0.05,
        advice_accuracy: None,
        wild_touch_prob: 0.0,
        compute_between: 3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsa_trace::rng::Rng64;

    #[test]
    fn survey_program_is_reproducible_and_sized() {
        let cfg = survey_program_cfg();
        let a = cfg.generate(&mut Rng64::new(9));
        let b = cfg.generate(&mut Rng64::new(9));
        assert_eq!(a.ops, b.ops);
        assert_eq!(a.touch_count(), cfg.touches);
        // Large enough to pressure the smallest appendix core (16K).
        assert!(a.total_declared_words() > 16_384);
    }
}
