//! Word-addressable simulated memory.
//!
//! A [`CoreMemory`] holds actual word contents so that experiments and
//! property tests can verify *data* behaviour, not just bookkeeping:
//! that a block map really does present scattered blocks as one
//! contiguous name range (E1), and that compaction moves information
//! without corrupting it (E7).

use dsa_core::error::{AccessFault, CoreError};
use dsa_core::ids::{PhysAddr, Words};

/// A flat, word-addressable memory with bounds checking.
#[derive(Clone, Debug)]
pub struct CoreMemory {
    words: Vec<u64>,
}

impl CoreMemory {
    /// Creates a zeroed memory of `capacity` words.
    #[must_use]
    pub fn new(capacity: Words) -> CoreMemory {
        CoreMemory {
            words: vec![0; capacity as usize],
        }
    }

    /// Capacity in words.
    #[must_use]
    pub fn capacity(&self) -> Words {
        self.words.len() as Words
    }

    /// Reads the word at `addr`.
    ///
    /// # Errors
    ///
    /// Returns an [`AccessFault::InvalidName`] (wrapped) if `addr` is
    /// beyond capacity.
    pub fn read(&self, addr: PhysAddr) -> Result<u64, CoreError> {
        self.words
            .get(addr.value() as usize)
            .copied()
            .ok_or_else(|| {
                AccessFault::InvalidName {
                    name: dsa_core::ids::Name(addr.value()),
                    extent: self.capacity(),
                }
                .into()
            })
    }

    /// Writes `value` at `addr`.
    ///
    /// # Errors
    ///
    /// Returns an [`AccessFault::InvalidName`] (wrapped) if `addr` is
    /// beyond capacity.
    pub fn write(&mut self, addr: PhysAddr, value: u64) -> Result<(), CoreError> {
        let cap = self.capacity();
        match self.words.get_mut(addr.value() as usize) {
            Some(w) => {
                *w = value;
                Ok(())
            }
            None => Err(AccessFault::InvalidName {
                name: dsa_core::ids::Name(addr.value()),
                extent: cap,
            }
            .into()),
        }
    }

    /// Copies `len` words from `src` to `dst` (overlapping moves behave
    /// like `memmove`). This is the operation the paper's "storage
    /// packing" hardware channel performs autonomously.
    ///
    /// # Errors
    ///
    /// Returns a bounds fault if either range exceeds capacity.
    pub fn move_block(
        &mut self,
        src: PhysAddr,
        dst: PhysAddr,
        len: Words,
    ) -> Result<(), CoreError> {
        let cap = self.capacity();
        let (s, d, n) = (src.value(), dst.value(), len);
        if s + n > cap || d + n > cap {
            return Err(AccessFault::InvalidName {
                name: dsa_core::ids::Name(s.max(d) + n),
                extent: cap,
            }
            .into());
        }
        self.words
            .copy_within(s as usize..(s + n) as usize, d as usize);
        Ok(())
    }

    /// Fills `len` words from `addr` with `value`.
    ///
    /// # Errors
    ///
    /// Returns a bounds fault if the range exceeds capacity.
    pub fn fill(&mut self, addr: PhysAddr, len: Words, value: u64) -> Result<(), CoreError> {
        let cap = self.capacity();
        if addr.value() + len > cap {
            return Err(AccessFault::InvalidName {
                name: dsa_core::ids::Name(addr.value() + len),
                extent: cap,
            }
            .into());
        }
        for w in &mut self.words[addr.value() as usize..(addr.value() + len) as usize] {
            *w = value;
        }
        Ok(())
    }

    /// Returns the slice of `len` words starting at `addr`, for
    /// verification in tests.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds capacity (test helper).
    #[must_use]
    pub fn snapshot(&self, addr: PhysAddr, len: Words) -> Vec<u64> {
        self.words[addr.value() as usize..(addr.value() + len) as usize].to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_round_trip() {
        let mut m = CoreMemory::new(64);
        m.write(PhysAddr(10), 0xDEAD).unwrap();
        assert_eq!(m.read(PhysAddr(10)).unwrap(), 0xDEAD);
        assert_eq!(m.read(PhysAddr(11)).unwrap(), 0);
    }

    #[test]
    fn bounds_are_enforced() {
        let mut m = CoreMemory::new(8);
        assert!(m.read(PhysAddr(8)).is_err());
        assert!(m.write(PhysAddr(9), 1).is_err());
        assert!(m.move_block(PhysAddr(4), PhysAddr(6), 4).is_err());
        assert!(m.fill(PhysAddr(6), 4, 0).is_err());
        // Boundary-exact operations succeed.
        assert!(m.fill(PhysAddr(4), 4, 1).is_ok());
        assert!(m.move_block(PhysAddr(4), PhysAddr(0), 4).is_ok());
    }

    #[test]
    fn move_block_copies_contents() {
        let mut m = CoreMemory::new(32);
        for i in 0..8u64 {
            m.write(PhysAddr(i), 100 + i).unwrap();
        }
        m.move_block(PhysAddr(0), PhysAddr(16), 8).unwrap();
        assert_eq!(m.snapshot(PhysAddr(16), 8), (100..108).collect::<Vec<_>>());
    }

    #[test]
    fn overlapping_move_is_memmove() {
        let mut m = CoreMemory::new(16);
        for i in 0..8u64 {
            m.write(PhysAddr(i), i).unwrap();
        }
        // Slide down by 2 with overlap (the compaction direction).
        m.move_block(PhysAddr(2), PhysAddr(0), 6).unwrap();
        assert_eq!(m.snapshot(PhysAddr(0), 6), vec![2, 3, 4, 5, 6, 7]);
        // Slide up by 2 with overlap.
        let mut m2 = CoreMemory::new(16);
        for i in 0..8u64 {
            m2.write(PhysAddr(i), i).unwrap();
        }
        m2.move_block(PhysAddr(0), PhysAddr(2), 6).unwrap();
        assert_eq!(m2.snapshot(PhysAddr(2), 6), vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn fill_sets_range() {
        let mut m = CoreMemory::new(16);
        m.fill(PhysAddr(4), 4, 7).unwrap();
        assert_eq!(m.snapshot(PhysAddr(3), 6), vec![0, 7, 7, 7, 7, 0]);
    }
}
