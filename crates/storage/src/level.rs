//! Storage levels and their timing.
//!
//! "The choice of suitable strategies will depend highly upon the
//! environment in which they are to be used and in particular the
//! characteristics of the various storage levels and their
//! interconnections" — conclusion (ii) of the paper. A [`LevelSpec`]
//! captures exactly those characteristics: capacity, access latency, and
//! per-word transfer time. The presets carry the parameters the paper's
//! appendix publishes for each machine.

use core::fmt;

use dsa_core::clock::Cycles;
use dsa_core::ids::Words;

/// The technology class of a storage level (used only for labeling).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LevelKind {
    /// Directly addressable working storage (core, thin film).
    Core,
    /// Rotating drum backing storage.
    Drum,
    /// Disk file backing storage.
    Disk,
    /// Magnetic tape (the Rice machine's only backing store).
    Tape,
}

impl fmt::Display for LevelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            LevelKind::Core => "core",
            LevelKind::Drum => "drum",
            LevelKind::Disk => "disk",
            LevelKind::Tape => "tape",
        })
    }
}

/// Capacity and timing of one storage level.
#[derive(Clone, Debug)]
pub struct LevelSpec {
    /// Human-readable name (e.g. `"ATLAS core"`).
    pub name: String,
    /// Technology class.
    pub kind: LevelKind,
    /// Capacity in words.
    pub capacity: Words,
    /// Latency to begin a transfer (cycle time for core; average
    /// rotational latency for a drum; average seek + rotational latency
    /// for a disk; average positioning time for tape).
    pub latency: Cycles,
    /// Time to move one word once the transfer has begun.
    pub word_time: Cycles,
}

impl LevelSpec {
    /// Time to transfer a block of `words` to or from this level:
    /// `latency + words * word_time`.
    #[must_use]
    pub fn transfer_time(&self, words: Words) -> Cycles {
        self.latency + self.word_time * words
    }

    /// Time for one direct word access (only meaningful for
    /// [`LevelKind::Core`] levels, which the processor addresses
    /// directly).
    #[must_use]
    pub fn access_time(&self) -> Cycles {
        self.latency
    }

    /// True if the processor can address this level directly.
    #[must_use]
    pub fn directly_addressable(&self) -> bool {
        self.kind == LevelKind::Core
    }
}

impl fmt::Display for LevelSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}): {} words, latency {}, {}/word",
            self.name, self.kind, self.capacity, self.latency, self.word_time
        )
    }
}

/// Preset levels with the parameters published in the paper's appendix
/// (and the primary sources it cites). Latencies are rounded to
/// historically plausible values; the experiments depend on their
/// *ratios*, which are faithful.
pub mod presets {
    use super::{LevelKind, LevelSpec};
    use dsa_core::clock::Cycles;

    /// ATLAS core storage: 16,384 words, ~2 µs cycle (A.1).
    #[must_use]
    pub fn atlas_core() -> LevelSpec {
        LevelSpec {
            name: "ATLAS core".into(),
            kind: LevelKind::Core,
            capacity: 16_384,
            latency: Cycles::from_micros(2),
            word_time: Cycles::from_micros(2),
        }
    }

    /// ATLAS drum: 98,304 words; ~6 ms average rotational latency,
    /// ~2 ms to move a 512-word page (A.1; Kilburn et al.).
    #[must_use]
    pub fn atlas_drum() -> LevelSpec {
        LevelSpec {
            name: "ATLAS drum".into(),
            kind: LevelKind::Drum,
            capacity: 98_304,
            latency: Cycles::from_micros(6_000),
            word_time: Cycles::from_nanos(4_000),
        }
    }

    /// M44 core: ~200,000 words of 8 µs core (A.2).
    #[must_use]
    pub fn m44_core() -> LevelSpec {
        LevelSpec {
            name: "M44 core".into(),
            kind: LevelKind::Core,
            capacity: 200_000,
            latency: Cycles::from_micros(8),
            word_time: Cycles::from_micros(8),
        }
    }

    /// IBM 1301 disk file: 9 million words; ~165 ms average access
    /// (seek + rotation), ~90 kword/s transfer (A.2).
    #[must_use]
    pub fn ibm1301_disk() -> LevelSpec {
        LevelSpec {
            name: "IBM 1301 disk".into(),
            kind: LevelKind::Disk,
            capacity: 9_000_000,
            latency: Cycles::from_millis(165),
            word_time: Cycles::from_micros(11),
        }
    }

    /// B5000 core: 24,000 words is "a typical size for working storage".
    #[must_use]
    pub fn b5000_core() -> LevelSpec {
        LevelSpec {
            name: "B5000 core".into(),
            kind: LevelKind::Core,
            capacity: 24_000,
            latency: Cycles::from_micros(6),
            word_time: Cycles::from_micros(6),
        }
    }

    /// B5000 drum backing storage.
    #[must_use]
    pub fn b5000_drum() -> LevelSpec {
        LevelSpec {
            name: "B5000 drum".into(),
            kind: LevelKind::Drum,
            capacity: 32_768,
            latency: Cycles::from_micros(8_500),
            word_time: Cycles::from_micros(4),
        }
    }

    /// Rice University Computer core (the only processor-addressable
    /// store; A.4 notes the sole backing storage was magnetic tape).
    #[must_use]
    pub fn rice_core() -> LevelSpec {
        LevelSpec {
            name: "Rice core".into(),
            kind: LevelKind::Core,
            capacity: 32_768,
            latency: Cycles::from_micros(5),
            word_time: Cycles::from_micros(5),
        }
    }

    /// Magnetic tape: effectively unbounded capacity, ~3 s average
    /// positioning.
    #[must_use]
    pub fn tape() -> LevelSpec {
        LevelSpec {
            name: "magnetic tape".into(),
            kind: LevelKind::Tape,
            capacity: 50_000_000,
            latency: Cycles::from_millis(3_000),
            word_time: Cycles::from_micros(40),
        }
    }

    /// GE 645 core for the "small but useful" MULTICS configuration:
    /// 128K words (A.6).
    #[must_use]
    pub fn ge645_core() -> LevelSpec {
        LevelSpec {
            name: "GE645 core".into(),
            kind: LevelKind::Core,
            capacity: 131_072,
            latency: Cycles::from_micros(1),
            word_time: Cycles::from_micros(1),
        }
    }

    /// GE 645 drum: 4 million words (A.6).
    #[must_use]
    pub fn ge645_drum() -> LevelSpec {
        LevelSpec {
            name: "GE645 drum".into(),
            kind: LevelKind::Drum,
            capacity: 4_000_000,
            latency: Cycles::from_micros(4_000),
            word_time: Cycles::from_nanos(2_000),
        }
    }

    /// GE 645 disk: 16 million words (A.6).
    #[must_use]
    pub fn ge645_disk() -> LevelSpec {
        LevelSpec {
            name: "GE645 disk".into(),
            kind: LevelKind::Disk,
            capacity: 16_000_000,
            latency: Cycles::from_millis(100),
            word_time: Cycles::from_micros(8),
        }
    }

    /// 360/67 core: three modules of 256K bytes = 192K 32-bit words
    /// total (A.7).
    #[must_use]
    pub fn model67_core() -> LevelSpec {
        LevelSpec {
            name: "360/67 core".into(),
            kind: LevelKind::Core,
            capacity: 196_608,
            latency: Cycles::from_nanos(750),
            word_time: Cycles::from_nanos(750),
        }
    }

    /// 360/67 drum: 4 million bytes = 1M words (A.7).
    #[must_use]
    pub fn model67_drum() -> LevelSpec {
        LevelSpec {
            name: "360/67 drum".into(),
            kind: LevelKind::Drum,
            capacity: 1_048_576,
            latency: Cycles::from_micros(4_300),
            word_time: Cycles::from_nanos(1_300),
        }
    }

    /// 360/67 disk: ~500 million bytes = 125M words (A.7).
    #[must_use]
    pub fn model67_disk() -> LevelSpec {
        LevelSpec {
            name: "360/67 disk".into(),
            kind: LevelKind::Disk,
            capacity: 125_000_000,
            latency: Cycles::from_millis(85),
            word_time: Cycles::from_micros(5),
        }
    }

    /// B8500 thin-film store: tiny, very fast (A.5 — the 44-word
    /// associative memory's backing technology).
    #[must_use]
    pub fn b8500_thin_film() -> LevelSpec {
        LevelSpec {
            name: "B8500 thin film".into(),
            kind: LevelKind::Core,
            capacity: 44,
            latency: Cycles::from_nanos(200),
            word_time: Cycles::from_nanos(200),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::presets::*;

    #[test]
    fn transfer_time_is_affine() {
        let d = atlas_drum();
        let t0 = d.transfer_time(0);
        let t512 = d.transfer_time(512);
        assert_eq!(t0, d.latency);
        assert_eq!(t512 - t0, d.word_time * 512);
    }

    #[test]
    fn atlas_page_fetch_is_milliseconds() {
        // A 512-word ATLAS drum page: ~6 ms latency + ~2 ms transfer.
        let t = atlas_drum().transfer_time(512);
        let ms = t.as_millis_f64();
        assert!((7.0..10.0).contains(&ms), "{ms} ms");
    }

    #[test]
    fn disk_is_much_slower_than_drum() {
        let drum = atlas_drum().transfer_time(512);
        let disk = ibm1301_disk().transfer_time(512);
        assert!(disk.as_nanos() > 10 * drum.as_nanos());
    }

    #[test]
    fn only_core_is_directly_addressable() {
        assert!(atlas_core().directly_addressable());
        assert!(m44_core().directly_addressable());
        assert!(!atlas_drum().directly_addressable());
        assert!(!ibm1301_disk().directly_addressable());
        assert!(!tape().directly_addressable());
    }

    #[test]
    fn m44_virtual_space_exceeds_core_tenfold() {
        // The paper: M44 name space is ~2M words, "ten times the actual
        // extent of physical working storage".
        assert!(m44_core().capacity * 10 <= 2_097_152);
    }

    #[test]
    fn display_contains_name_and_kind() {
        let s = ge645_drum().to_string();
        assert!(s.contains("GE645 drum") && s.contains("drum"), "{s}");
    }

    #[test]
    fn capacities_ordered_within_hierarchies() {
        assert!(atlas_core().capacity < atlas_drum().capacity);
        assert!(ge645_core().capacity < ge645_drum().capacity);
        assert!(ge645_drum().capacity < ge645_disk().capacity);
        assert!(model67_core().capacity < model67_drum().capacity);
        assert!(model67_drum().capacity < model67_disk().capacity);
    }
}
