//! Multi-level storage hierarchies.
//!
//! A [`Hierarchy`] is an ordered list of [`LevelSpec`]s, fastest first.
//! Level 0 is working storage; deeper levels hold what working storage
//! cannot. The type answers the timing questions the strategies ask:
//! what does it cost to fetch a block from level *k*, and — for the
//! multi-level fetch question of the paper's "additional complexity in
//! fetch strategies" paragraph (experiment E14) — above what reuse
//! frequency does promoting an item to a faster level pay for itself?

use core::fmt;

use dsa_core::clock::Cycles;
use dsa_core::error::CoreError;
use dsa_core::ids::Words;

use crate::level::LevelSpec;

/// An ordered storage hierarchy, fastest level first.
#[derive(Clone, Debug)]
pub struct Hierarchy {
    levels: Vec<LevelSpec>,
}

impl Hierarchy {
    /// Builds a hierarchy from levels ordered fastest first.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadConfig`] if no level is given, if the
    /// first level is not directly addressable, or if access latencies
    /// are not non-decreasing with depth.
    pub fn new(levels: Vec<LevelSpec>) -> Result<Hierarchy, CoreError> {
        if levels.is_empty() {
            return Err(CoreError::BadConfig("hierarchy needs at least one level"));
        }
        if !levels[0].directly_addressable() {
            return Err(CoreError::BadConfig(
                "level 0 must be directly addressable working storage",
            ));
        }
        for pair in levels.windows(2) {
            if pair[0].latency > pair[1].latency {
                return Err(CoreError::BadConfig("levels must be ordered fastest first"));
            }
        }
        Ok(Hierarchy { levels })
    }

    /// The working-storage level.
    #[must_use]
    pub fn working(&self) -> &LevelSpec {
        &self.levels[0]
    }

    /// All levels, fastest first.
    #[must_use]
    pub fn levels(&self) -> &[LevelSpec] {
        &self.levels
    }

    /// Number of levels.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Cost of moving a block of `words` between level `from` and level
    /// `to` (symmetric: the slower side dominates; both devices are
    /// occupied, so the time is the max of the two transfer times).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[must_use]
    pub fn transfer(&self, from: usize, to: usize, words: Words) -> Cycles {
        let a = self.levels[from].transfer_time(words);
        let b = self.levels[to].transfer_time(words);
        if a > b {
            a
        } else {
            b
        }
    }

    /// Cost of fetching a block of `words` from level `k` into working
    /// storage.
    #[must_use]
    pub fn fetch_cost(&self, k: usize, words: Words) -> Cycles {
        self.transfer(0, k, words)
    }

    /// The minimum number of times an item (block of `words`) must be
    /// used, after promotion from level `k` to level `j` (with `j < k`),
    /// for the promotion to pay for itself: each use saves the access
    /// gap between the levels, while the promotion costs one transfer.
    ///
    /// Returns `None` if level `j` is not faster per access than level
    /// `k` (promotion can never pay).
    #[must_use]
    pub fn break_even_uses(&self, k: usize, j: usize, words: Words) -> Option<u64> {
        let slow = &self.levels[k];
        let fast = &self.levels[j];
        let saving_per_use = slow
            .access_time()
            .saturating_sub(fast.access_time())
            .as_nanos();
        if saving_per_use == 0 {
            return None;
        }
        let cost = self.transfer(j, k, words).as_nanos();
        Some(cost.div_ceil(saving_per_use))
    }

    /// Total capacity across all levels, in words.
    #[must_use]
    pub fn total_capacity(&self) -> Words {
        self.levels.iter().map(|l| l.capacity).sum()
    }
}

impl fmt::Display for Hierarchy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, l) in self.levels.iter().enumerate() {
            writeln!(f, "L{i}: {l}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level::presets::*;
    use crate::level::{LevelKind, LevelSpec};

    fn atlas() -> Hierarchy {
        Hierarchy::new(vec![atlas_core(), atlas_drum()]).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(Hierarchy::new(vec![]).is_err());
        assert!(
            Hierarchy::new(vec![atlas_drum()]).is_err(),
            "drum cannot be level 0"
        );
        assert!(
            Hierarchy::new(vec![m44_core(), atlas_core()]).is_err(),
            "slower core cannot precede faster backing level ordering check"
        );
        assert!(atlas().depth() == 2);
    }

    #[test]
    fn fetch_cost_is_dominated_by_slow_side() {
        let h = atlas();
        assert_eq!(h.fetch_cost(1, 512), atlas_drum().transfer_time(512));
        assert_eq!(h.transfer(1, 0, 512), h.transfer(0, 1, 512));
    }

    #[test]
    fn break_even_uses_sane() {
        // Two core levels: 1 us vs 8 us access; moving 64 words costs
        // ~8 us-dominated transfer; each use saves 7 us.
        let fast = LevelSpec {
            name: "fast core".into(),
            kind: LevelKind::Core,
            capacity: 1024,
            latency: dsa_core::clock::Cycles::from_micros(1),
            word_time: dsa_core::clock::Cycles::from_micros(1),
        };
        let h = Hierarchy::new(vec![fast, m44_core()]).unwrap();
        let n = h.break_even_uses(1, 0, 64).unwrap();
        // Transfer = max(64us, 8+512us) = 520us; saving = 7us/use.
        assert_eq!(n, 75);
        // Promotion to an equally slow level never pays.
        assert!(h.break_even_uses(1, 1, 64).is_none());
    }

    #[test]
    fn total_capacity_sums_levels() {
        assert_eq!(atlas().total_capacity(), 16_384 + 98_304);
    }

    #[test]
    fn working_is_level_zero() {
        assert_eq!(atlas().working().name, "ATLAS core");
    }

    #[test]
    fn display_lists_levels_in_order() {
        let s = atlas().to_string();
        let core_pos = s.find("ATLAS core").unwrap();
        let drum_pos = s.find("ATLAS drum").unwrap();
        assert!(core_pos < drum_pos);
    }
}
