//! A sector-aware paging drum.
//!
//! Every fetch-time number in the paper hides a rotating device: the
//! ATLAS drum's "average rotational latency" is an average over where
//! the head happens to be when the request arrives. This module models
//! the rotation explicitly — a drum whose surface is divided into
//! page-sized sectors passing under fixed heads — and the two classic
//! ways to serve a queue of page requests:
//!
//! * [`DrumDiscipline::Fifo`] — serve requests in arrival order; each
//!   pays its own rotational delay;
//! * [`DrumDiscipline::Sltf`] — *shortest latency time first*: always
//!   serve the queued request whose sector arrives under the heads
//!   soonest. With enough queued work the drum streams sector after
//!   sector and the effective latency collapses toward zero — the
//!   "extra page transmission" that makes heavy multiprogramming
//!   feasible.
//!
//! This is an extension beyond the paper's text (drum scheduling was
//! formalized shortly after, most famously by Denning), included
//! because experiments E2/E16 price fetches with a flat latency; E17
//! shows how much of that latency a smarter drum queue removes.

use dsa_core::clock::Cycles;
use dsa_core::ids::Words;

/// The service discipline for the request queue.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DrumDiscipline {
    /// First-in, first-out.
    Fifo,
    /// Shortest latency time first (serve the sector arriving soonest).
    Sltf,
}

/// A rotating drum with fixed heads and page-sized sectors.
#[derive(Clone, Debug)]
pub struct SectorDrum {
    sectors: u64,
    rev_time: Cycles,
    words_per_sector: Words,
}

impl SectorDrum {
    /// Creates a drum with `sectors` page sectors per revolution, a full
    /// revolution taking `rev_time`.
    ///
    /// # Panics
    ///
    /// Panics if `sectors` is zero or `rev_time` is zero.
    #[must_use]
    pub fn new(sectors: u64, rev_time: Cycles, words_per_sector: Words) -> SectorDrum {
        assert!(sectors > 0, "need at least one sector");
        assert!(rev_time.as_nanos() > 0, "the drum must rotate");
        SectorDrum {
            sectors,
            rev_time,
            words_per_sector,
        }
    }

    /// The ATLAS drum, approximately: 12 ms revolution, 16 sectors of
    /// 512 words.
    #[must_use]
    pub fn atlas() -> SectorDrum {
        SectorDrum::new(16, Cycles::from_millis(12), 512)
    }

    /// Time for one sector to pass under the heads.
    #[must_use]
    pub fn sector_time(&self) -> Cycles {
        Cycles::from_nanos(self.rev_time.as_nanos() / self.sectors)
    }

    /// Words in one sector.
    #[must_use]
    pub fn words_per_sector(&self) -> Words {
        self.words_per_sector
    }

    /// Number of sectors per revolution.
    #[must_use]
    pub fn sectors(&self) -> u64 {
        self.sectors
    }

    /// The sector under the heads at instant `now`.
    #[must_use]
    pub fn position(&self, now: Cycles) -> u64 {
        (now.as_nanos() / self.sector_time().as_nanos()) % self.sectors
    }

    /// The delay from `now` until `sector` begins passing under the
    /// heads (zero if it is just arriving).
    #[must_use]
    pub fn rotational_delay(&self, now: Cycles, sector: u64) -> Cycles {
        debug_assert!(sector < self.sectors);
        let st = self.sector_time().as_nanos();
        let now_ns = now.as_nanos();
        let sector_start = sector * st;
        let in_rev = now_ns % self.rev_time.as_nanos();
        let delay = if sector_start >= in_rev {
            sector_start - in_rev
        } else {
            self.rev_time.as_nanos() - in_rev + sector_start
        };
        Cycles::from_nanos(delay)
    }

    /// Serves a queue of sector requests, all present at `start`,
    /// returning each request's completion instant (in input order) and
    /// the makespan. A transfer occupies exactly its sector's passage
    /// time.
    #[must_use]
    pub fn service(
        &self,
        requests: &[u64],
        start: Cycles,
        discipline: DrumDiscipline,
    ) -> (Vec<Cycles>, Cycles) {
        let mut completion = vec![Cycles::ZERO; requests.len()];
        let mut pending: Vec<usize> = (0..requests.len()).collect();
        let mut now = start;
        while !pending.is_empty() {
            // Invariant: the loop condition guarantees `pending` holds at
            // least one request for min_by_key to select.
            #[allow(clippy::expect_used)]
            let pick = match discipline {
                DrumDiscipline::Fifo => 0,
                DrumDiscipline::Sltf => pending
                    .iter()
                    .enumerate()
                    .min_by_key(|&(_, &req)| self.rotational_delay(now, requests[req]).as_nanos())
                    .map(|(i, _)| i)
                    .expect("pending is non-empty"),
            };
            let req = pending.remove(pick);
            let delay = self.rotational_delay(now, requests[req]);
            now = now + delay + self.sector_time();
            completion[req] = now;
        }
        (completion, now - start)
    }

    /// Mean wait per request for a queue served from `start`.
    #[must_use]
    pub fn mean_wait(&self, requests: &[u64], start: Cycles, discipline: DrumDiscipline) -> Cycles {
        if requests.is_empty() {
            return Cycles::ZERO;
        }
        let (completions, _) = self.service(requests, start, discipline);
        let total: u64 = completions
            .iter()
            .map(|c| c.as_nanos() - start.as_nanos())
            .sum();
        Cycles::from_nanos(total / requests.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drum() -> SectorDrum {
        // 8 sectors, 8 ms revolution: 1 ms per sector.
        SectorDrum::new(8, Cycles::from_millis(8), 512)
    }

    #[test]
    fn position_advances_with_time() {
        let d = drum();
        assert_eq!(d.position(Cycles::ZERO), 0);
        assert_eq!(d.position(Cycles::from_millis(1)), 1);
        assert_eq!(d.position(Cycles::from_millis(7)), 7);
        assert_eq!(
            d.position(Cycles::from_millis(8)),
            0,
            "wraps each revolution"
        );
    }

    #[test]
    fn rotational_delay_wraps_correctly() {
        let d = drum();
        // At t=0 the head is at sector 0: sector 3 arrives in 3 ms.
        assert_eq!(d.rotational_delay(Cycles::ZERO, 3), Cycles::from_millis(3));
        // At t=5ms, sector 3 has passed: wait 8 - 5 + 3 = 6 ms.
        assert_eq!(
            d.rotational_delay(Cycles::from_millis(5), 3),
            Cycles::from_millis(6)
        );
        // The current sector is just arriving: zero delay.
        assert_eq!(d.rotational_delay(Cycles::from_millis(2), 2), Cycles::ZERO);
    }

    #[test]
    fn single_request_same_under_both_disciplines() {
        let d = drum();
        let (f, mf) = d.service(&[5], Cycles::ZERO, DrumDiscipline::Fifo);
        let (s, ms) = d.service(&[5], Cycles::ZERO, DrumDiscipline::Sltf);
        assert_eq!(f, s);
        assert_eq!(mf, ms);
        // 5 ms delay + 1 ms transfer.
        assert_eq!(f[0], Cycles::from_millis(6));
    }

    #[test]
    fn sltf_streams_a_full_queue_in_one_revolution() {
        let d = drum();
        // One request per sector, adversarially ordered for FIFO.
        let reqs: Vec<u64> = vec![7, 6, 5, 4, 3, 2, 1, 0];
        let (_, fifo) = d.service(&reqs, Cycles::ZERO, DrumDiscipline::Fifo);
        let (_, sltf) = d.service(&reqs, Cycles::ZERO, DrumDiscipline::Sltf);
        // SLTF reads them in rotational order: exactly one revolution.
        assert_eq!(sltf, Cycles::from_millis(8));
        // FIFO pays almost a full revolution per request.
        assert!(
            fifo.as_nanos() >= 7 * sltf.as_nanos() / 2,
            "{fifo} vs {sltf}"
        );
    }

    #[test]
    fn sltf_never_loses_to_fifo_on_makespan() {
        let d = drum();
        // A deterministic pseudo-random batch.
        let reqs: Vec<u64> = (0..20).map(|i: u64| (i * 5 + 3) % 8).collect();
        let (_, fifo) = d.service(&reqs, Cycles::from_micros(123), DrumDiscipline::Fifo);
        let (_, sltf) = d.service(&reqs, Cycles::from_micros(123), DrumDiscipline::Sltf);
        assert!(sltf <= fifo);
    }

    #[test]
    fn every_request_completes_exactly_once() {
        let d = drum();
        let reqs = [1u64, 1, 3, 3, 3, 0];
        let (completions, makespan) = d.service(&reqs, Cycles::ZERO, DrumDiscipline::Sltf);
        assert_eq!(completions.len(), reqs.len());
        let max = completions.iter().map(|c| c.as_nanos()).max().unwrap();
        assert_eq!(makespan.as_nanos(), max);
        for c in &completions {
            assert!(c.as_nanos() > 0);
        }
    }

    #[test]
    fn atlas_preset_matches_published_scale() {
        let d = SectorDrum::atlas();
        assert_eq!(d.words_per_sector(), 512);
        // Mean rotational latency ~6 ms: half a revolution.
        assert_eq!(d.sector_time() * (d.sectors() / 2), Cycles::from_millis(6));
    }

    #[test]
    fn mean_wait_empty_queue_is_zero() {
        assert_eq!(
            drum().mean_wait(&[], Cycles::ZERO, DrumDiscipline::Fifo),
            Cycles::ZERO
        );
    }
}
