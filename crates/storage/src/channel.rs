//! The storage-packing channel.
//!
//! Special hardware facility (iii) of the paper: "the need to speed up
//! the process of storage packing to reduce fragmentation is sometimes
//! catered for by fast autonomous storage to storage channel
//! operations." A [`PackingChannel`] models such a channel: block moves
//! cost a fixed setup plus a per-word time, and an autonomous channel
//! can overlap with processor execution, so only the setup steals CPU
//! time. The alternative — a programmed word-by-word copy loop — charges
//! the full move to the CPU. Experiment E7 uses both to price
//! compaction.

use dsa_core::clock::Cycles;
use dsa_core::ids::Words;

/// How block moves are performed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MoveEngine {
    /// A programmed copy loop: every word costs CPU time.
    ProgrammedLoop {
        /// CPU time per word moved (load + store + loop control).
        per_word: Cycles,
    },
    /// An autonomous storage-to-storage channel: the CPU pays only the
    /// setup; the channel moves words in parallel with execution.
    AutonomousChannel {
        /// CPU time to set up one channel operation.
        setup: Cycles,
        /// Channel time per word (occupies the channel, not the CPU).
        per_word: Cycles,
    },
}

/// A block-move engine with cumulative accounting.
#[derive(Clone, Debug)]
pub struct PackingChannel {
    engine: MoveEngine,
    words_moved: Words,
    cpu_time: Cycles,
    channel_time: Cycles,
    operations: u64,
}

impl PackingChannel {
    /// Creates a channel with the given engine.
    #[must_use]
    pub fn new(engine: MoveEngine) -> PackingChannel {
        PackingChannel {
            engine,
            words_moved: 0,
            cpu_time: Cycles::ZERO,
            channel_time: Cycles::ZERO,
            operations: 0,
        }
    }

    /// A programmed-loop engine with a typical 3-cycle-per-word loop on
    /// a `cycle`-time core.
    #[must_use]
    pub fn programmed(cycle: Cycles) -> PackingChannel {
        PackingChannel::new(MoveEngine::ProgrammedLoop {
            per_word: cycle * 3,
        })
    }

    /// An autonomous channel on a `cycle`-time core: one-word-per-cycle
    /// streaming after a 20-cycle setup.
    #[must_use]
    pub fn autonomous(cycle: Cycles) -> PackingChannel {
        PackingChannel::new(MoveEngine::AutonomousChannel {
            setup: cycle * 20,
            per_word: cycle,
        })
    }

    /// Records a move of `len` words and returns `(cpu, channel)` time
    /// consumed by it.
    pub fn charge_move(&mut self, len: Words) -> (Cycles, Cycles) {
        self.operations += 1;
        self.words_moved += len;
        match self.engine {
            MoveEngine::ProgrammedLoop { per_word } => {
                let cpu = per_word * len;
                self.cpu_time += cpu;
                (cpu, Cycles::ZERO)
            }
            MoveEngine::AutonomousChannel { setup, per_word } => {
                let chan = per_word * len;
                self.cpu_time += setup;
                self.channel_time += chan;
                (setup, chan)
            }
        }
    }

    /// Total words moved so far.
    #[must_use]
    pub fn words_moved(&self) -> Words {
        self.words_moved
    }

    /// Total CPU time consumed by moves.
    #[must_use]
    pub fn cpu_time(&self) -> Cycles {
        self.cpu_time
    }

    /// Total channel-occupancy time (zero for a programmed loop).
    #[must_use]
    pub fn channel_time(&self) -> Cycles {
        self.channel_time
    }

    /// Number of move operations issued.
    #[must_use]
    pub fn operations(&self) -> u64 {
        self.operations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn programmed_loop_charges_cpu_per_word() {
        let mut ch = PackingChannel::programmed(Cycles::from_micros(2));
        let (cpu, chan) = ch.charge_move(100);
        assert_eq!(cpu, Cycles::from_micros(600));
        assert_eq!(chan, Cycles::ZERO);
        assert_eq!(ch.words_moved(), 100);
        assert_eq!(ch.cpu_time(), Cycles::from_micros(600));
    }

    #[test]
    fn autonomous_channel_offloads_cpu() {
        let mut ch = PackingChannel::autonomous(Cycles::from_micros(2));
        let (cpu, chan) = ch.charge_move(100);
        assert_eq!(cpu, Cycles::from_micros(40)); // setup only
        assert_eq!(chan, Cycles::from_micros(200));
        assert_eq!(ch.channel_time(), Cycles::from_micros(200));
    }

    #[test]
    fn autonomous_beats_programmed_for_large_moves_only() {
        let cycle = Cycles::from_micros(2);
        let mut prog = PackingChannel::programmed(cycle);
        let mut auto = PackingChannel::autonomous(cycle);
        // Tiny move: setup dominates.
        assert!(prog.charge_move(5).0 < auto.charge_move(5).0);
        // Large move: channel wins on CPU time by a wide margin.
        assert!(prog.charge_move(1000).0 > auto.charge_move(1000).0 * 10);
    }

    #[test]
    fn accounting_accumulates() {
        let mut ch = PackingChannel::programmed(Cycles::from_micros(1));
        ch.charge_move(10);
        ch.charge_move(20);
        assert_eq!(ch.words_moved(), 30);
        assert_eq!(ch.operations(), 2);
        assert_eq!(ch.cpu_time(), Cycles::from_micros(90));
    }
}
