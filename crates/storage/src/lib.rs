//! Simulated physical storage: levels, hierarchies, memory, channels.
//!
//! The paper's conclusion (ii): "the choice of a suitable storage
//! allocation system is strongly dependent on the characteristics of the
//! various storage levels, and their interconnections, provided by the
//! computer system on which it is implemented." This crate supplies
//! those characteristics as data:
//!
//! * [`level::LevelSpec`] — capacity and timing of one storage level,
//!   with presets for every device named in the appendix (ATLAS core and
//!   drum, the M44's 8 µs core and IBM 1301 disk, the GE 645 complement,
//!   the 360/67 complement, tape, thin film);
//! * [`hierarchy::Hierarchy`] — ordered levels with transfer-cost and
//!   promotion break-even queries;
//! * [`memory::CoreMemory`] — a word-addressable store with real
//!   contents, for experiments that must verify data survives remapping
//!   and compaction;
//! * [`channel::PackingChannel`] — the autonomous storage-to-storage
//!   packing channel of special hardware facility (iii), priced against
//!   a programmed copy loop;
//! * [`drum::SectorDrum`] — a rotation-aware paging drum with FIFO and
//!   shortest-latency-first queue service, behind the flat fetch
//!   latencies the other crates assume (experiment E17).

pub mod channel;
pub mod drum;
pub mod hierarchy;
pub mod level;
pub mod memory;

pub use channel::{MoveEngine, PackingChannel};
pub use drum::{DrumDiscipline, SectorDrum};
pub use hierarchy::Hierarchy;
pub use level::{presets, LevelKind, LevelSpec};
pub use memory::CoreMemory;
