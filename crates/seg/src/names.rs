//! Segment-name allocation: symbolic versus linear dictionaries.
//!
//! §Name Space draws a subtle but consequential distinction: in a
//! *symbolically* segmented name space "the segments are in no sense
//! ordered ... This lack of ordering means that there is no name
//! contiguity to cause the sort of problems that are present in the task
//! of allocating and reallocating addresses. Thus one does not need to
//! search a dictionary for a group of available contiguous segment
//! names, and more importantly, one does not have to reallocate names
//! when the dictionary has become fragmented ... A symbolically
//! segmented name space consequently involves far less bookkeeping than
//! a linearly segmented name space."
//!
//! Experiment E10 makes the claim measurable: [`SymbolicDict`] and
//! [`LinearSegDict`] both serve attach/detach streams of programs
//! needing blocks of segment names; the linear dictionary must find
//! *contiguous* number ranges (each program's segments are numbered
//! consecutively, as when segment numbers occupy fixed high-order
//! address bits) and must renumber live programs when its number space
//! fragments.

use std::collections::{BTreeMap, HashMap};

use dsa_core::ids::SegId;

/// Bookkeeping counters common to both dictionary kinds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NameStats {
    /// Dictionary operations performed (searches, insertions,
    /// removals, renumberings — each touched entry counts one).
    pub bookkeeping_ops: u64,
    /// Segment names that had to be *reallocated* (renumbered) because
    /// the dictionary fragmented. Always zero for the symbolic
    /// dictionary.
    pub names_reallocated: u64,
    /// Attach requests refused for lack of name space.
    pub failures: u64,
}

/// A symbolically segmented dictionary: unordered names, no contiguity.
#[derive(Clone, Debug, Default)]
pub struct SymbolicDict {
    capacity: u32,
    next_seg: u32,
    /// Program -> its segments' ids.
    programs: HashMap<u32, Vec<SegId>>,
    live: u32,
    stats: NameStats,
}

impl SymbolicDict {
    /// Creates a dictionary able to hold `capacity` segment names in
    /// total (bounded only by table storage, not by an address field).
    #[must_use]
    pub fn new(capacity: u32) -> SymbolicDict {
        SymbolicDict {
            capacity,
            ..SymbolicDict::default()
        }
    }

    /// Registers `count` segments for `program`. Each insertion is one
    /// bookkeeping operation; no search for contiguity is ever needed.
    ///
    /// Returns the assigned ids, or `None` (counting a failure) if the
    /// dictionary is full.
    pub fn attach(&mut self, program: u32, count: u32) -> Option<Vec<SegId>> {
        if self.live + count > self.capacity {
            self.stats.failures += 1;
            return None;
        }
        let ids: Vec<SegId> = (0..count)
            .map(|_| {
                // Ids are arbitrary and never reused in order; nothing
                // depends on their values.
                let id = SegId(self.next_seg);
                self.next_seg = self.next_seg.wrapping_add(1);
                self.stats.bookkeeping_ops += 1;
                id
            })
            .collect();
        self.live += count;
        self.programs.insert(program, ids.clone());
        Some(ids)
    }

    /// Removes `program`'s segments.
    pub fn detach(&mut self, program: u32) {
        if let Some(ids) = self.programs.remove(&program) {
            self.live -= ids.len() as u32;
            self.stats.bookkeeping_ops += ids.len() as u64;
        }
    }

    /// Statistics so far.
    #[must_use]
    pub fn stats(&self) -> NameStats {
        self.stats
    }

    /// Names currently live.
    #[must_use]
    pub fn live(&self) -> u32 {
        self.live
    }
}

/// A linearly segmented dictionary: segment numbers are drawn from
/// `0..capacity` and each program needs a *contiguous* range.
#[derive(Clone, Debug)]
pub struct LinearSegDict {
    capacity: u32,
    /// Free number ranges: start -> length.
    free: BTreeMap<u32, u32>,
    /// Program -> (start, length).
    programs: HashMap<u32, (u32, u32)>,
    stats: NameStats,
}

impl LinearSegDict {
    /// Creates a dictionary over segment numbers `0..capacity`.
    #[must_use]
    pub fn new(capacity: u32) -> LinearSegDict {
        let mut free = BTreeMap::new();
        if capacity > 0 {
            free.insert(0, capacity);
        }
        LinearSegDict {
            capacity,
            free,
            programs: HashMap::new(),
            stats: NameStats::default(),
        }
    }

    fn total_free(&self) -> u32 {
        self.free.values().sum()
    }

    fn first_fit(&mut self, count: u32) -> Option<u32> {
        for (&start, &len) in &self.free {
            self.stats.bookkeeping_ops += 1; // the dictionary search
            if len >= count {
                self.free.remove(&start);
                if len > count {
                    self.free.insert(start + count, len - count);
                }
                return Some(start);
            }
        }
        None
    }

    fn release(&mut self, start: u32, len: u32) {
        // Coalesce with neighbours.
        let mut start = start;
        let mut len = len;
        if let Some((&p, &pl)) = self.free.range(..start).next_back() {
            if p + pl == start {
                self.free.remove(&p);
                start = p;
                len += pl;
            }
        }
        if let Some((&s, &sl)) = self.free.range(start + len..).next() {
            if start + len == s {
                self.free.remove(&s);
                len += sl;
            }
        }
        self.free.insert(start, len);
    }

    /// Assigns a contiguous range of `count` segment numbers to
    /// `program`.
    ///
    /// If no contiguous range exists but enough numbers are free in
    /// total, the dictionary is *renumbered*: every live program's range
    /// is slid down (each moved name counts as a reallocation — on a
    /// real machine every stored reference to those segment numbers
    /// would have to be found and updated). Returns the range start, or
    /// `None` (a failure) if the numbers simply do not exist.
    pub fn attach(&mut self, program: u32, count: u32) -> Option<u32> {
        if let Some(start) = self.first_fit(count) {
            // Entering the names costs the same as in the symbolic
            // dictionary; the search probes above are the extra price.
            self.stats.bookkeeping_ops += u64::from(count);
            self.programs.insert(program, (start, count));
            return Some(start);
        }
        if self.total_free() < count {
            self.stats.failures += 1;
            return None;
        }
        // Fragmented: renumber (compact) the dictionary.
        self.renumber();
        // Invariant: total_free() >= count was checked above, and
        // renumber() makes all free numbers contiguous.
        #[allow(clippy::expect_used)]
        let start = self
            .first_fit(count)
            .expect("compaction freed a contiguous range");
        self.stats.bookkeeping_ops += u64::from(count);
        self.programs.insert(program, (start, count));
        Some(start)
    }

    /// Releases `program`'s range.
    pub fn detach(&mut self, program: u32) {
        if let Some((start, len)) = self.programs.remove(&program) {
            self.stats.bookkeeping_ops += u64::from(len);
            self.release(start, len);
        }
    }

    /// Slides all live ranges down to pack the number space.
    fn renumber(&mut self) {
        let mut by_start: Vec<(u32, u32, u32)> = self
            .programs
            .iter()
            .map(|(&p, &(s, l))| (s, l, p))
            .collect();
        by_start.sort_unstable();
        let mut cursor = 0u32;
        for (start, len, prog) in by_start {
            if start != cursor {
                self.programs.insert(prog, (cursor, len));
                self.stats.names_reallocated += u64::from(len);
                self.stats.bookkeeping_ops += u64::from(len);
            }
            cursor += len;
        }
        self.free.clear();
        if cursor < self.capacity {
            self.free.insert(cursor, self.capacity - cursor);
        }
    }

    /// Statistics so far.
    #[must_use]
    pub fn stats(&self) -> NameStats {
        self.stats
    }

    /// The range currently assigned to `program`.
    #[must_use]
    pub fn range_of(&self, program: u32) -> Option<(u32, u32)> {
        self.programs.get(&program).copied()
    }

    /// Names currently live.
    #[must_use]
    pub fn live(&self) -> u32 {
        self.programs.values().map(|&(_, l)| l).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbolic_never_fails_until_full_and_never_reallocates() {
        let mut d = SymbolicDict::new(10);
        let a = d.attach(1, 4).unwrap();
        assert_eq!(a.len(), 4);
        d.attach(2, 4).unwrap();
        d.detach(1);
        // 6 free names, NOT contiguous in any sense — irrelevant here.
        assert!(d.attach(3, 6).is_some());
        assert_eq!(d.stats().names_reallocated, 0);
        assert_eq!(d.stats().failures, 0);
        assert!(d.attach(4, 1).is_none(), "capacity exhausted");
        assert_eq!(d.stats().failures, 1);
    }

    #[test]
    fn linear_allocates_contiguous_ranges() {
        let mut d = LinearSegDict::new(16);
        assert_eq!(d.attach(1, 4), Some(0));
        assert_eq!(d.attach(2, 4), Some(4));
        assert_eq!(d.range_of(1), Some((0, 4)));
        assert_eq!(d.live(), 8);
    }

    #[test]
    fn linear_fragmentation_forces_renumbering() {
        let mut d = LinearSegDict::new(12);
        d.attach(1, 4).unwrap(); // [0,4)
        d.attach(2, 4).unwrap(); // [4,8)
        d.attach(3, 4).unwrap(); // [8,12)
        d.detach(1);
        d.detach(3);
        // 8 numbers free but split 4+4: a 6-range needs renumbering.
        let start = d.attach(4, 6).unwrap();
        assert_eq!(start, 4, "after compaction program 2 sits at 0..4");
        assert_eq!(d.range_of(2), Some((0, 4)));
        assert_eq!(
            d.stats().names_reallocated,
            4,
            "program 2's four names moved"
        );
    }

    #[test]
    fn linear_fails_when_numbers_truly_exhausted() {
        let mut d = LinearSegDict::new(8);
        d.attach(1, 8).unwrap();
        assert_eq!(d.attach(2, 1), None);
        assert_eq!(d.stats().failures, 1);
    }

    #[test]
    fn linear_detach_coalesces_ranges() {
        let mut d = LinearSegDict::new(12);
        d.attach(1, 4).unwrap();
        d.attach(2, 4).unwrap();
        d.attach(3, 4).unwrap();
        d.detach(2);
        d.detach(1);
        // [0,8) coalesced: an 8-range fits without renumbering.
        let before = d.stats().names_reallocated;
        assert_eq!(d.attach(4, 8), Some(0));
        assert_eq!(d.stats().names_reallocated, before);
    }

    #[test]
    fn symbolic_bookkeeping_is_cheaper_under_churn() {
        let mut sym = SymbolicDict::new(64);
        let mut lin = LinearSegDict::new(64);
        // Churn: attach 8 programs of 8, detach odd ones, attach sizes
        // that need renumbering on the linear side.
        for p in 0..8 {
            sym.attach(p, 8);
            lin.attach(p, 8);
        }
        for p in [1u32, 3, 5, 7] {
            sym.detach(p);
            lin.detach(p);
        }
        for (i, p) in (8..10u32).enumerate() {
            sym.attach(p, 12 + i as u32);
            lin.attach(p, 12 + i as u32);
        }
        assert_eq!(sym.stats().names_reallocated, 0);
        assert!(lin.stats().names_reallocated > 0);
        assert!(
            lin.stats().bookkeeping_ops > sym.stats().bookkeeping_ops,
            "linear {} !> symbolic {}",
            lin.stats().bookkeeping_ops,
            sym.stats().bookkeeping_ops
        );
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;

    #[test]
    fn detach_of_unknown_program_is_a_noop() {
        let mut sym = SymbolicDict::new(8);
        sym.detach(99);
        assert_eq!(sym.stats().bookkeeping_ops, 0);
        let mut lin = LinearSegDict::new(8);
        lin.detach(99);
        assert_eq!(lin.stats().bookkeeping_ops, 0);
        assert_eq!(lin.live(), 0);
    }

    #[test]
    fn zero_capacity_linear_dict_refuses_everything() {
        let mut d = LinearSegDict::new(0);
        assert_eq!(d.attach(1, 1), None);
        assert_eq!(d.stats().failures, 1);
    }

    #[test]
    fn reattach_after_full_detach_reuses_numbers() {
        let mut d = LinearSegDict::new(8);
        assert_eq!(d.attach(1, 8), Some(0));
        d.detach(1);
        assert_eq!(d.attach(2, 8), Some(0), "the whole space coalesced back");
    }
}
