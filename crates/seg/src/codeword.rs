//! Rice University codewords.
//!
//! Appendix A.4: "codewords are used to provide a compact
//! characterization of individual program or data segments, and are thus
//! approximately analogous to the descriptors, or PRT elements, used in
//! the B5000 system. Probably the major difference between codewords and
//! descriptors is that codewords contain an index register address. When
//! the codeword is used to access a segment, the contents of the
//! specified index register are automatically added to the segment base
//! address given in the codewords. The equivalent operation on the B5000
//! would have to be programmed explicitly."

use dsa_core::error::AccessFault;
use dsa_core::ids::{PhysAddr, SegId, Words};

/// The machine's index registers (the Rice machine let any storage word
/// serve; eight architectural registers suffice for our simulations).
#[derive(Clone, Debug, Default)]
pub struct IndexRegisters {
    regs: [u64; 8],
}

impl IndexRegisters {
    /// Creates zeroed registers.
    #[must_use]
    pub fn new() -> IndexRegisters {
        IndexRegisters::default()
    }

    /// Sets register `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= 8`.
    pub fn set(&mut self, r: u8, value: u64) {
        self.regs[r as usize] = value;
    }

    /// Reads register `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= 8`.
    #[must_use]
    pub fn get(&self, r: u8) -> u64 {
        self.regs[r as usize]
    }
}

/// A codeword: descriptor plus automatic index register.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Codeword {
    /// The segment this codeword characterizes.
    pub seg: SegId,
    /// Base address in working storage, meaningful when `present`.
    pub base: PhysAddr,
    /// Extent in words.
    pub limit: Words,
    /// Whether the segment is in working storage.
    pub present: bool,
    /// Index register automatically added on access, if any.
    pub index_register: Option<u8>,
}

impl Codeword {
    /// A codeword for an absent segment.
    #[must_use]
    pub fn absent(seg: SegId, limit: Words) -> Codeword {
        Codeword {
            seg,
            base: PhysAddr(0),
            limit,
            present: false,
            index_register: None,
        }
    }

    /// Attaches an index register.
    #[must_use]
    pub fn with_index(mut self, r: u8) -> Codeword {
        self.index_register = Some(r);
        self
    }

    /// Resolves an access at `offset`, automatically adding the indexed
    /// register's contents first (the Rice hardware's contribution; "the
    /// equivalent operation on the B5000 would have to be programmed
    /// explicitly").
    ///
    /// # Errors
    ///
    /// * [`AccessFault::BoundsViolation`] if the effective offset
    ///   exceeds the limit;
    /// * [`AccessFault::MissingSegment`] if the segment is absent.
    pub fn resolve(&self, offset: Words, regs: &IndexRegisters) -> Result<PhysAddr, AccessFault> {
        let effective = offset + self.index_register.map_or(0, |r| regs.get(r));
        if effective >= self.limit {
            return Err(AccessFault::BoundsViolation {
                seg: self.seg,
                offset: effective,
                limit: self.limit,
            });
        }
        if !self.present {
            return Err(AccessFault::MissingSegment { seg: self.seg });
        }
        Ok(self.base.offset(effective))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_without_index_register() {
        let mut cw = Codeword::absent(SegId(1), 50);
        cw.base = PhysAddr(100);
        cw.present = true;
        let regs = IndexRegisters::new();
        assert_eq!(cw.resolve(7, &regs).unwrap(), PhysAddr(107));
    }

    #[test]
    fn index_register_is_added_automatically() {
        let mut cw = Codeword::absent(SegId(1), 50).with_index(3);
        cw.base = PhysAddr(100);
        cw.present = true;
        let mut regs = IndexRegisters::new();
        regs.set(3, 10);
        assert_eq!(cw.resolve(7, &regs).unwrap(), PhysAddr(117));
        regs.set(3, 0);
        assert_eq!(cw.resolve(7, &regs).unwrap(), PhysAddr(107));
    }

    #[test]
    fn effective_offset_is_bounds_checked() {
        let mut cw = Codeword::absent(SegId(2), 20).with_index(0);
        cw.present = true;
        let mut regs = IndexRegisters::new();
        regs.set(0, 15);
        // 6 + 15 = 21 >= 20.
        assert!(matches!(
            cw.resolve(6, &regs),
            Err(AccessFault::BoundsViolation {
                offset: 21,
                limit: 20,
                ..
            })
        ));
        assert!(cw.resolve(4, &regs).is_ok());
    }

    #[test]
    fn absent_segment_traps_after_bounds() {
        let cw = Codeword::absent(SegId(3), 10);
        let regs = IndexRegisters::new();
        assert!(matches!(
            cw.resolve(5, &regs),
            Err(AccessFault::MissingSegment { seg: SegId(3) })
        ));
        assert!(matches!(
            cw.resolve(10, &regs),
            Err(AccessFault::BoundsViolation { .. })
        ));
    }
}
