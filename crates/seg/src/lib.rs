//! Segmentation.
//!
//! "The segment represents a convenient high level notation for creating
//! a meaningful structuring of the information used by a program" —
//! §Name Space. This crate implements the segment machinery of the
//! paper's machines:
//!
//! * [`descriptor`] — B5000 descriptors and the Program Reference Table
//!   (A.3): per-segment base/limit/presence, consulted on every access;
//! * [`codeword`] — Rice codewords (A.4): descriptors that additionally
//!   name an index register whose contents are added automatically on
//!   access;
//! * [`names`] — segment *name* allocation: the symbolically segmented
//!   dictionary (B5000) that never fragments, versus the linearly
//!   segmented dictionary (360/67 style) that needs contiguous number
//!   ranges and hence suffers exactly the fragmentation/reallocation
//!   problems of any linear space (experiment E10);
//! * [`store`] — a segment-level virtual memory: segments are the unit
//!   of fetch and replacement (fetch on first reference, as on the
//!   B5000 and Rice machines), placed in working storage by a
//!   variable-unit allocator, with cyclic (B5000) or Rice-iterative
//!   replacement, automatic bounds checking (special hardware facility
//!   (ii)), and segment-granular advice;
//! * [`sharing`] — segmentation advantage (ii): segments as the unit of
//!   information protection and sharing, with capability-checked access
//!   and one resident copy per shared segment.

pub mod codeword;
pub mod descriptor;
pub mod names;
pub mod sharing;
pub mod store;

pub use codeword::{Codeword, IndexRegisters};
pub use descriptor::{Descriptor, Prt};
pub use names::{LinearSegDict, NameStats, SymbolicDict};
pub use sharing::{AccessMode, AccessType, SharedSegments, SharingStats};
pub use store::{SegReplacement, SegStats, SegmentStore, StoreBackend, TouchReport};
