//! Segment sharing and protection.
//!
//! Segmentation advantage (ii) of the paper: "Segments form a very
//! convenient unit for purposes of information protection and sharing,
//! between programs." (The deeper treatment the paper defers to is
//! Dennis's *Segmentation and the design of multiprogrammed computer
//! systems* and the Evans–LeClerc access-control work it cites.)
//!
//! [`SharedSegments`] is a registry over a [`SegmentStore`]: programs
//! *publish* segments, *grant* capabilities (read / write / execute
//! subsets) to other programs, and make every access through a
//! capability check. The payoff the paper names is measured directly:
//! one resident copy serves every sharer, so the words saved versus
//! private copies is `(sharers - 1) × size` per segment.

use std::collections::HashMap;

use dsa_core::error::{AccessFault, CoreError};
use dsa_core::ids::{SegId, Words};

use crate::store::{SegmentStore, TouchReport};

/// The rights a capability carries.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct AccessMode {
    /// May fetch data words.
    pub read: bool,
    /// May store into the segment.
    pub write: bool,
    /// May fetch instructions from the segment.
    pub execute: bool,
}

impl AccessMode {
    /// Read-only data sharing (the common library case).
    pub const RO: AccessMode = AccessMode {
        read: true,
        write: false,
        execute: false,
    };
    /// Full private access.
    pub const RW: AccessMode = AccessMode {
        read: true,
        write: true,
        execute: false,
    };
    /// A pure (shared) procedure: executable, not writable.
    pub const RX: AccessMode = AccessMode {
        read: true,
        write: false,
        execute: true,
    };

    /// True if `self` permits everything `other` permits.
    #[must_use]
    pub fn covers(self, other: AccessMode) -> bool {
        (!other.read || self.read)
            && (!other.write || self.write)
            && (!other.execute || self.execute)
    }
}

/// The kind of access a program attempts.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessType {
    /// Data read.
    Read,
    /// Data write.
    Write,
    /// Instruction fetch.
    Execute,
}

impl AccessType {
    fn label(self) -> &'static str {
        match self {
            AccessType::Read => "read",
            AccessType::Write => "write",
            AccessType::Execute => "execute",
        }
    }

    fn permitted_by(self, mode: AccessMode) -> bool {
        match self {
            AccessType::Read => mode.read,
            AccessType::Write => mode.write,
            AccessType::Execute => mode.execute,
        }
    }
}

/// Sharing statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct SharingStats {
    /// Capability checks performed.
    pub checks: u64,
    /// Accesses refused by protection.
    pub protection_violations: u64,
    /// Words that private copies would have required beyond the shared
    /// residency (updated on grant/revoke).
    pub words_saved_by_sharing: Words,
}

/// A capability-checked sharing layer over a segment store.
#[derive(Debug)]
pub struct SharedSegments {
    store: SegmentStore,
    /// Segment -> (owner program, declared size).
    published: HashMap<SegId, (u32, Words)>,
    /// (program, segment) -> granted mode.
    grants: HashMap<(u32, SegId), AccessMode>,
    stats: SharingStats,
}

impl SharedSegments {
    /// Wraps a segment store.
    #[must_use]
    pub fn new(store: SegmentStore) -> SharedSegments {
        SharedSegments {
            store,
            published: HashMap::new(),
            grants: HashMap::new(),
            stats: SharingStats::default(),
        }
    }

    /// Statistics so far.
    #[must_use]
    pub fn stats(&self) -> SharingStats {
        self.stats
    }

    /// The underlying store (for residency queries in tests and
    /// experiments).
    #[must_use]
    pub fn store(&self) -> &SegmentStore {
        &self.store
    }

    /// Publishes a new segment owned by `owner` with full rights.
    ///
    /// # Errors
    ///
    /// Propagates the store's declaration errors.
    pub fn publish(
        &mut self,
        owner: u32,
        seg: SegId,
        size: Words,
        owner_mode: AccessMode,
    ) -> Result<(), CoreError> {
        self.store.define(seg, size)?;
        self.published.insert(seg, (owner, size));
        self.grants.insert((owner, seg), owner_mode);
        Ok(())
    }

    /// Grants `mode` on `seg` to `to`. Only the owner may grant, and
    /// only rights the owner itself holds.
    ///
    /// # Errors
    ///
    /// * [`AccessFault::UnknownSegment`] if unpublished;
    /// * [`AccessFault::ProtectionViolation`] if `by` is not the owner
    ///   or tries to grant rights it lacks.
    pub fn grant(
        &mut self,
        by: u32,
        to: u32,
        seg: SegId,
        mode: AccessMode,
    ) -> Result<(), CoreError> {
        let &(owner, size) = self
            .published
            .get(&seg)
            .ok_or(AccessFault::UnknownSegment { seg })?;
        if by != owner {
            return Err(AccessFault::ProtectionViolation {
                seg,
                attempted: "grant",
            }
            .into());
        }
        let owner_mode = self.grants[&(owner, seg)];
        if !owner_mode.covers(mode) {
            return Err(AccessFault::ProtectionViolation {
                seg,
                attempted: "grant beyond own rights",
            }
            .into());
        }
        if self.grants.insert((to, seg), mode).is_none() && to != owner {
            // A new sharer: one more private copy avoided.
            self.stats.words_saved_by_sharing += size;
        }
        Ok(())
    }

    /// Revokes `to`'s capability on `seg`.
    pub fn revoke(&mut self, to: u32, seg: SegId) {
        if self.grants.remove(&(to, seg)).is_some() {
            if let Some(&(owner, size)) = self.published.get(&seg) {
                if to != owner {
                    self.stats.words_saved_by_sharing =
                        self.stats.words_saved_by_sharing.saturating_sub(size);
                }
            }
        }
    }

    /// The mode `program` currently holds on `seg`, if any.
    #[must_use]
    pub fn mode_of(&self, program: u32, seg: SegId) -> Option<AccessMode> {
        self.grants.get(&(program, seg)).copied()
    }

    /// Number of programs holding a capability on `seg`.
    #[must_use]
    pub fn sharers(&self, seg: SegId) -> usize {
        self.grants.keys().filter(|&&(_, s)| s == seg).count()
    }

    /// An access by `program`: the capability is checked, then the
    /// (single, shared) resident copy is touched.
    ///
    /// # Errors
    ///
    /// * [`AccessFault::ProtectionViolation`] if the capability is
    ///   absent or insufficient (counted);
    /// * the store's bounds/fetch errors otherwise.
    pub fn access(
        &mut self,
        program: u32,
        seg: SegId,
        offset: Words,
        kind: AccessType,
    ) -> Result<TouchReport, CoreError> {
        self.stats.checks += 1;
        let mode = self.grants.get(&(program, seg)).copied();
        match mode {
            Some(m) if kind.permitted_by(m) => {
                self.store.touch(seg, offset, kind == AccessType::Write)
            }
            _ => {
                self.stats.protection_violations += 1;
                Err(AccessFault::ProtectionViolation {
                    seg,
                    attempted: kind.label(),
                }
                .into())
            }
        }
    }

    /// Unpublishes `seg`, revoking every capability and deleting the
    /// segment.
    ///
    /// # Errors
    ///
    /// Propagates the store's deletion error.
    pub fn unpublish(&mut self, seg: SegId) -> Result<(), CoreError> {
        self.published.remove(&seg);
        self.grants.retain(|&(_, s), _| s != seg);
        self.store.delete(seg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{SegReplacement, StoreBackend};
    use dsa_freelist::freelist::{FreeListAllocator, Placement};

    fn shared(capacity: Words) -> SharedSegments {
        SharedSegments::new(SegmentStore::new(
            StoreBackend::FreeList(FreeListAllocator::new(capacity, Placement::BestFit)),
            SegReplacement::Cyclic,
            u64::MAX,
        ))
    }

    #[test]
    fn publish_grant_access() {
        let mut s = shared(2000);
        s.publish(1, SegId(0), 500, AccessMode::RW).unwrap();
        s.grant(1, 2, SegId(0), AccessMode::RO).unwrap();
        // Owner writes, sharer reads.
        assert!(s.access(1, SegId(0), 10, AccessType::Write).is_ok());
        assert!(s.access(2, SegId(0), 10, AccessType::Read).is_ok());
        assert_eq!(s.sharers(SegId(0)), 2);
    }

    #[test]
    fn write_through_ro_capability_is_trapped() {
        let mut s = shared(2000);
        s.publish(1, SegId(0), 500, AccessMode::RW).unwrap();
        s.grant(1, 2, SegId(0), AccessMode::RO).unwrap();
        let err = s.access(2, SegId(0), 10, AccessType::Write).unwrap_err();
        assert!(matches!(
            err,
            CoreError::Access(AccessFault::ProtectionViolation {
                attempted: "write",
                ..
            })
        ));
        assert_eq!(s.stats().protection_violations, 1);
    }

    #[test]
    fn no_capability_means_no_access() {
        let mut s = shared(2000);
        s.publish(1, SegId(0), 500, AccessMode::RW).unwrap();
        assert!(s.access(3, SegId(0), 0, AccessType::Read).is_err());
    }

    #[test]
    fn only_owner_grants_and_only_within_own_rights() {
        let mut s = shared(2000);
        s.publish(1, SegId(0), 500, AccessMode::RX).unwrap();
        assert!(matches!(
            s.grant(2, 3, SegId(0), AccessMode::RO),
            Err(CoreError::Access(AccessFault::ProtectionViolation { .. }))
        ));
        // Owner holds RX, cannot grant write.
        assert!(s.grant(1, 3, SegId(0), AccessMode::RW).is_err());
        assert!(s.grant(1, 3, SegId(0), AccessMode::RX).is_ok());
    }

    #[test]
    fn one_resident_copy_serves_all_sharers() {
        let mut s = shared(2000);
        s.publish(1, SegId(0), 600, AccessMode::RX).unwrap();
        for p in 2..=5 {
            s.grant(1, p, SegId(0), AccessMode::RX).unwrap();
        }
        for p in 1..=5 {
            s.access(p, SegId(0), 7, AccessType::Execute).unwrap();
        }
        assert_eq!(s.store().resident_words(), 600, "one copy, five users");
        assert_eq!(
            s.store().stats().seg_faults,
            1,
            "only the first access fetched"
        );
        assert_eq!(s.stats().words_saved_by_sharing, 4 * 600);
    }

    #[test]
    fn revoke_removes_rights_and_savings() {
        let mut s = shared(2000);
        s.publish(1, SegId(0), 300, AccessMode::RW).unwrap();
        s.grant(1, 2, SegId(0), AccessMode::RO).unwrap();
        assert_eq!(s.stats().words_saved_by_sharing, 300);
        s.revoke(2, SegId(0));
        assert_eq!(s.stats().words_saved_by_sharing, 0);
        assert!(s.access(2, SegId(0), 0, AccessType::Read).is_err());
    }

    #[test]
    fn unpublish_clears_everything() {
        let mut s = shared(2000);
        s.publish(1, SegId(0), 300, AccessMode::RW).unwrap();
        s.grant(1, 2, SegId(0), AccessMode::RO).unwrap();
        s.access(1, SegId(0), 0, AccessType::Read).unwrap();
        s.unpublish(SegId(0)).unwrap();
        assert_eq!(s.sharers(SegId(0)), 0);
        assert!(s.access(1, SegId(0), 0, AccessType::Read).is_err());
    }

    #[test]
    fn covers_is_a_partial_order() {
        assert!(AccessMode::RW.covers(AccessMode::RO));
        assert!(!AccessMode::RO.covers(AccessMode::RW));
        assert!(AccessMode::RX.covers(AccessMode::RO));
        assert!(!AccessMode::RO.covers(AccessMode::RX));
        let all = AccessMode {
            read: true,
            write: true,
            execute: true,
        };
        for m in [AccessMode::RO, AccessMode::RW, AccessMode::RX] {
            assert!(all.covers(m));
            assert!(m.covers(m));
        }
    }
}
