//! A segment-level virtual memory.
//!
//! On the B5000 "the segment is used directly as the unit of allocation.
//! Each segment is fetched when reference is first made to information
//! in the segment" (A.3); the Rice machine works the same way over its
//! inactive-block chain, with "a replacement algorithm, which takes into
//! account whether a copy of a segment exists in backing storage and
//! whether or not a segment has been used since it was last considered
//! for replacement, ... applied iteratively until a block of sufficient
//! size is released" (A.4).
//!
//! [`SegmentStore`] is that engine: segments are declared, fetched on
//! first touch, placed by a variable-unit allocator (free-list with any
//! placement policy, or the Rice chain), evicted by a cyclic or
//! Rice-iterative strategy, and bounds-checked on every access.

use std::collections::HashMap;

use dsa_core::advice::{Advice, AdviceUnit};
use dsa_core::error::{AccessFault, AllocError, CoreError};
use dsa_core::ids::{PhysAddr, SegId, Words};
use dsa_freelist::compaction;
use dsa_freelist::freelist::FreeListAllocator;
use dsa_freelist::rice::RiceAllocator;
use dsa_probe::{DegradationStep, EventKind, NullProbe, Probe, Stamp};

/// Which variable-unit allocator places segments.
//
// The free-list variant carries its segregated size-class bins inline,
// which dwarfs the Rice variant. There is exactly one `StoreBackend`
// per store and it never moves, so boxing would add a pointer chase to
// every placement for no footprint win.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum StoreBackend {
    /// An address-ordered free list with the given placement policy.
    FreeList(FreeListAllocator),
    /// The Rice inactive-block chain.
    Rice(RiceAllocator),
}

impl StoreBackend {
    fn alloc(&mut self, id: u64, size: Words) -> Result<PhysAddr, AllocError> {
        match self {
            StoreBackend::FreeList(a) => a.alloc(id, size),
            StoreBackend::Rice(a) => a.alloc(id, size, id),
        }
    }

    fn free(&mut self, id: u64) -> Result<(), AllocError> {
        match self {
            StoreBackend::FreeList(a) => a.free(id),
            StoreBackend::Rice(a) => a.free(id),
        }
    }

    fn lookup(&self, id: u64) -> Option<(PhysAddr, Words)> {
        match self {
            StoreBackend::FreeList(a) => a.lookup(id),
            StoreBackend::Rice(a) => a.lookup(id),
        }
    }

    /// Capacity of the working storage behind this backend.
    fn capacity(&self) -> Words {
        match self {
            StoreBackend::FreeList(a) => a.capacity(),
            StoreBackend::Rice(a) => a.capacity(),
        }
    }

    /// Largest single allocation the backend could satisfy right now.
    fn largest_free(&self) -> Words {
        match self {
            StoreBackend::FreeList(a) => a.largest_free(),
            StoreBackend::Rice(a) => a.largest_free(),
        }
    }
}

/// Segment replacement strategy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SegReplacement {
    /// Essentially cyclical selection among resident segments — the
    /// strategy the B5000 developers found effective (A.3).
    Cyclic,
    /// The Rice criteria (A.4): prefer segments unused since last
    /// considered; among those, prefer ones with a valid backing copy
    /// (no write-back needed). Use marks are cleared as segments are
    /// considered.
    RiceIterative,
}

/// Per-segment state.
#[derive(Clone, Copy, Debug)]
struct SegState {
    size: Words,
    resident: bool,
    /// Used since last replacement consideration.
    used: bool,
    /// Written since last fetch (backing copy stale).
    dirty: bool,
    /// A copy exists in backing storage at all (false until first
    /// eviction writes one, true after any fetch).
    has_backing_copy: bool,
    pinned: bool,
}

/// Cumulative statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct SegStats {
    /// Accesses attempted (including faulting ones).
    pub accesses: u64,
    /// Segment fetches (fetch-on-first-reference faults).
    pub seg_faults: u64,
    /// Words fetched from backing storage.
    pub fetched_words: u64,
    /// Segments evicted.
    pub evictions: u64,
    /// Words written back on eviction of dirty segments.
    pub writeback_words: u64,
    /// Bounds violations intercepted.
    pub bounds_violations: u64,
    /// Accesses that failed because working storage could not hold the
    /// segment even after iterative replacement.
    pub capacity_failures: u64,
    /// Degradation rungs climbed under storage pressure (coalesce,
    /// compact, evict-victims) when the ladder is enabled. Mirrors the
    /// `DegradationStep` events this store emits, one for one.
    pub degradation_steps: u64,
}

/// What one touch did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TouchReport {
    /// The access faulted and the segment was fetched.
    pub fetched: bool,
    /// Words brought in by this touch (segment size if fetched).
    pub fetched_words: Words,
    /// Segments evicted to make room.
    pub evictions: u32,
    /// Words written back by those evictions.
    pub writeback_words: Words,
    /// The absolute address the access resolved to.
    pub addr: PhysAddr,
}

/// The segment-level virtual memory.
#[derive(Debug)]
pub struct SegmentStore {
    backend: StoreBackend,
    policy: SegReplacement,
    segs: HashMap<SegId, SegState>,
    /// Rotation order for cyclic / iterative consideration.
    rotation: Vec<SegId>,
    hand: usize,
    /// Maximum size a single segment may have (1024 on the B5000).
    max_segment: Words,
    /// Climb the graceful-degradation ladder (coalesce → compact →
    /// evict) before declaring a fetch out of storage.
    degrade: bool,
    stats: SegStats,
}

impl SegmentStore {
    /// Creates a store. `max_segment` bounds individual segments (the
    /// B5000's 1024-word limit; use `u64::MAX` for no limit).
    #[must_use]
    pub fn new(backend: StoreBackend, policy: SegReplacement, max_segment: Words) -> SegmentStore {
        SegmentStore {
            backend,
            policy,
            segs: HashMap::new(),
            rotation: Vec::new(),
            hand: 0,
            max_segment,
            degrade: false,
            stats: SegStats::default(),
        }
    }

    /// Enables the graceful-degradation ladder: when a fetch cannot be
    /// placed outright, the cheapest recovery runs first — coalescing
    /// adjacent free blocks (the Rice chain's deferred combining),
    /// then compacting working storage (free list), and only then
    /// evicting victims. Each rung taken emits a `DegradationStep`
    /// event and counts in [`SegStats::degradation_steps`].
    #[must_use]
    pub fn with_degradation(mut self) -> SegmentStore {
        self.enable_degradation();
        self
    }

    /// Non-consuming form of [`SegmentStore::with_degradation`], for
    /// machines that arm recovery after assembly.
    pub fn enable_degradation(&mut self) {
        self.degrade = true;
    }

    /// Drops every segment pin, returning how many were released. The
    /// shed-load rung of a machine's degradation ladder calls this to
    /// surrender advisory claims when a demand would otherwise fail.
    pub fn unpin_all(&mut self) -> usize {
        let mut n = 0;
        for st in self.segs.values_mut() {
            if st.pinned {
                st.pinned = false;
                n += 1;
            }
        }
        n
    }

    /// Cumulative statistics.
    #[must_use]
    pub fn stats(&self) -> &SegStats {
        &self.stats
    }

    /// Total working-storage capacity.
    #[must_use]
    pub fn capacity(&self) -> Words {
        self.backend.capacity()
    }

    /// Number of resident segments.
    #[must_use]
    pub fn resident_count(&self) -> usize {
        self.segs.values().filter(|s| s.resident).count()
    }

    /// Words of resident segments.
    #[must_use]
    pub fn resident_words(&self) -> Words {
        self.segs
            .values()
            .filter(|s| s.resident)
            .map(|s| s.size)
            .sum()
    }

    /// Declares segment `seg` with extent `size` (a dynamic segment
    /// coming into existence). It is not fetched until touched.
    ///
    /// # Errors
    ///
    /// * [`AllocError::RequestTooLarge`] if `size` exceeds the
    ///   per-segment maximum;
    /// * [`AllocError::AlreadyAllocated`] if `seg` exists;
    /// * [`AllocError::ZeroSize`] for an empty segment.
    pub fn define(&mut self, seg: SegId, size: Words) -> Result<(), CoreError> {
        if size == 0 {
            return Err(AllocError::ZeroSize.into());
        }
        if size > self.max_segment {
            return Err(AllocError::RequestTooLarge {
                requested: size,
                max: self.max_segment,
            }
            .into());
        }
        if self.segs.contains_key(&seg) {
            return Err(AllocError::AlreadyAllocated.into());
        }
        self.segs.insert(
            seg,
            SegState {
                size,
                resident: false,
                used: false,
                dirty: false,
                // A fresh dynamic segment has no meaningful contents to
                // fetch; its "fetch" still occupies storage but moves no
                // words. We model it as having a (zero) backing copy.
                has_backing_copy: true,
                pinned: false,
            },
        );
        Ok(())
    }

    /// Deletes segment `seg` (a dynamic segment ceasing to exist).
    ///
    /// # Errors
    ///
    /// Returns [`AccessFault::UnknownSegment`] if it does not exist.
    // Internal invariant: a resident segment always has a backing
    // allocation; user-visible failures return typed errors above.
    #[allow(clippy::expect_used)]
    pub fn delete(&mut self, seg: SegId) -> Result<(), CoreError> {
        let state = self
            .segs
            .remove(&seg)
            .ok_or(AccessFault::UnknownSegment { seg })?;
        if state.resident {
            self.backend
                .free(u64::from(seg.0))
                .expect("resident segment is allocated");
            self.rotation.retain(|&s| s != seg);
        }
        Ok(())
    }

    /// Changes segment `seg`'s extent. A resident segment is
    /// reallocated: grow may move it (and may evict others); shrink
    /// frees the tail by reallocation.
    ///
    /// # Errors
    ///
    /// As for [`SegmentStore::define`], plus
    /// [`AccessFault::UnknownSegment`].
    // Internal invariants: existence is checked before the expects run;
    // user-visible failures return typed errors.
    #[allow(clippy::expect_used)]
    pub fn resize(&mut self, seg: SegId, size: Words) -> Result<(), CoreError> {
        if size == 0 {
            return Err(AllocError::ZeroSize.into());
        }
        if size > self.max_segment {
            return Err(AllocError::RequestTooLarge {
                requested: size,
                max: self.max_segment,
            }
            .into());
        }
        let state = self
            .segs
            .get(&seg)
            .copied()
            .ok_or(AccessFault::UnknownSegment { seg })?;
        if state.resident {
            // Reallocate: free, then fetch-place at the new size.
            self.backend
                .free(u64::from(seg.0))
                .expect("resident segment is allocated");
            self.rotation.retain(|&s| s != seg);
            let st = self.segs.get_mut(&seg).expect("checked above");
            st.resident = false;
            st.size = size;
            // Bring it back immediately (the program is using it).
            self.fetch(seg)?;
        } else {
            self.segs.get_mut(&seg).expect("checked above").size = size;
        }
        Ok(())
    }

    /// Picks an eviction victim, or `None` if nothing is evictable.
    // Internal invariant: the rotation lists resident segments only.
    #[allow(clippy::expect_used)]
    fn pick_victim(&mut self) -> Option<SegId> {
        if self.rotation.is_empty() {
            return None;
        }
        let n = self.rotation.len();
        match self.policy {
            SegReplacement::Cyclic => {
                for _ in 0..n {
                    self.hand %= self.rotation.len();
                    let seg = self.rotation[self.hand];
                    self.hand += 1;
                    if !self.segs[&seg].pinned {
                        return Some(seg);
                    }
                }
                None
            }
            SegReplacement::RiceIterative => {
                // Two sweeps: first pass prefers unused+clean, clearing
                // use marks as it considers; a page unused and with a
                // valid backing copy is free to drop.
                let mut best: Option<(u8, SegId)> = None;
                for _ in 0..n {
                    self.hand %= self.rotation.len();
                    let seg = self.rotation[self.hand];
                    self.hand += 1;
                    let st = self.segs.get_mut(&seg).expect("rotation is resident");
                    if st.pinned {
                        continue;
                    }
                    let class = (u8::from(st.used) << 1) | u8::from(st.dirty);
                    st.used = false; // considered: clear the use mark
                    if class == 0 {
                        return Some(seg);
                    }
                    if best.is_none_or(|(c, _)| class < c) {
                        best = Some((class, seg));
                    }
                }
                best.map(|(_, s)| s)
            }
        }
    }

    // Internal invariants: callers pass a victim from `pick_victim`,
    // which only yields resident (hence allocated) segments.
    #[allow(clippy::expect_used)]
    fn evict_probed<P: Probe + ?Sized>(&mut self, seg: SegId, at: Stamp, probe: &mut P) -> Words {
        let st = self.segs.get_mut(&seg).expect("victim exists");
        debug_assert!(st.resident);
        let size = st.size;
        st.resident = false;
        let mut writeback = 0;
        if st.dirty || !st.has_backing_copy {
            writeback = st.size;
            st.has_backing_copy = true;
            st.dirty = false;
        }
        self.backend
            .free(u64::from(seg.0))
            .expect("resident segment is allocated");
        self.rotation.retain(|&s| s != seg);
        self.stats.evictions += 1;
        self.stats.writeback_words += writeback;
        probe.emit(
            EventKind::Evict {
                dirty: writeback > 0,
                words: size,
            },
            at,
        );
        writeback
    }

    /// Fetches `seg` into working storage, evicting iteratively as
    /// needed. Returns `(evictions, writeback_words)`.
    fn fetch(&mut self, seg: SegId) -> Result<(u32, Words), CoreError> {
        self.fetch_probed(seg, Stamp::vtime(0), &mut NullProbe)
    }

    // Internal invariant: every caller verifies `seg` is declared.
    #[allow(clippy::expect_used)]
    fn fetch_probed<P: Probe + ?Sized>(
        &mut self,
        seg: SegId,
        at: Stamp,
        probe: &mut P,
    ) -> Result<(u32, Words), CoreError> {
        let size = self.segs[&seg].size;
        let mut evictions = 0u32;
        let mut writeback = 0;
        // Each degradation rung fires at most once per fetch; without
        // the ladder the loop goes straight to eviction, as the B5000
        // and Rice machines did.
        let mut may_coalesce = self.degrade;
        let mut may_compact = self.degrade;
        let mut entered_eviction = false;
        loop {
            // The Rice allocator combines adjacent inactive blocks
            // itself when a placement fails (deferred coalescing); watch
            // its merge counter so that recovery is recorded as the
            // ladder's first rung. (The free list coalesces on every
            // free, so it has no cheaper rung than compaction.)
            let combined_before = match &self.backend {
                StoreBackend::Rice(a) if may_coalesce => a.stats().blocks_combined,
                _ => 0,
            };
            let placed = self.backend.alloc(u64::from(seg.0), size);
            if may_coalesce {
                if let StoreBackend::Rice(a) = &self.backend {
                    if a.stats().blocks_combined > combined_before {
                        may_coalesce = false;
                        self.stats.degradation_steps += 1;
                        probe.emit(
                            EventKind::DegradationStep {
                                step: DegradationStep::Coalesce,
                            },
                            at,
                        );
                    }
                }
            }
            match placed {
                Ok(_addr) => break,
                Err(AllocError::OutOfStorage { .. }) => {
                    if may_compact {
                        may_compact = false;
                        if let StoreBackend::FreeList(a) = &mut self.backend {
                            // Compaction can only help when free words
                            // are split across holes.
                            if a.hole_count() > 1 && a.free_words() >= size {
                                // Segments are looked up on every touch,
                                // so no addresses need forwarding here.
                                compaction::compact_probed(a, |_, _, _, _| {}, at, probe);
                                self.stats.degradation_steps += 1;
                                probe.emit(
                                    EventKind::DegradationStep {
                                        step: DegradationStep::Compact,
                                    },
                                    at,
                                );
                                continue;
                            }
                        }
                    }
                    if self.degrade && !entered_eviction {
                        entered_eviction = true;
                        self.stats.degradation_steps += 1;
                        probe.emit(
                            EventKind::DegradationStep {
                                step: DegradationStep::EvictVictims,
                            },
                            at,
                        );
                    }
                    let Some(victim) = self.pick_victim() else {
                        self.stats.capacity_failures += 1;
                        return Err(AllocError::OutOfStorage {
                            requested: size,
                            // Report what is honestly available *after*
                            // every permitted recovery ran, so callers
                            // (and their users) can size a retry.
                            largest_free: self.backend.largest_free(),
                        }
                        .into());
                    };
                    writeback += self.evict_probed(victim, at, probe);
                    evictions += 1;
                }
                Err(e) => return Err(e.into()),
            }
        }
        let st = self.segs.get_mut(&seg).expect("declared");
        st.resident = true;
        st.used = true;
        st.dirty = false;
        self.rotation.push(seg);
        self.stats.seg_faults += 1;
        self.stats.fetched_words += size;
        Ok((evictions, writeback))
    }

    /// Touches item `offset` of segment `seg`.
    ///
    /// # Errors
    ///
    /// * [`AccessFault::UnknownSegment`] for undeclared segments;
    /// * [`AccessFault::BoundsViolation`] for illegal subscripts
    ///   (intercepted automatically, and counted);
    /// * [`AllocError::OutOfStorage`] if the segment cannot be made
    ///   resident.
    pub fn touch(
        &mut self,
        seg: SegId,
        offset: Words,
        write: bool,
    ) -> Result<TouchReport, CoreError> {
        self.touch_probed(seg, offset, write, Stamp::vtime(0), &mut NullProbe)
    }

    /// [`SegmentStore::touch`] with event emission: a demand fetch emits
    /// `Fault` (before any evictions it forces), and each victim emits
    /// `Evict { dirty, words }` — dirty when the eviction wrote back.
    ///
    /// # Errors
    ///
    /// As [`SegmentStore::touch`].
    // Internal invariants: declaration is checked first, and a
    // successful fetch leaves the segment resident and allocated;
    // user-visible failures return typed errors above.
    #[allow(clippy::expect_used)]
    pub fn touch_probed<P: Probe + ?Sized>(
        &mut self,
        seg: SegId,
        offset: Words,
        write: bool,
        at: Stamp,
        probe: &mut P,
    ) -> Result<TouchReport, CoreError> {
        self.stats.accesses += 1;
        let state = self
            .segs
            .get(&seg)
            .copied()
            .ok_or(AccessFault::UnknownSegment { seg })?;
        if offset >= state.size {
            self.stats.bounds_violations += 1;
            return Err(AccessFault::BoundsViolation {
                seg,
                offset,
                limit: state.size,
            }
            .into());
        }
        let mut report = TouchReport::default();
        if !state.resident {
            // `Fault` is recorded only once the fetch succeeds: a touch
            // that dies of capacity failure is an error, not a serviced
            // fault (its victims' `Evict` events still precede it at the
            // same stamp).
            let (evictions, writeback) = self.fetch_probed(seg, at, probe)?;
            probe.emit(EventKind::Fault, at);
            report.fetched = true;
            report.fetched_words = state.size;
            report.evictions = evictions;
            report.writeback_words = writeback;
        }
        let st = self.segs.get_mut(&seg).expect("declared");
        st.used = true;
        if write {
            st.dirty = true;
        }
        let (base, _) = self
            .backend
            .lookup(u64::from(seg.0))
            .expect("resident segment is allocated");
        report.addr = base.offset(offset);
        Ok(report)
    }

    /// Applies a segment-granular advisory directive. Page advice is
    /// ignored here.
    pub fn advise(&mut self, advice: Advice) {
        self.advise_probed(advice, Stamp::vtime(0), &mut NullProbe);
    }

    /// [`SegmentStore::advise`] with event emission: a successful
    /// `WillNeed` prefetch emits `Prefetch { words }` (not `Fault` — the
    /// program did not wait); `Release` evictions emit `Evict`.
    pub fn advise_probed<P: Probe + ?Sized>(&mut self, advice: Advice, at: Stamp, probe: &mut P) {
        let AdviceUnit::Segment(seg) = advice.unit() else {
            return;
        };
        match advice {
            Advice::WillNeed(_) => {
                // Fetch if possible; failure to prefetch is not an error.
                if self.segs.get(&seg).is_some_and(|s| !s.resident) {
                    let size = self.segs[&seg].size;
                    if self.fetch_probed(seg, at, probe).is_ok() {
                        probe.emit(EventKind::Prefetch { words: size }, at);
                    }
                }
            }
            Advice::WontNeed(_) => {
                if let Some(st) = self.segs.get_mut(&seg) {
                    st.used = false;
                }
            }
            Advice::Pin(_) => {
                if let Some(st) = self.segs.get_mut(&seg) {
                    st.pinned = true;
                }
            }
            Advice::Unpin(_) => {
                if let Some(st) = self.segs.get_mut(&seg) {
                    st.pinned = false;
                }
            }
            Advice::Release(_) => {
                if self.segs.get(&seg).is_some_and(|s| s.resident) {
                    if let Some(st) = self.segs.get_mut(&seg) {
                        st.pinned = false;
                    }
                    self.evict_probed(seg, at, probe);
                }
            }
        }
    }

    /// Verifies internal invariants.
    ///
    /// # Panics
    ///
    /// Panics if residency bookkeeping disagrees with the allocator or
    /// the rotation list.
    pub fn check_invariants(&self) {
        for (&seg, st) in &self.segs {
            let allocated = self.backend.lookup(u64::from(seg.0)).is_some();
            assert_eq!(st.resident, allocated, "residency mismatch for {seg}");
            assert_eq!(
                st.resident,
                self.rotation.contains(&seg),
                "rotation mismatch for {seg}"
            );
        }
        for &seg in &self.rotation {
            assert!(self.segs.contains_key(&seg), "rotation holds deleted {seg}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsa_freelist::freelist::Placement;

    fn b5000_store(capacity: Words) -> SegmentStore {
        SegmentStore::new(
            StoreBackend::FreeList(FreeListAllocator::new(capacity, Placement::BestFit)),
            SegReplacement::Cyclic,
            1024,
        )
    }

    fn rice_store(capacity: Words) -> SegmentStore {
        SegmentStore::new(
            StoreBackend::Rice(RiceAllocator::new(capacity)),
            SegReplacement::RiceIterative,
            u64::MAX,
        )
    }

    #[test]
    fn fetch_on_first_reference() {
        let mut s = b5000_store(1000);
        s.define(SegId(0), 100).unwrap();
        let r1 = s.touch(SegId(0), 5, false).unwrap();
        assert!(r1.fetched);
        assert_eq!(r1.fetched_words, 100);
        let r2 = s.touch(SegId(0), 6, false).unwrap();
        assert!(!r2.fetched, "second touch must not re-fetch");
        assert_eq!(s.stats().seg_faults, 1);
        s.check_invariants();
    }

    #[test]
    fn bounds_violations_are_intercepted_and_counted() {
        let mut s = b5000_store(1000);
        s.define(SegId(0), 10).unwrap();
        let err = s.touch(SegId(0), 10, false).unwrap_err();
        assert!(matches!(
            err,
            CoreError::Access(AccessFault::BoundsViolation {
                offset: 10,
                limit: 10,
                ..
            })
        ));
        assert_eq!(s.stats().bounds_violations, 1);
    }

    #[test]
    fn b5000_segment_size_limit_enforced() {
        let mut s = b5000_store(10_000);
        assert!(matches!(
            s.define(SegId(0), 1025),
            Err(CoreError::Alloc(AllocError::RequestTooLarge {
                max: 1024,
                ..
            }))
        ));
        assert!(s.define(SegId(0), 1024).is_ok());
    }

    #[test]
    fn eviction_makes_room_cyclically() {
        let mut s = b5000_store(250);
        for i in 0..3 {
            s.define(SegId(i), 100).unwrap();
        }
        s.touch(SegId(0), 0, false).unwrap();
        s.touch(SegId(1), 0, false).unwrap();
        // Third segment does not fit: the cyclic hand evicts seg 0.
        let r = s.touch(SegId(2), 0, false).unwrap();
        assert!(r.fetched);
        assert_eq!(r.evictions, 1);
        assert_eq!(s.resident_count(), 2);
        // Touch seg 0 again: refetched, seg 1 evicted (cyclic order).
        let r = s.touch(SegId(0), 0, false).unwrap();
        assert!(r.fetched);
        s.check_invariants();
    }

    #[test]
    fn dirty_segments_write_back_on_eviction() {
        let mut s = b5000_store(250);
        s.define(SegId(0), 100).unwrap();
        s.define(SegId(1), 100).unwrap();
        s.define(SegId(2), 100).unwrap();
        s.touch(SegId(0), 0, true).unwrap(); // dirty
        s.touch(SegId(1), 0, false).unwrap(); // clean
        let r = s.touch(SegId(2), 0, false).unwrap();
        // Cyclic evicts seg 0 (dirty): 100 words written back.
        assert_eq!(r.writeback_words, 100);
        assert_eq!(s.stats().writeback_words, 100);
    }

    #[test]
    fn rice_iterative_prefers_unused_clean() {
        let mut s = rice_store(350);
        for i in 0..3 {
            s.define(SegId(i), 100).unwrap();
        }
        s.touch(SegId(0), 0, true).unwrap(); // will be dirty
        s.touch(SegId(1), 0, false).unwrap();
        s.touch(SegId(2), 0, false).unwrap();
        // Mark 0 and 2 used recently; 1 unused (cleared by advice).
        s.advise(Advice::WontNeed(AdviceUnit::Segment(SegId(1))));
        s.define(SegId(3), 100).unwrap();
        let r = s.touch(SegId(3), 0, false).unwrap();
        assert!(r.fetched);
        // Seg 1 (unused, clean) must be the victim; no write-back.
        assert_eq!(r.writeback_words, 0);
        assert_eq!(s.resident_count(), 3);
        assert!(
            s.touch(SegId(1), 0, false).unwrap().fetched,
            "seg 1 was evicted"
        );
        s.check_invariants();
    }

    #[test]
    fn iterative_replacement_evicts_until_block_fits() {
        let mut s = b5000_store(300);
        for i in 0..3 {
            s.define(SegId(i), 100).unwrap();
            s.touch(SegId(i), 0, false).unwrap();
        }
        // A 250-word segment needs at least two evictions (and
        // compaction is unavailable, so it may need all three).
        s.define(SegId(9), 250).unwrap();
        let r = s.touch(SegId(9), 0, false).unwrap();
        assert!(r.evictions >= 2, "evictions {}", r.evictions);
        assert!(s.resident_words() >= 250);
        s.check_invariants();
    }

    #[test]
    fn capacity_failure_when_nothing_evictable() {
        let mut s = b5000_store(100);
        s.define(SegId(0), 80).unwrap();
        s.touch(SegId(0), 0, false).unwrap();
        s.advise(Advice::Pin(AdviceUnit::Segment(SegId(0))));
        s.define(SegId(1), 50).unwrap();
        let err = s.touch(SegId(1), 0, false).unwrap_err();
        assert!(matches!(
            err,
            CoreError::Alloc(AllocError::OutOfStorage { .. })
        ));
        assert_eq!(s.stats().capacity_failures, 1);
    }

    #[test]
    fn pinned_segments_survive_pressure() {
        let mut s = b5000_store(250);
        s.define(SegId(0), 100).unwrap();
        s.touch(SegId(0), 0, false).unwrap();
        s.advise(Advice::Pin(AdviceUnit::Segment(SegId(0))));
        s.define(SegId(1), 100).unwrap();
        s.touch(SegId(1), 0, false).unwrap();
        s.define(SegId(2), 100).unwrap();
        s.touch(SegId(2), 0, false).unwrap(); // must evict seg 1
        assert!(
            !s.touch(SegId(0), 1, false).unwrap().fetched,
            "pinned stayed"
        );
        s.check_invariants();
    }

    #[test]
    fn delete_frees_storage() {
        let mut s = b5000_store(200);
        s.define(SegId(0), 150).unwrap();
        s.touch(SegId(0), 0, false).unwrap();
        s.delete(SegId(0)).unwrap();
        s.define(SegId(1), 180).unwrap();
        assert!(s.touch(SegId(1), 0, false).is_ok());
        assert!(matches!(
            s.touch(SegId(0), 0, false),
            Err(CoreError::Access(AccessFault::UnknownSegment { .. }))
        ));
        s.check_invariants();
    }

    #[test]
    fn resize_grow_and_shrink() {
        let mut s = b5000_store(400);
        s.define(SegId(0), 100).unwrap();
        s.touch(SegId(0), 0, false).unwrap();
        s.resize(SegId(0), 200).unwrap();
        assert!(s.touch(SegId(0), 150, false).is_ok());
        s.resize(SegId(0), 50).unwrap();
        assert!(matches!(
            s.touch(SegId(0), 150, false),
            Err(CoreError::Access(AccessFault::BoundsViolation { .. }))
        ));
        s.check_invariants();
    }

    #[test]
    fn will_need_prefetches_segment() {
        let mut s = b5000_store(500);
        s.define(SegId(0), 100).unwrap();
        s.advise(Advice::WillNeed(AdviceUnit::Segment(SegId(0))));
        let r = s.touch(SegId(0), 0, false).unwrap();
        assert!(!r.fetched, "prefetched by advice");
        s.check_invariants();
    }

    #[test]
    fn release_evicts_segment() {
        let mut s = b5000_store(500);
        s.define(SegId(0), 100).unwrap();
        s.touch(SegId(0), 0, false).unwrap();
        s.advise(Advice::Release(AdviceUnit::Segment(SegId(0))));
        assert_eq!(s.resident_count(), 0);
        assert!(s.touch(SegId(0), 0, false).unwrap().fetched);
        s.check_invariants();
    }

    #[test]
    fn out_of_storage_reports_honest_largest_free() {
        // Regression: this used to hardcode `largest_free: 0`.
        let mut s = b5000_store(100);
        s.define(SegId(0), 40).unwrap();
        s.touch(SegId(0), 0, false).unwrap();
        s.advise(Advice::Pin(AdviceUnit::Segment(SegId(0))));
        s.define(SegId(1), 30).unwrap();
        s.touch(SegId(1), 0, false).unwrap();
        s.advise(Advice::Pin(AdviceUnit::Segment(SegId(1))));
        s.define(SegId(2), 50).unwrap();
        let err = s.touch(SegId(2), 0, false).unwrap_err();
        match err {
            CoreError::Alloc(AllocError::OutOfStorage {
                requested,
                largest_free,
            }) => {
                assert_eq!(requested, 50);
                assert_eq!(largest_free, 30, "the 30-word tail hole is free");
            }
            other => panic!("expected OutOfStorage, got {other:?}"),
        }
    }

    #[test]
    fn degradation_compacts_before_evicting() {
        // Fragmented free list: 30 words at [30,60) + 10 at [90,100).
        let mut s = b5000_store(100).with_degradation();
        for i in 0..3 {
            s.define(SegId(i), 30).unwrap();
            s.touch(SegId(i), 0, false).unwrap();
        }
        s.advise(Advice::Pin(AdviceUnit::Segment(SegId(0))));
        s.advise(Advice::Pin(AdviceUnit::Segment(SegId(2))));
        s.advise(Advice::Release(AdviceUnit::Segment(SegId(1))));
        let evictions_before = s.stats().evictions;
        // 40 words fit only after compaction slides seg 2 down.
        s.define(SegId(3), 40).unwrap();
        let r = s.touch(SegId(3), 0, false).unwrap();
        assert!(r.fetched);
        assert_eq!(r.evictions, 0, "compaction made room without victims");
        assert_eq!(s.stats().evictions, evictions_before);
        assert_eq!(s.stats().degradation_steps, 1);
        assert!(s.touch(SegId(0), 0, false).is_ok());
        assert!(s.touch(SegId(2), 0, false).is_ok());
        s.check_invariants();
    }

    #[test]
    fn degradation_coalesces_the_rice_chain_before_evicting() {
        let mut s = rice_store(100).with_degradation();
        for i in 0..3 {
            s.define(SegId(i), 30).unwrap();
            s.touch(SegId(i), 0, false).unwrap();
        }
        // Free two adjacent blocks; the chain holds them separately.
        s.advise(Advice::Release(AdviceUnit::Segment(SegId(0))));
        s.advise(Advice::Release(AdviceUnit::Segment(SegId(1))));
        s.advise(Advice::Pin(AdviceUnit::Segment(SegId(2))));
        s.define(SegId(3), 50).unwrap();
        let r = s.touch(SegId(3), 0, false).unwrap();
        assert!(r.fetched);
        assert_eq!(r.evictions, 0, "coalescing made room without victims");
        assert_eq!(s.stats().degradation_steps, 1);
        s.check_invariants();
    }

    #[test]
    fn degradation_falls_through_to_eviction() {
        let mut s = b5000_store(100).with_degradation();
        s.define(SegId(0), 60).unwrap();
        s.touch(SegId(0), 0, false).unwrap();
        s.define(SegId(1), 60).unwrap();
        let r = s.touch(SegId(1), 0, false).unwrap();
        assert_eq!(r.evictions, 1, "nothing to compact; eviction rung runs");
        assert_eq!(
            s.stats().degradation_steps,
            1,
            "entering the eviction rung counts once per fetch"
        );
        s.check_invariants();
    }

    #[test]
    fn unpin_all_releases_segment_pins() {
        let mut s = b5000_store(100);
        s.define(SegId(0), 80).unwrap();
        s.touch(SegId(0), 0, false).unwrap();
        s.advise(Advice::Pin(AdviceUnit::Segment(SegId(0))));
        s.define(SegId(1), 50).unwrap();
        assert!(s.touch(SegId(1), 0, false).is_err(), "pinned blocks demand");
        assert_eq!(s.unpin_all(), 1);
        assert!(s.touch(SegId(1), 0, false).is_ok());
        s.check_invariants();
    }

    #[test]
    fn define_validates() {
        let mut s = b5000_store(100);
        assert!(matches!(
            s.define(SegId(0), 0),
            Err(CoreError::Alloc(AllocError::ZeroSize))
        ));
        s.define(SegId(0), 10).unwrap();
        assert!(matches!(
            s.define(SegId(0), 10),
            Err(CoreError::Alloc(AllocError::AlreadyAllocated))
        ));
        assert!(matches!(
            s.delete(SegId(5)),
            Err(CoreError::Access(AccessFault::UnknownSegment { .. }))
        ));
    }
}

#[cfg(test)]
mod probe_tests {
    use super::*;
    use dsa_core::ids::SegId;
    use dsa_freelist::freelist::Placement;
    use dsa_probe::CountingProbe;

    #[test]
    fn touch_traces_faults_and_evictions_matching_stats() {
        let mut store = SegmentStore::new(
            StoreBackend::FreeList(FreeListAllocator::new(100, Placement::FirstFit)),
            SegReplacement::Cyclic,
            u64::MAX,
        );
        let mut probe = CountingProbe::new();
        let at = Stamp::vtime(0);
        for i in 0..4 {
            store.define(SegId(i), 40).unwrap();
        }
        // Two fit; the third and fourth each force an eviction. Writes
        // dirty the victims so later evictions write back.
        for i in 0..4u32 {
            store
                .touch_probed(SegId(i), 0, true, at, &mut probe)
                .unwrap();
        }
        let stats = *store.stats();
        assert_eq!(probe.faults, stats.seg_faults);
        assert_eq!(probe.evictions, stats.evictions);
        assert!(probe.evictions >= 2);
        assert_eq!(
            probe.evicted_words,
            stats.evictions * 40,
            "every victim carries its extent"
        );
        store.check_invariants();
    }

    #[test]
    fn advice_traces_prefetch_and_release() {
        let mut store = SegmentStore::new(
            StoreBackend::FreeList(FreeListAllocator::new(100, Placement::FirstFit)),
            SegReplacement::Cyclic,
            u64::MAX,
        );
        let mut probe = CountingProbe::new();
        let at = Stamp::vtime(0);
        store.define(SegId(1), 30).unwrap();
        store.advise_probed(
            Advice::WillNeed(AdviceUnit::Segment(SegId(1))),
            at,
            &mut probe,
        );
        assert_eq!(probe.prefetches, 1);
        assert_eq!(probe.prefetched_words, 30);
        assert_eq!(probe.faults, 0, "a prefetch is not a fault");
        store.advise_probed(
            Advice::Release(AdviceUnit::Segment(SegId(1))),
            at,
            &mut probe,
        );
        assert_eq!(probe.evictions, 1);
    }
}
