//! B5000 descriptors and the Program Reference Table.
//!
//! Appendix A.3: "Each program in the system has associated with it a
//! Program Reference Table (PRT). ... Every segment of the program is
//! represented by an entry in this table. This entry gives the base
//! address and extent of the segment, and an indication of whether the
//! segment is currently in working storage."

use dsa_core::error::AccessFault;
use dsa_core::ids::{PhysAddr, SegId, Words};

/// One PRT entry: base, extent, presence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Descriptor {
    /// Base address in working storage, meaningful when `present`.
    pub base: PhysAddr,
    /// The segment's extent in words (the limit checked on access).
    pub limit: Words,
    /// Whether the segment is currently in working storage.
    pub present: bool,
}

impl Descriptor {
    /// A descriptor for a segment of `limit` words, not yet in working
    /// storage.
    #[must_use]
    pub fn absent(limit: Words) -> Descriptor {
        Descriptor {
            base: PhysAddr(0),
            limit,
            present: false,
        }
    }

    /// Marks the segment present at `base`.
    pub fn place(&mut self, base: PhysAddr) {
        self.base = base;
        self.present = true;
    }

    /// Marks the segment absent.
    pub fn remove(&mut self) {
        self.present = false;
    }
}

/// A Program Reference Table: the per-program table of descriptors,
/// addressed by segment id. In the B5000 "the segment name is part of an
/// instruction and cannot be manipulated" — reflected here by `SegId`
/// being an opaque index the program cannot do arithmetic on.
#[derive(Clone, Debug, Default)]
pub struct Prt {
    entries: Vec<Option<Descriptor>>,
}

impl Prt {
    /// Creates an empty PRT.
    #[must_use]
    pub fn new() -> Prt {
        Prt::default()
    }

    /// Declares segment `seg` with extent `limit` (absent until placed).
    pub fn declare(&mut self, seg: SegId, limit: Words) {
        let idx = seg.0 as usize;
        if idx >= self.entries.len() {
            self.entries.resize(idx + 1, None);
        }
        self.entries[idx] = Some(Descriptor::absent(limit));
    }

    /// Removes segment `seg`.
    pub fn undeclare(&mut self, seg: SegId) {
        if let Some(slot) = self.entries.get_mut(seg.0 as usize) {
            *slot = None;
        }
    }

    /// The descriptor of `seg`, if declared.
    #[must_use]
    pub fn get(&self, seg: SegId) -> Option<&Descriptor> {
        self.entries.get(seg.0 as usize).and_then(Option::as_ref)
    }

    /// Mutable access to the descriptor of `seg`.
    pub fn get_mut(&mut self, seg: SegId) -> Option<&mut Descriptor> {
        self.entries
            .get_mut(seg.0 as usize)
            .and_then(Option::as_mut)
    }

    /// Resolves `(seg, offset)` to an absolute address, enforcing the
    /// limit automatically — segmentation advantage (iii), "the checking
    /// of illegal subscripting can be performed automatically".
    ///
    /// # Errors
    ///
    /// * [`AccessFault::UnknownSegment`] if `seg` is not declared;
    /// * [`AccessFault::BoundsViolation`] if `offset >= limit`;
    /// * [`AccessFault::MissingSegment`] if the segment is declared but
    ///   not in working storage (the trap that triggers a segment
    ///   fetch).
    pub fn resolve(&self, seg: SegId, offset: Words) -> Result<PhysAddr, AccessFault> {
        let d = self.get(seg).ok_or(AccessFault::UnknownSegment { seg })?;
        if offset >= d.limit {
            return Err(AccessFault::BoundsViolation {
                seg,
                offset,
                limit: d.limit,
            });
        }
        if !d.present {
            return Err(AccessFault::MissingSegment { seg });
        }
        Ok(d.base.offset(offset))
    }

    /// Number of declared segments.
    #[must_use]
    pub fn declared(&self) -> usize {
        self.entries.iter().flatten().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declare_place_resolve() {
        let mut prt = Prt::new();
        prt.declare(SegId(2), 100);
        assert!(matches!(
            prt.resolve(SegId(2), 5),
            Err(AccessFault::MissingSegment { seg: SegId(2) })
        ));
        prt.get_mut(SegId(2)).unwrap().place(PhysAddr(400));
        assert_eq!(prt.resolve(SegId(2), 5).unwrap(), PhysAddr(405));
    }

    #[test]
    fn bounds_checked_before_presence() {
        let mut prt = Prt::new();
        prt.declare(SegId(0), 10);
        // An illegal subscript is intercepted even while absent.
        assert!(matches!(
            prt.resolve(SegId(0), 10),
            Err(AccessFault::BoundsViolation { limit: 10, .. })
        ));
    }

    #[test]
    fn unknown_segments_fault() {
        let prt = Prt::new();
        assert!(matches!(
            prt.resolve(SegId(3), 0),
            Err(AccessFault::UnknownSegment { seg: SegId(3) })
        ));
    }

    #[test]
    fn undeclare_removes() {
        let mut prt = Prt::new();
        prt.declare(SegId(1), 50);
        assert_eq!(prt.declared(), 1);
        prt.undeclare(SegId(1));
        assert_eq!(prt.declared(), 0);
        assert!(prt.get(SegId(1)).is_none());
    }

    #[test]
    fn remove_marks_absent_but_keeps_descriptor() {
        let mut prt = Prt::new();
        prt.declare(SegId(0), 20);
        prt.get_mut(SegId(0)).unwrap().place(PhysAddr(7));
        prt.get_mut(SegId(0)).unwrap().remove();
        assert!(matches!(
            prt.resolve(SegId(0), 0),
            Err(AccessFault::MissingSegment { .. })
        ));
        assert_eq!(prt.get(SegId(0)).unwrap().limit, 20);
    }
}
