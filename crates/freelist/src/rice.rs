//! The Rice University Computer allocation scheme (Appendix A.4).
//!
//! Iliffe & Jodeit's scheme, as the paper describes it:
//!
//! * "Segments are initially placed sequentially in storage in a block
//!   of contiguous locations, the first of which is a 'back reference'
//!   to the codeword of the segment" — sequential frontier placement,
//!   one word of overhead per active block;
//! * "When a segment loses its significance the block in which it was
//!   stored is designated as 'inactive', and its first word set up with
//!   the size of the block and the location of the next inactive block"
//!   — an explicit chain of inactive blocks, newest first;
//! * "When space is required for a segment, the chain of inactive blocks
//!   is searched sequentially for one of sufficient size" — first-fit
//!   over the chain (not over address order!);
//! * "If an inactive block of sufficient size cannot be found, an
//!   attempt is made to make one by finding groups of adjacent inactive
//!   blocks which can be combined" — *deferred* coalescing, performed
//!   only on failure;
//! * "If this fails a replacement algorithm ... is applied iteratively
//!   until a block of sufficient size is released" — eviction is the
//!   caller's job (see `dsa-seg`); the allocator reports failure.

use std::collections::HashMap;

use dsa_core::error::AllocError;
use dsa_core::ids::{PhysAddr, Words};
use dsa_probe::{EventKind, Probe, Stamp};

/// Words of overhead per active block (the back-reference word).
pub const BACK_REF_WORDS: Words = 1;

/// Statistics for the Rice allocator.
#[derive(Clone, Copy, Debug, Default)]
pub struct RiceStats {
    /// Successful allocations.
    pub allocs: u64,
    /// Deallocations (blocks made inactive).
    pub frees: u64,
    /// Chain entries examined across all searches.
    pub probes: u64,
    /// Failure-triggered combining passes.
    pub combine_passes: u64,
    /// Blocks merged by combining.
    pub blocks_combined: u64,
    /// Allocations that failed even after combining.
    pub failures: u64,
}

/// The Rice inactive-block-chain allocator.
///
/// Back references are stored as the `owner` value supplied at
/// allocation time (in the real machine, the address of the segment's
/// codeword).
#[derive(Clone, Debug)]
pub struct RiceAllocator {
    capacity: Words,
    /// Next never-used address (sequential initial placement).
    frontier: u64,
    /// The chain of inactive blocks, in chain order (newest first).
    chain: Vec<(u64, Words)>,
    /// Live blocks: id -> (addr, gross size incl. back-ref, owner).
    active: HashMap<u64, (u64, Words, u64)>,
    stats: RiceStats,
}

impl RiceAllocator {
    /// Creates an allocator over `capacity` words.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: Words) -> RiceAllocator {
        assert!(capacity > 0, "capacity must be positive");
        RiceAllocator {
            capacity,
            frontier: 0,
            chain: Vec::new(),
            active: HashMap::new(),
            stats: RiceStats::default(),
        }
    }

    /// Total capacity in words.
    #[must_use]
    pub fn capacity(&self) -> Words {
        self.capacity
    }

    /// Words in inactive blocks plus the untouched region beyond the
    /// frontier.
    #[must_use]
    pub fn free_words(&self) -> Words {
        self.chain.iter().map(|&(_, s)| s).sum::<Words>() + (self.capacity - self.frontier)
    }

    /// Length of the inactive chain.
    #[must_use]
    pub fn chain_len(&self) -> usize {
        self.chain.len()
    }

    /// Largest contiguous free extent: the biggest inactive block or the
    /// untouched region beyond the frontier, whichever is larger. (Note
    /// adjacent inactive blocks count separately until
    /// [`RiceAllocator::combine_adjacent`] runs — combining is deferred
    /// on the Rice machine.)
    #[must_use]
    pub fn largest_free(&self) -> Words {
        self.chain
            .iter()
            .map(|&(_, s)| s)
            .max()
            .unwrap_or(0)
            .max(self.capacity - self.frontier)
    }

    /// Current frontier (next sequential placement address).
    #[must_use]
    pub fn frontier(&self) -> u64 {
        self.frontier
    }

    /// Cumulative statistics.
    #[must_use]
    pub fn stats(&self) -> &RiceStats {
        &self.stats
    }

    /// Looks up a live block: `(payload address, payload size)`. The
    /// payload starts one word past the back reference.
    #[must_use]
    pub fn lookup(&self, id: u64) -> Option<(PhysAddr, Words)> {
        self.active
            .get(&id)
            .map(|&(addr, gross, _)| (PhysAddr(addr + BACK_REF_WORDS), gross - BACK_REF_WORDS))
    }

    /// The owner (back reference) recorded for a live block.
    #[must_use]
    pub fn owner(&self, id: u64) -> Option<u64> {
        self.active.get(&id).map(|&(_, _, owner)| owner)
    }

    /// Allocates `size` payload words for `id`, recording `owner` as the
    /// back reference.
    ///
    /// Tries, in order: the inactive chain (first-fit in chain order),
    /// the sequential frontier, then one combining pass followed by a
    /// retry of both.
    ///
    /// # Errors
    ///
    /// * [`AllocError::ZeroSize`] / [`AllocError::AlreadyAllocated`] on
    ///   bad requests;
    /// * [`AllocError::OutOfStorage`] when even combining cannot make a
    ///   large-enough block — the caller should release a segment (the
    ///   "replacement algorithm applied iteratively") and retry.
    pub fn alloc(&mut self, id: u64, size: Words, owner: u64) -> Result<PhysAddr, AllocError> {
        if size == 0 {
            return Err(AllocError::ZeroSize);
        }
        if self.active.contains_key(&id) {
            return Err(AllocError::AlreadyAllocated);
        }
        let gross = size + BACK_REF_WORDS;
        if let Some(addr) = self.try_place(gross) {
            self.active.insert(id, (addr, gross, owner));
            self.stats.allocs += 1;
            return Ok(PhysAddr(addr + BACK_REF_WORDS));
        }
        // "An attempt is made to make one by finding groups of adjacent
        // inactive blocks which can be combined."
        self.combine_adjacent();
        if let Some(addr) = self.try_place(gross) {
            self.active.insert(id, (addr, gross, owner));
            self.stats.allocs += 1;
            return Ok(PhysAddr(addr + BACK_REF_WORDS));
        }
        self.stats.failures += 1;
        Err(AllocError::OutOfStorage {
            requested: gross,
            largest_free: self.largest_free(),
        })
    }

    /// [`RiceAllocator::alloc`] with event emission: a successful
    /// allocation emits `Alloc { words, searched }`, where `searched`
    /// counts inactive-chain blocks inspected (across the combine-retry
    /// too, if one was needed).
    ///
    /// # Errors
    ///
    /// As [`RiceAllocator::alloc`]; no event is emitted on failure.
    pub fn alloc_probed<P: Probe + ?Sized>(
        &mut self,
        id: u64,
        size: Words,
        owner: u64,
        at: Stamp,
        probe: &mut P,
    ) -> Result<PhysAddr, AllocError> {
        let before = self.stats.probes;
        let r = self.alloc(id, size, owner);
        if r.is_ok() {
            probe.emit(
                EventKind::Alloc {
                    words: size,
                    searched: self.stats.probes - before,
                },
                at,
            );
        }
        r
    }

    /// One placement attempt: chain first, then frontier.
    fn try_place(&mut self, gross: Words) -> Option<u64> {
        for i in 0..self.chain.len() {
            self.stats.probes += 1;
            let (addr, bsize) = self.chain[i];
            if bsize >= gross {
                let leftover = bsize - gross;
                if leftover > 0 {
                    // "If any unused space is left over it replaces the
                    // original inactive block in the chain."
                    self.chain[i] = (addr + gross, leftover);
                } else {
                    self.chain.remove(i);
                }
                return Some(addr);
            }
        }
        if self.frontier + gross <= self.capacity {
            let addr = self.frontier;
            self.frontier += gross;
            return Some(addr);
        }
        None
    }

    /// Designates block `id` inactive, pushing it onto the chain head.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::UnknownUnit`] if `id` is not live.
    pub fn free(&mut self, id: u64) -> Result<(), AllocError> {
        let (addr, gross, _) = self.active.remove(&id).ok_or(AllocError::UnknownUnit)?;
        self.chain.insert(0, (addr, gross));
        self.stats.frees += 1;
        Ok(())
    }

    /// [`RiceAllocator::free`] with event emission: a successful release
    /// emits `Free { words }` carrying the net (requested) size, so a
    /// space accountant sees Alloc and Free balance.
    ///
    /// # Errors
    ///
    /// As [`RiceAllocator::free`]; no event is emitted on failure.
    pub fn free_probed<P: Probe + ?Sized>(
        &mut self,
        id: u64,
        at: Stamp,
        probe: &mut P,
    ) -> Result<(), AllocError> {
        let net = self
            .active
            .get(&id)
            .map(|&(_, gross, _)| gross - BACK_REF_WORDS);
        let r = self.free(id);
        if r.is_ok() {
            probe.emit(
                EventKind::Free {
                    words: net.unwrap_or(0),
                },
                at,
            );
        }
        r
    }

    /// Combines groups of adjacent inactive blocks and retracts the
    /// frontier over any inactive block that touches it. Returns the
    /// number of blocks merged away.
    pub fn combine_adjacent(&mut self) -> usize {
        self.stats.combine_passes += 1;
        let before = self.chain.len();
        let mut blocks = std::mem::take(&mut self.chain);
        blocks.sort_unstable_by_key(|&(addr, _)| addr);
        let mut merged: Vec<(u64, Words)> = Vec::with_capacity(blocks.len());
        for (addr, size) in blocks {
            match merged.last_mut() {
                Some((maddr, msize)) if *maddr + *msize == addr => *msize += size,
                _ => merged.push((addr, size)),
            }
        }
        // Retract the frontier over a trailing inactive block.
        while let Some(&(addr, size)) = merged.last() {
            if addr + size == self.frontier {
                self.frontier = addr;
                merged.pop();
            } else {
                break;
            }
        }
        let removed = before - merged.len();
        self.stats.blocks_combined += removed as u64;
        self.chain = merged;
        removed
    }

    /// Iterates live blocks as `(id, payload address, payload size,
    /// owner)`, in address order.
    #[must_use]
    pub fn active_blocks(&self) -> Vec<(u64, u64, Words, u64)> {
        let mut v: Vec<(u64, u64, Words, u64)> = self
            .active
            .iter()
            .map(|(&id, &(addr, gross, owner))| {
                (id, addr + BACK_REF_WORDS, gross - BACK_REF_WORDS, owner)
            })
            .collect();
        v.sort_unstable_by_key(|&(_, addr, _, _)| addr);
        v
    }

    /// Verifies internal invariants (disjointness, accounting).
    ///
    /// # Panics
    ///
    /// Panics if blocks overlap, exceed the frontier, or words leak.
    pub fn check_invariants(&self) {
        let mut regions: Vec<(u64, u64)> = self
            .active
            .values()
            .map(|&(a, g, _)| (a, a + g))
            .chain(self.chain.iter().map(|&(a, s)| (a, a + s)))
            .collect();
        regions.sort_unstable();
        for w in regions.windows(2) {
            assert!(w[0].1 <= w[1].0, "regions overlap: {w:?}");
        }
        for &(_, end) in &regions {
            assert!(end <= self.frontier, "block beyond frontier");
        }
        let used: Words = self.active.values().map(|&(_, g, _)| g).sum();
        let inactive: Words = self.chain.iter().map(|&(_, s)| s).sum();
        assert_eq!(
            used + inactive,
            self.frontier,
            "words leaked before frontier"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_initial_placement() {
        let mut a = RiceAllocator::new(100);
        let p1 = a.alloc(1, 10, 101).unwrap();
        let p2 = a.alloc(2, 10, 102).unwrap();
        // Payload starts one word in (back reference).
        assert_eq!(p1, PhysAddr(1));
        assert_eq!(p2, PhysAddr(12));
        assert_eq!(a.frontier(), 22);
        assert_eq!(a.owner(1), Some(101));
        a.check_invariants();
    }

    #[test]
    fn freed_blocks_chain_newest_first_and_first_fit() {
        let mut a = RiceAllocator::new(100);
        a.alloc(1, 10, 0).unwrap(); // [0,11)
        a.alloc(2, 20, 0).unwrap(); // [11,32)
        a.alloc(3, 10, 0).unwrap(); // [32,43)
        a.free(1).unwrap();
        a.free(2).unwrap(); // chain: [11,32) then [0,11)
                            // An 8-word request (9 gross) fits both; chain order tries the
                            // newest inactive block first -> address 11.
        let p = a.alloc(4, 8, 0).unwrap();
        assert_eq!(p, PhysAddr(12));
        // Leftover (21-9=12 words at addr 20) replaced the block in situ.
        assert_eq!(a.chain_len(), 2);
        a.check_invariants();
    }

    #[test]
    fn exact_fit_removes_chain_entry() {
        let mut a = RiceAllocator::new(100);
        a.alloc(1, 10, 0).unwrap();
        a.alloc(2, 10, 0).unwrap();
        a.free(1).unwrap(); // inactive [0,11)
        let p = a.alloc(3, 10, 0).unwrap(); // gross 11: exact
        assert_eq!(p, PhysAddr(1));
        assert_eq!(a.chain_len(), 0);
        a.check_invariants();
    }

    #[test]
    fn combining_is_deferred_until_failure() {
        let mut a = RiceAllocator::new(64);
        a.alloc(1, 15, 0).unwrap(); // [0,16)
        a.alloc(2, 15, 0).unwrap(); // [16,32)
        a.alloc(3, 15, 0).unwrap(); // [32,48)
        a.free(1).unwrap();
        a.free(2).unwrap();
        assert_eq!(a.chain_len(), 2, "no eager coalescing");
        // 24 gross words fit only in the combined [0,32) block; frontier
        // has 16 left. The alloc triggers a combining pass.
        let p = a.alloc(4, 23, 0).unwrap();
        assert_eq!(p, PhysAddr(1));
        assert!(a.stats().combine_passes >= 1);
        assert!(a.stats().blocks_combined >= 1);
        a.check_invariants();
    }

    #[test]
    fn combining_retracts_frontier() {
        let mut a = RiceAllocator::new(64);
        a.alloc(1, 15, 0).unwrap(); // [0,16)
        a.alloc(2, 15, 0).unwrap(); // [16,32) frontier=32
        a.free(2).unwrap();
        a.combine_adjacent();
        assert_eq!(
            a.frontier(),
            16,
            "trailing inactive block retracts frontier"
        );
        assert_eq!(a.chain_len(), 0);
        a.check_invariants();
    }

    #[test]
    fn failure_after_combining_reports_out_of_storage() {
        let mut a = RiceAllocator::new(32);
        a.alloc(1, 10, 0).unwrap();
        a.alloc(2, 10, 0).unwrap();
        a.free(1).unwrap();
        let err = a.alloc(3, 30, 0).unwrap_err();
        assert!(matches!(err, AllocError::OutOfStorage { .. }));
        assert_eq!(a.stats().failures, 1);
        // The iterative replacement loop: freeing 2 then combining makes
        // room.
        a.free(2).unwrap();
        assert!(a.alloc(3, 30, 0).is_ok());
        a.check_invariants();
    }

    #[test]
    fn error_cases() {
        let mut a = RiceAllocator::new(32);
        assert_eq!(a.alloc(1, 0, 0), Err(AllocError::ZeroSize));
        a.alloc(1, 5, 0).unwrap();
        assert_eq!(a.alloc(1, 5, 0), Err(AllocError::AlreadyAllocated));
        assert_eq!(a.free(9), Err(AllocError::UnknownUnit));
    }

    #[test]
    fn lookup_and_listing() {
        let mut a = RiceAllocator::new(64);
        a.alloc(5, 10, 77).unwrap();
        assert_eq!(a.lookup(5), Some((PhysAddr(1), 10)));
        assert_eq!(a.lookup(6), None);
        let blocks = a.active_blocks();
        assert_eq!(blocks, vec![(5, 1, 10, 77)]);
    }

    #[test]
    fn free_words_counts_chain_and_tail() {
        let mut a = RiceAllocator::new(100);
        a.alloc(1, 9, 0).unwrap(); // gross 10
        a.alloc(2, 9, 0).unwrap(); // gross 10
        a.free(1).unwrap();
        assert_eq!(a.free_words(), 10 + 80);
    }

    #[test]
    fn probes_count_chain_scans() {
        let mut a = RiceAllocator::new(200);
        a.alloc(1, 10, 0).unwrap();
        a.alloc(2, 10, 0).unwrap();
        a.alloc(3, 10, 0).unwrap();
        a.free(1).unwrap();
        a.free(2).unwrap();
        a.free(3).unwrap();
        let before = a.stats().probes;
        // 50-word request: all three 11-word chain entries probed, then
        // frontier used.
        a.alloc(4, 50, 0).unwrap();
        assert_eq!(a.stats().probes - before, 3);
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;

    #[test]
    fn owner_of_unknown_id_is_none() {
        let a = RiceAllocator::new(16);
        assert_eq!(a.owner(42), None);
    }

    #[test]
    fn combine_on_empty_chain_is_harmless() {
        let mut a = RiceAllocator::new(16);
        assert_eq!(a.combine_adjacent(), 0);
        a.check_invariants();
    }

    #[test]
    fn payload_exactly_fills_capacity_minus_back_ref() {
        let mut a = RiceAllocator::new(16);
        assert!(a.alloc(1, 16, 0).is_err(), "gross 17 > 16");
        assert!(a.alloc(1, 15, 0).is_ok(), "gross 16 == 16");
        assert_eq!(a.free_words(), 0);
    }
}
