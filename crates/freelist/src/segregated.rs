//! A segregated-fit allocator.
//!
//! The paper's placement discussion ends with the factors a designer
//! should weigh: "the frequency of storage allocation requests, the
//! average size of allocation unit, and the number of different
//! allocation units." When requests cluster into a few sizes, keeping a
//! *separate free list per size class* removes the search entirely —
//! the philosophy that later allocators (Knuth's exercise, quick fit,
//! and eventually slab/size-class allocators) built on. It is the
//! logical completion of the two-ends idea: not two populations, but
//! one per class.
//!
//! [`SegregatedAllocator`] rounds each request up to its class and
//! serves it from that class's list, falling back to carving the tail
//! region when the list is empty. Frees push the block back onto its
//! class list — constant time, no coalescing. The price is classic:
//! internal fragmentation from rounding, and free storage trapped in
//! the wrong class ("external" fragmentation across classes), which the
//! E5 harness measures against the search-based policies.

use std::collections::HashMap;

use dsa_core::error::AllocError;
use dsa_core::ids::{PhysAddr, Words};

/// Statistics for the segregated allocator.
#[derive(Clone, Copy, Debug, Default)]
pub struct SegregatedStats {
    /// Successful allocations.
    pub allocs: u64,
    /// Frees.
    pub frees: u64,
    /// Failed allocations.
    pub failures: u64,
    /// Allocations served from a class list (constant-time hits).
    pub list_hits: u64,
    /// Allocations carved from the tail region.
    pub tail_carves: u64,
}

/// Per-size-class free lists over a contiguous arena.
#[derive(Clone, Debug)]
pub struct SegregatedAllocator {
    capacity: Words,
    /// Class sizes, ascending; every request is rounded up to one.
    classes: Vec<Words>,
    /// Free blocks per class (parallel to `classes`), each a stack of
    /// block addresses.
    free: Vec<Vec<u64>>,
    /// First never-used address.
    tail: u64,
    /// Live allocations: id -> (addr, class index, requested size).
    allocated: HashMap<u64, (u64, usize, Words)>,
    stats: SegregatedStats,
}

impl SegregatedAllocator {
    /// Creates an allocator over `capacity` words with the given class
    /// sizes (ascending, deduplicated by the caller).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero, `classes` is empty, or the classes
    /// are not strictly ascending.
    #[must_use]
    pub fn new(capacity: Words, classes: &[Words]) -> SegregatedAllocator {
        assert!(capacity > 0, "capacity must be positive");
        assert!(!classes.is_empty(), "need at least one class");
        assert!(
            classes.windows(2).all(|w| w[0] < w[1]) && classes[0] > 0,
            "classes must be strictly ascending and positive"
        );
        SegregatedAllocator {
            capacity,
            classes: classes.to_vec(),
            free: vec![Vec::new(); classes.len()],
            tail: 0,
            allocated: HashMap::new(),
            stats: SegregatedStats::default(),
        }
    }

    /// Power-of-two classes from `min` doubling up to at least `max`,
    /// using the shared ladder from [`dsa_core::sizeclass`].
    ///
    /// # Panics
    ///
    /// Panics (via [`SegregatedAllocator::new`]) on degenerate inputs.
    #[must_use]
    pub fn power_of_two(capacity: Words, min: Words, max: Words) -> SegregatedAllocator {
        let classes = dsa_core::sizeclass::power_of_two_classes(min, max);
        SegregatedAllocator::new(capacity, &classes)
    }

    fn class_of(&self, size: Words) -> Option<usize> {
        self.classes.iter().position(|&c| c >= size)
    }

    /// Total words currently free (class lists plus the untouched tail).
    #[must_use]
    pub fn free_words(&self) -> Words {
        let in_lists: Words = self
            .free
            .iter()
            .zip(&self.classes)
            .map(|(list, &c)| list.len() as Words * c)
            .sum();
        in_lists + (self.capacity - self.tail)
    }

    /// Words lost to rounding in live blocks.
    #[must_use]
    pub fn live_internal_waste(&self) -> Words {
        self.allocated
            .values()
            .map(|&(_, class, size)| self.classes[class] - size)
            .sum()
    }

    /// Cumulative statistics.
    #[must_use]
    pub fn stats(&self) -> &SegregatedStats {
        &self.stats
    }

    /// Looks up a live allocation: `(address, class size, requested)`.
    #[must_use]
    pub fn lookup(&self, id: u64) -> Option<(PhysAddr, Words, Words)> {
        self.allocated
            .get(&id)
            .map(|&(addr, class, size)| (PhysAddr(addr), self.classes[class], size))
    }

    /// Allocates `size` words under `id`.
    ///
    /// # Errors
    ///
    /// * [`AllocError::ZeroSize`] / [`AllocError::AlreadyAllocated`] on
    ///   bad requests;
    /// * [`AllocError::RequestTooLarge`] if no class fits `size`;
    /// * [`AllocError::OutOfStorage`] if the class list is empty and the
    ///   tail cannot supply a block (storage trapped in other classes is
    ///   *not* reused — the discipline's known weakness).
    pub fn alloc(&mut self, id: u64, size: Words) -> Result<PhysAddr, AllocError> {
        if size == 0 {
            return Err(AllocError::ZeroSize);
        }
        if self.allocated.contains_key(&id) {
            return Err(AllocError::AlreadyAllocated);
        }
        let Some(class) = self.class_of(size) else {
            // Invariant: construction rejects an empty class list.
            #[allow(clippy::expect_used)]
            return Err(AllocError::RequestTooLarge {
                requested: size,
                max: *self.classes.last().expect("non-empty"),
            });
        };
        let class_size = self.classes[class];
        let addr = if let Some(addr) = self.free[class].pop() {
            self.stats.list_hits += 1;
            addr
        } else if self.tail + class_size <= self.capacity {
            let addr = self.tail;
            self.tail += class_size;
            self.stats.tail_carves += 1;
            addr
        } else {
            self.stats.failures += 1;
            return Err(AllocError::OutOfStorage {
                requested: class_size,
                largest_free: self.capacity - self.tail,
            });
        };
        self.allocated.insert(id, (addr, class, size));
        self.stats.allocs += 1;
        Ok(PhysAddr(addr))
    }

    /// Frees `id`, returning its block to its class list.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::UnknownUnit`] if `id` is not live.
    pub fn free(&mut self, id: u64) -> Result<(), AllocError> {
        let (addr, class, _) = self.allocated.remove(&id).ok_or(AllocError::UnknownUnit)?;
        self.free[class].push(addr);
        self.stats.frees += 1;
        Ok(())
    }

    /// Verifies internal invariants (disjoint blocks, accounting).
    ///
    /// # Panics
    ///
    /// Panics if blocks overlap or words leak.
    pub fn check_invariants(&self) {
        let mut regions: Vec<(u64, u64)> = Vec::new();
        for (&id, &(addr, class, _)) in &self.allocated {
            let _ = id;
            regions.push((addr, addr + self.classes[class]));
        }
        for (class, list) in self.free.iter().enumerate() {
            for &addr in list {
                regions.push((addr, addr + self.classes[class]));
            }
        }
        regions.sort_unstable();
        for w in regions.windows(2) {
            assert!(w[0].1 <= w[1].0, "regions overlap: {w:?}");
        }
        let used: Words = regions.iter().map(|&(a, b)| b - a).sum();
        assert_eq!(used, self.tail, "words leaked before the tail");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc() -> SegregatedAllocator {
        SegregatedAllocator::new(1000, &[16, 64, 256])
    }

    #[test]
    fn requests_round_to_classes() {
        let mut a = alloc();
        a.alloc(1, 10).unwrap();
        a.alloc(2, 17).unwrap();
        a.alloc(3, 256).unwrap();
        assert_eq!(a.lookup(1).unwrap().1, 16);
        assert_eq!(a.lookup(2).unwrap().1, 64);
        assert_eq!(a.lookup(3).unwrap().1, 256);
        assert_eq!(a.live_internal_waste(), (6 + 47));
        a.check_invariants();
    }

    #[test]
    fn free_and_realloc_is_constant_time_reuse() {
        let mut a = alloc();
        let p1 = a.alloc(1, 60).unwrap();
        a.free(1).unwrap();
        let p2 = a.alloc(2, 50).unwrap();
        assert_eq!(p1, p2, "same class reuses the same block");
        assert_eq!(a.stats().list_hits, 1);
        assert_eq!(a.stats().tail_carves, 1);
    }

    #[test]
    fn storage_trapped_in_the_wrong_class() {
        // Fill with small blocks, free them all, then ask for a large
        // block: the free storage exists but only in the 16-word class.
        let mut a = SegregatedAllocator::new(160, &[16, 128]);
        for i in 0..10 {
            a.alloc(i, 16).unwrap();
        }
        for i in 0..10 {
            a.free(i).unwrap();
        }
        assert_eq!(a.free_words(), 160);
        let err = a.alloc(99, 100).unwrap_err();
        assert!(matches!(err, AllocError::OutOfStorage { .. }));
        a.check_invariants();
    }

    #[test]
    fn too_large_requests_are_rejected() {
        let mut a = alloc();
        assert!(matches!(
            a.alloc(1, 257),
            Err(AllocError::RequestTooLarge { max: 256, .. })
        ));
    }

    #[test]
    fn error_cases() {
        let mut a = alloc();
        assert_eq!(a.alloc(1, 0), Err(AllocError::ZeroSize));
        a.alloc(1, 10).unwrap();
        assert_eq!(a.alloc(1, 10), Err(AllocError::AlreadyAllocated));
        assert_eq!(a.free(9), Err(AllocError::UnknownUnit));
    }

    #[test]
    fn power_of_two_constructor() {
        let a = SegregatedAllocator::power_of_two(4096, 8, 512);
        assert_eq!(a.classes, vec![8, 16, 32, 64, 128, 256, 512]);
    }

    #[test]
    fn accounting_over_churn() {
        let mut a = SegregatedAllocator::power_of_two(4096, 8, 512);
        let mut live = Vec::new();
        for i in 0..200u64 {
            let size = (i * 13) % 300 + 1;
            if a.alloc(i, size).is_ok() {
                live.push(i);
            }
            if i % 3 == 0 && !live.is_empty() {
                let id = live.remove((i as usize * 7) % live.len());
                a.free(id).unwrap();
            }
            a.check_invariants();
        }
        // Free everything: every word is recoverable within its class.
        for id in live {
            a.free(id).unwrap();
        }
        a.check_invariants();
        assert_eq!(a.free_words(), 4096);
    }
}
