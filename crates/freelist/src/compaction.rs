//! Storage compaction.
//!
//! §Uniformity of Unit of Storage Allocation offers "two main
//! alternative courses of action" when variable-unit allocation
//! fragments storage: accept the decreased utilization, or "move
//! information around in storage so as to remove any unused spaces
//! between the sets of contiguous locations". This module implements the
//! second course and prices it, so experiment E7 can draw the trade-off
//! the paper describes ("sophisticated strategies for minimizing both
//! fragmentation and the corrective data movement").
//!
//! [`compact`] slides every live block toward address zero, preserving
//! order — the minimum-data-movement full compaction. The caller
//! receives each move through a callback, to apply it to a
//! `CoreMemory`-like store (see `dsa-storage`) and to charge a
//! packing channel (special hardware facility (iii)); relocation is
//! transparent to programs exactly when no absolute addresses are stored
//! in them, i.e. when access is via a mapping device or base registers
//! (§Storage Addressing).

use dsa_core::ids::{PhysAddr, Words};
use dsa_probe::{EventKind, Probe, Stamp};

use crate::freelist::FreeListAllocator;

/// What a compaction pass did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompactionReport {
    /// Number of blocks that changed address.
    pub blocks_moved: u64,
    /// Total words of information moved.
    pub words_moved: Words,
    /// Largest free hole before the pass.
    pub largest_free_before: Words,
    /// Largest free hole after the pass (all free storage, coalesced).
    pub largest_free_after: Words,
    /// Free holes before the pass.
    pub holes_before: u64,
}

impl CompactionReport {
    /// Words of contiguous free space gained.
    #[must_use]
    pub fn gain(&self) -> Words {
        self.largest_free_after - self.largest_free_before
    }
}

/// Compacts the allocator, reporting each block move to `on_move` as
/// `(id, old address, new address, size)`, in ascending address order
/// (safe for overlapping `memmove`-style slides).
pub fn compact(
    a: &mut FreeListAllocator,
    mut on_move: impl FnMut(u64, PhysAddr, PhysAddr, Words),
) -> CompactionReport {
    let largest_free_before = a.largest_free();
    let holes_before = a.hole_count() as u64;
    let moves = a.pack_down();
    let mut words_moved = 0;
    for &(id, old, new, size) in &moves {
        on_move(id, PhysAddr(old), PhysAddr(new), size);
        words_moved += size;
    }
    CompactionReport {
        blocks_moved: moves.len() as u64,
        words_moved,
        largest_free_before,
        largest_free_after: a.largest_free(),
        holes_before,
    }
}

/// [`compact`] with event emission: `CompactionStart` before the pass,
/// `CompactionDone { moved_words }` after, bracketing the packing
/// channel's burst of data movement.
pub fn compact_probed<P: Probe + ?Sized>(
    a: &mut FreeListAllocator,
    on_move: impl FnMut(u64, PhysAddr, PhysAddr, Words),
    at: Stamp,
    probe: &mut P,
) -> CompactionReport {
    probe.emit(EventKind::CompactionStart, at);
    let report = compact(a, on_move);
    probe.emit(
        EventKind::CompactionDone {
            moved_words: report.words_moved,
        },
        at,
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::freelist::Placement;

    fn fragmented() -> FreeListAllocator {
        let mut a = FreeListAllocator::new(100, Placement::FirstFit);
        for i in 0..5 {
            a.alloc(i, 20).unwrap();
        }
        a.free(1).unwrap(); // hole [20,40)
        a.free(3).unwrap(); // hole [60,80)
        a
    }

    #[test]
    fn compaction_coalesces_all_free_space() {
        let mut a = fragmented();
        assert_eq!(a.largest_free(), 20);
        let report = compact(&mut a, |_, _, _, _| {});
        assert_eq!(report.largest_free_after, 40);
        assert_eq!(report.gain(), 20);
        assert_eq!(a.hole_count(), 1);
        assert_eq!(a.free_words(), 40);
        a.check_invariants();
    }

    #[test]
    fn moves_preserve_order_and_are_minimal() {
        let mut a = fragmented();
        let mut moves = Vec::new();
        let report = compact(&mut a, |id, old, new, size| {
            moves.push((id, old.value(), new.value(), size));
        });
        // Blocks 0 (at 0) stays; 2 (40->20), 4 (80->40) move.
        assert_eq!(report.blocks_moved, 2);
        assert_eq!(report.words_moved, 40);
        assert_eq!(moves, vec![(2, 40, 20, 20), (4, 80, 40, 20)]);
        // Moves are in ascending address order and always downwards.
        for &(_, old, new, _) in &moves {
            assert!(new < old);
        }
        // Lookup reflects new addresses.
        assert_eq!(a.lookup(2).unwrap().0.value(), 20);
        assert_eq!(a.lookup(4).unwrap().0.value(), 40);
    }

    #[test]
    fn compacting_compact_storage_is_free() {
        let mut a = FreeListAllocator::new(100, Placement::FirstFit);
        a.alloc(1, 30).unwrap();
        a.alloc(2, 30).unwrap();
        let report = compact(&mut a, |_, _, _, _| panic!("nothing should move"));
        assert_eq!(report.blocks_moved, 0);
        assert_eq!(report.words_moved, 0);
        assert_eq!(report.gain(), 0);
    }

    #[test]
    fn compaction_unblocks_failed_request() {
        let mut a = fragmented();
        // 40 free words in two 20-word holes: a 30-word request fails.
        assert!(a.alloc(10, 30).is_err());
        compact(&mut a, |_, _, _, _| {});
        assert!(
            a.alloc(10, 30).is_ok(),
            "compaction must cure external fragmentation"
        );
        a.check_invariants();
    }

    #[test]
    fn empty_allocator_compacts_to_nothing() {
        let mut a = FreeListAllocator::new(50, Placement::BestFit);
        let report = compact(&mut a, |_, _, _, _| {});
        assert_eq!(report.blocks_moved, 0);
        assert_eq!(a.largest_free(), 50);
    }

    #[test]
    fn full_allocator_compacts_to_no_hole() {
        let mut a = FreeListAllocator::new(40, Placement::FirstFit);
        a.alloc(1, 40).unwrap();
        compact(&mut a, |_, _, _, _| {});
        assert_eq!(a.hole_count(), 0);
        a.check_invariants();
    }
}
