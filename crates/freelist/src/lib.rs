//! Variable-unit storage allocation.
//!
//! "If the size of the unit of allocation is varied in order to suit the
//! needs of the information to be stored, the problem of storage
//! fragmentation becomes directly apparent" — §Uniformity of Unit of
//! Storage Allocation. This crate contains everything the paper says
//! about that regime:
//!
//! * [`freelist::FreeListAllocator`] — an address-ordered free list with
//!   immediate coalescing and the placement strategies of §Placement
//!   Strategies: first-fit, next-fit, **best-fit** ("place the
//!   information in the smallest space which is sufficient to contain
//!   it"), worst-fit (as a control), and **two-ends** ("place large
//!   blocks of information starting at one end of storage and small
//!   blocks starting at the other");
//! * [`rice::RiceAllocator`] — the Appendix A.4 scheme: sequential
//!   initial placement, an explicit chain of inactive blocks searched
//!   first-fit, deferred coalescing by combining adjacent inactive
//!   blocks only when a search fails;
//! * [`buddy::BuddyAllocator`] — the binary buddy system, a classic
//!   uniform-ish compromise, as an ablation baseline;
//! * [`segregated::SegregatedAllocator`] — per-size-class free lists,
//!   the search-free endpoint of the paper's "number of different
//!   allocation units" consideration;
//! * [`compaction`] — "to move information around in storage so as to
//!   remove any unused spaces" (§Uniformity, course (ii)), with
//!   move-cost accounting for experiment E7;
//! * [`frag`] — fragmentation measures, including the *internal*
//!   fragmentation of paged allocation that the paper insists paging
//!   merely obscures (conclusion (v), experiment E6).

pub mod buddy;
pub mod compaction;
pub mod frag;
pub mod freelist;
pub mod rice;
pub mod segregated;

pub use buddy::BuddyAllocator;
pub use compaction::{compact, CompactionReport};
pub use frag::{internal_waste, paged_overhead, FragReport};
pub use freelist::{AllocSnapshot, FreeListAllocator, FreeListStats, Placement};
pub use rice::RiceAllocator;
pub use segregated::SegregatedAllocator;
