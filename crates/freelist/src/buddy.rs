//! A binary buddy allocator.
//!
//! The buddy system is the classic compromise between the paper's two
//! poles: units are variable but quantized to powers of two, so
//! placement is trivial and coalescing is a constant-time buddy check —
//! at the price of *internal* fragmentation (a request is rounded up to
//! the next power of two). It serves as an ablation baseline between
//! the pure free list and pure paging in experiments E5–E6.

use std::collections::{BTreeSet, HashMap};

use dsa_core::error::AllocError;
use dsa_core::ids::{PhysAddr, Words};
use dsa_probe::{EventKind, Probe, Stamp};

/// Statistics for the buddy allocator.
#[derive(Clone, Copy, Debug, Default)]
pub struct BuddyStats {
    /// Successful allocations.
    pub allocs: u64,
    /// Frees.
    pub frees: u64,
    /// Failed allocations.
    pub failures: u64,
    /// Block splits performed.
    pub splits: u64,
    /// Buddy merges performed.
    pub merges: u64,
    /// Total words lost to rounding (cumulative over live blocks).
    pub internal_waste: Words,
}

/// A binary buddy allocator over a power-of-two capacity.
#[derive(Clone, Debug)]
pub struct BuddyAllocator {
    capacity_log2: u32,
    /// Free blocks per order: `free[k]` holds start addresses of free
    /// blocks of `1 << k` words.
    free: Vec<BTreeSet<u64>>,
    /// Live allocations: id -> (addr, order, requested size).
    allocated: HashMap<u64, (u64, u32, Words)>,
    stats: BuddyStats,
}

impl BuddyAllocator {
    /// Creates an allocator of `1 << capacity_log2` words.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_log2` exceeds 40 (a petabyte of simulated
    /// words is surely a configuration error).
    #[must_use]
    pub fn new(capacity_log2: u32) -> BuddyAllocator {
        assert!(capacity_log2 <= 40, "capacity_log2 too large");
        let mut free: Vec<BTreeSet<u64>> = (0..=capacity_log2).map(|_| BTreeSet::new()).collect();
        free[capacity_log2 as usize].insert(0);
        BuddyAllocator {
            capacity_log2,
            free,
            allocated: HashMap::new(),
            stats: BuddyStats::default(),
        }
    }

    /// Total capacity in words.
    #[must_use]
    pub fn capacity(&self) -> Words {
        1u64 << self.capacity_log2
    }

    /// Words currently free.
    #[must_use]
    pub fn free_words(&self) -> Words {
        self.free
            .iter()
            .enumerate()
            .map(|(k, s)| (s.len() as u64) << k)
            .sum()
    }

    /// Words currently lost to rounding in live blocks.
    #[must_use]
    pub fn live_internal_waste(&self) -> Words {
        self.allocated
            .values()
            .map(|&(_, order, size)| (1u64 << order) - size)
            .sum()
    }

    /// Cumulative statistics.
    #[must_use]
    pub fn stats(&self) -> &BuddyStats {
        &self.stats
    }

    /// Looks up a live allocation: `(address, rounded size, requested
    /// size)`.
    #[must_use]
    pub fn lookup(&self, id: u64) -> Option<(PhysAddr, Words, Words)> {
        self.allocated
            .get(&id)
            .map(|&(addr, order, size)| (PhysAddr(addr), 1u64 << order, size))
    }

    fn order_for(size: Words) -> u32 {
        size.next_power_of_two().trailing_zeros()
    }

    /// Allocates `size` words under `id`, rounded up to a power of two.
    ///
    /// # Errors
    ///
    /// * [`AllocError::ZeroSize`] / [`AllocError::AlreadyAllocated`] on
    ///   bad requests;
    /// * [`AllocError::RequestTooLarge`] if the rounded size exceeds
    ///   capacity;
    /// * [`AllocError::OutOfStorage`] if no block of sufficient order is
    ///   free.
    pub fn alloc(&mut self, id: u64, size: Words) -> Result<PhysAddr, AllocError> {
        if size == 0 {
            return Err(AllocError::ZeroSize);
        }
        if self.allocated.contains_key(&id) {
            return Err(AllocError::AlreadyAllocated);
        }
        let order = Self::order_for(size);
        if order > self.capacity_log2 {
            return Err(AllocError::RequestTooLarge {
                requested: size,
                max: self.capacity(),
            });
        }
        // Find the smallest free order >= requested.
        let Some(found) = (order..=self.capacity_log2).find(|&k| !self.free[k as usize].is_empty())
        else {
            self.stats.failures += 1;
            let largest = (0..=self.capacity_log2)
                .rev()
                .find(|&k| !self.free[k as usize].is_empty())
                .map_or(0, |k| 1u64 << k);
            return Err(AllocError::OutOfStorage {
                requested: size,
                largest_free: largest,
            });
        };
        // Invariant: `found` was selected as a class with a free block.
        #[allow(clippy::expect_used)]
        let addr = *self.free[found as usize].iter().next().expect("non-empty");
        self.free[found as usize].remove(&addr);
        // Split down to the requested order, freeing the upper halves.
        let mut k = found;
        while k > order {
            k -= 1;
            self.free[k as usize].insert(addr + (1u64 << k));
            self.stats.splits += 1;
        }
        self.allocated.insert(id, (addr, order, size));
        self.stats.allocs += 1;
        self.stats.internal_waste += (1u64 << order) - size;
        Ok(PhysAddr(addr))
    }

    /// [`BuddyAllocator::alloc`] with event emission: a successful
    /// allocation emits `Alloc { words, searched }`. The buddy system
    /// has no free-list walk, so `searched` counts block splits
    /// performed — the work this request cost the allocator.
    ///
    /// # Errors
    ///
    /// As [`BuddyAllocator::alloc`]; no event is emitted on failure.
    pub fn alloc_probed<P: Probe + ?Sized>(
        &mut self,
        id: u64,
        size: Words,
        at: Stamp,
        probe: &mut P,
    ) -> Result<PhysAddr, AllocError> {
        let before = self.stats.splits;
        let r = self.alloc(id, size);
        if r.is_ok() {
            probe.emit(
                EventKind::Alloc {
                    words: size,
                    searched: self.stats.splits - before,
                },
                at,
            );
        }
        r
    }

    /// Frees `id`, merging buddies as far as possible.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::UnknownUnit`] if `id` is not live.
    pub fn free(&mut self, id: u64) -> Result<(), AllocError> {
        let (mut addr, mut order, _) = self.allocated.remove(&id).ok_or(AllocError::UnknownUnit)?;
        self.stats.frees += 1;
        while order < self.capacity_log2 {
            let buddy = addr ^ (1u64 << order);
            if self.free[order as usize].remove(&buddy) {
                addr = addr.min(buddy);
                order += 1;
                self.stats.merges += 1;
            } else {
                break;
            }
        }
        self.free[order as usize].insert(addr);
        Ok(())
    }

    /// [`BuddyAllocator::free`] with event emission: a successful
    /// release emits `Free { words }` carrying the requested (net) size,
    /// balancing the matching `Alloc`.
    ///
    /// # Errors
    ///
    /// As [`BuddyAllocator::free`]; no event is emitted on failure.
    pub fn free_probed<P: Probe + ?Sized>(
        &mut self,
        id: u64,
        at: Stamp,
        probe: &mut P,
    ) -> Result<(), AllocError> {
        let net = self.allocated.get(&id).map(|&(_, _, size)| size);
        let r = self.free(id);
        if r.is_ok() {
            probe.emit(
                EventKind::Free {
                    words: net.unwrap_or(0),
                },
                at,
            );
        }
        r
    }

    /// Verifies internal invariants.
    ///
    /// # Panics
    ///
    /// Panics if blocks overlap, are misaligned, or words leak.
    pub fn check_invariants(&self) {
        let mut regions: Vec<(u64, u64)> = Vec::new();
        for (k, set) in self.free.iter().enumerate() {
            for &addr in set {
                let size = 1u64 << k;
                assert_eq!(addr % size, 0, "misaligned free block");
                regions.push((addr, addr + size));
            }
        }
        for &(addr, order, _) in self.allocated.values() {
            let size = 1u64 << order;
            assert_eq!(addr % size, 0, "misaligned allocation");
            regions.push((addr, addr + size));
        }
        regions.sort_unstable();
        for w in regions.windows(2) {
            assert!(w[0].1 <= w[1].0, "regions overlap: {w:?}");
        }
        let total: Words = regions.iter().map(|&(a, b)| b - a).sum();
        assert_eq!(total, self.capacity(), "words leaked");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocates_rounded_blocks() {
        let mut a = BuddyAllocator::new(10); // 1024 words
        let p = a.alloc(1, 100).unwrap();
        assert_eq!(p, PhysAddr(0));
        let (_, rounded, requested) = a.lookup(1).unwrap();
        assert_eq!(rounded, 128);
        assert_eq!(requested, 100);
        assert_eq!(a.live_internal_waste(), 28);
        a.check_invariants();
    }

    #[test]
    fn split_and_merge_round_trip() {
        let mut a = BuddyAllocator::new(6); // 64 words
        a.alloc(1, 16).unwrap();
        a.alloc(2, 16).unwrap();
        a.alloc(3, 32).unwrap();
        assert_eq!(a.free_words(), 0);
        a.free(1).unwrap();
        a.free(2).unwrap();
        a.free(3).unwrap();
        assert_eq!(a.free_words(), 64);
        // Everything must have merged back to one block.
        assert!(a.free[6].contains(&0));
        assert!(a.stats().merges >= 2);
        a.check_invariants();
    }

    #[test]
    fn buddies_merge_only_with_their_buddy() {
        let mut a = BuddyAllocator::new(6);
        a.alloc(1, 16).unwrap(); // [0,16)
        a.alloc(2, 16).unwrap(); // [16,32)
        a.alloc(3, 16).unwrap(); // [32,48)
        a.free(2).unwrap();
        a.free(3).unwrap();
        // [32,48) merges with its free buddy [48,64) into [32,64), but
        // [16,32) — adjacent to [32,48) yet NOT its buddy — stays alone.
        assert_eq!(a.free[4].len(), 1);
        assert!(a.free[4].contains(&16));
        assert!(a.free[5].contains(&32));
        a.check_invariants();
    }

    #[test]
    fn power_of_two_requests_have_no_waste() {
        let mut a = BuddyAllocator::new(8);
        a.alloc(1, 64).unwrap();
        assert_eq!(a.live_internal_waste(), 0);
    }

    #[test]
    fn error_cases() {
        let mut a = BuddyAllocator::new(5); // 32 words
        assert_eq!(a.alloc(1, 0), Err(AllocError::ZeroSize));
        assert!(matches!(
            a.alloc(1, 33),
            Err(AllocError::RequestTooLarge { .. })
        ));
        a.alloc(1, 32).unwrap();
        assert_eq!(a.alloc(1, 1), Err(AllocError::AlreadyAllocated));
        assert!(matches!(
            a.alloc(2, 1),
            Err(AllocError::OutOfStorage { .. })
        ));
        assert_eq!(a.free(9), Err(AllocError::UnknownUnit));
    }

    #[test]
    fn worst_case_internal_waste_approaches_half() {
        let mut a = BuddyAllocator::new(12); // 4096 words
                                             // Requests of 2^k + 1 waste almost half of each block.
        a.alloc(1, 513).unwrap(); // rounds to 1024
        a.alloc(2, 257).unwrap(); // rounds to 512
        let waste = a.live_internal_waste();
        assert_eq!(waste, (1024 - 513) + (512 - 257));
        let frac = waste as f64 / (1024 + 512) as f64;
        assert!(frac > 0.45, "{frac}");
    }

    #[test]
    fn fragmented_free_space_fails_large_request() {
        let mut a = BuddyAllocator::new(6); // 64
        a.alloc(1, 16).unwrap(); // [0,16)
        a.alloc(2, 16).unwrap(); // [16,32)
        a.alloc(3, 16).unwrap(); // [32,48)
        a.alloc(4, 16).unwrap(); // [48,64)
        a.free(1).unwrap();
        a.free(3).unwrap();
        assert_eq!(a.free_words(), 32);
        assert!(matches!(
            a.alloc(5, 32),
            Err(AllocError::OutOfStorage {
                largest_free: 16,
                ..
            })
        ));
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;

    #[test]
    fn lookup_of_unknown_id_is_none() {
        let a = BuddyAllocator::new(6);
        assert!(a.lookup(42).is_none());
    }

    #[test]
    fn one_word_arena_serves_one_word() {
        let mut a = BuddyAllocator::new(0); // capacity 1
        assert_eq!(a.capacity(), 1);
        a.alloc(1, 1).unwrap();
        assert!(matches!(
            a.alloc(2, 1),
            Err(AllocError::OutOfStorage { .. })
        ));
        a.free(1).unwrap();
        assert_eq!(a.free_words(), 1);
        a.check_invariants();
    }
}
