//! Fragmentation measures.
//!
//! Conclusion (v) of the paper: "Storage fragmentation is not prevented,
//! but just obscured, by paging techniques. In fact such techniques are
//! of no assistance in handling the problem of fragmentation within
//! pages." This module measures both kinds:
//!
//! * **external** fragmentation of a variable-unit allocator — free
//!   storage scattered into holes too small to use ([`FragReport`]);
//! * **internal** fragmentation of paged allocation — the partly used
//!   page frames of requests that do not fill an integral number of
//!   frames ([`internal_waste`], [`paged_overhead`]), including the
//!   MULTICS two-page-size variant ([`dual_size_waste`]).

use dsa_core::ids::Words;
use dsa_metrics::histogram::Histogram;

use crate::freelist::FreeListAllocator;

/// A snapshot of a variable-unit allocator's external fragmentation.
#[derive(Clone, Debug)]
pub struct FragReport {
    /// Free words in total.
    pub free_words: Words,
    /// Largest single hole.
    pub largest_hole: Words,
    /// Number of holes.
    pub holes: u64,
    /// `1 - largest/free`: 0 when all free storage is one hole, →1 as
    /// free storage shatters.
    pub external_frag: f64,
    /// Histogram of hole sizes (log₂ buckets).
    pub hole_sizes: Histogram,
}

impl FragReport {
    /// Measures `a` now.
    #[must_use]
    pub fn capture(a: &FreeListAllocator) -> FragReport {
        let free_words = a.free_words();
        let largest_hole = a.largest_free();
        let mut hole_sizes = Histogram::log2(32);
        for (_, size) in a.holes() {
            hole_sizes.record(size);
        }
        FragReport {
            free_words,
            largest_hole,
            holes: a.hole_count() as u64,
            external_frag: if free_words == 0 {
                0.0
            } else {
                1.0 - largest_hole as f64 / free_words as f64
            },
            hole_sizes,
        }
    }
}

/// Internal waste of one request under uniform pages: the unused tail
/// of its last page frame.
#[must_use]
pub fn internal_waste(request: Words, page_size: Words) -> Words {
    debug_assert!(page_size > 0);
    let rem = request % page_size;
    if request == 0 || rem == 0 {
        0
    } else {
        page_size - rem
    }
}

/// Internal waste of one request under the MULTICS two-page-size scheme:
/// the bulk is carried in `large` pages and the tail in `small` pages
/// (A.6: "at the cost of somewhat added complexity to the placement and
/// replacement strategies, the loss in storage utilization caused by
/// fragmentation occurring within pages can be reduced").
///
/// # Panics
///
/// Panics (in debug builds) unless `small` divides `large`.
#[must_use]
pub fn dual_size_waste(request: Words, small: Words, large: Words) -> Words {
    debug_assert!(small > 0 && large % small == 0 && large >= small);
    let bulk = (request / large) * large;
    let tail = request - bulk;
    internal_waste(tail, small)
}

/// The total overhead of running a request population on `page_size`
/// pages: in-page waste plus the words the page tables themselves
/// occupy. This is the quantity whose U-shape drives the paper's "if it
/// is too small, there will be an unacceptable amount of overhead. If it
/// is too large, too much space will be wasted" (experiment E6).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PagedOverhead {
    /// Words wasted inside partly-filled pages.
    pub internal_waste: Words,
    /// Words of page-table entries (`table_entry_words` per page).
    pub table_words: Words,
    /// Number of pages used.
    pub pages: u64,
}

impl PagedOverhead {
    /// Total overhead in words.
    #[must_use]
    pub fn total(&self) -> Words {
        self.internal_waste + self.table_words
    }
}

/// Computes [`PagedOverhead`] for a population of request sizes.
#[must_use]
pub fn paged_overhead(
    requests: &[Words],
    page_size: Words,
    table_entry_words: Words,
) -> PagedOverhead {
    assert!(page_size > 0, "page size must be positive");
    let mut waste = 0;
    let mut pages = 0;
    for &r in requests {
        waste += internal_waste(r, page_size);
        pages += r.div_ceil(page_size);
    }
    PagedOverhead {
        internal_waste: waste,
        table_words: pages * table_entry_words,
        pages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::freelist::Placement;

    #[test]
    fn internal_waste_basics() {
        assert_eq!(internal_waste(0, 512), 0);
        assert_eq!(internal_waste(512, 512), 0);
        assert_eq!(internal_waste(513, 512), 511);
        assert_eq!(internal_waste(1, 512), 511);
        assert_eq!(internal_waste(1000, 512), 24);
    }

    #[test]
    fn dual_size_reduces_tail_waste() {
        // A 1100-word request: one 1024 page + tail 76 -> two 64-pages
        // (128) wastes 52, versus a second 1024 page wasting 948.
        assert_eq!(dual_size_waste(1100, 64, 1024), 52);
        assert_eq!(internal_waste(1100, 1024), 948);
        assert!(dual_size_waste(1100, 64, 1024) < internal_waste(1100, 1024));
        // Exact multiples waste nothing either way.
        assert_eq!(dual_size_waste(2048, 64, 1024), 0);
    }

    #[test]
    fn paged_overhead_u_shape() {
        // 100 requests of 300 words. Small pages: low waste, many table
        // entries; large pages: few entries, high waste.
        let requests = vec![300u64; 100];
        let tiny = paged_overhead(&requests, 2, 1);
        let mid = paged_overhead(&requests, 16, 1);
        let huge = paged_overhead(&requests, 4096, 1);
        assert!(tiny.table_words > mid.table_words);
        assert!(huge.internal_waste > mid.internal_waste);
        assert!(mid.total() < tiny.total(), "tiny {tiny:?} vs mid {mid:?}");
        assert!(mid.total() < huge.total(), "huge {huge:?} vs mid {mid:?}");
    }

    #[test]
    fn paged_overhead_counts_pages() {
        let o = paged_overhead(&[100, 600], 512, 2);
        assert_eq!(o.pages, 1 + 2);
        assert_eq!(o.internal_waste, 412 + 424);
        assert_eq!(o.table_words, 6);
        assert_eq!(o.total(), 412 + 424 + 6);
    }

    #[test]
    fn frag_report_captures_holes() {
        let mut a = FreeListAllocator::new(100, Placement::FirstFit);
        for i in 0..5 {
            a.alloc(i, 20).unwrap();
        }
        a.free(1).unwrap();
        a.free(3).unwrap();
        let r = FragReport::capture(&a);
        assert_eq!(r.free_words, 40);
        assert_eq!(r.largest_hole, 20);
        assert_eq!(r.holes, 2);
        assert!((r.external_frag - 0.5).abs() < 1e-12);
        assert_eq!(r.hole_sizes.count(), 2);
    }

    #[test]
    fn frag_report_on_empty_and_full() {
        let a = FreeListAllocator::new(100, Placement::FirstFit);
        let r = FragReport::capture(&a);
        assert_eq!(r.external_frag, 0.0);
        assert_eq!(r.holes, 1);

        let mut a = FreeListAllocator::new(100, Placement::FirstFit);
        a.alloc(1, 100).unwrap();
        let r = FragReport::capture(&a);
        assert_eq!(r.free_words, 0);
        assert_eq!(
            r.external_frag, 0.0,
            "no free storage means no external frag"
        );
    }
}
