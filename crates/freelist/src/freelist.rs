//! The address-ordered free list and its placement strategies.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, BTreeSet, HashMap};

use dsa_core::error::AllocError;
use dsa_core::ids::{PhysAddr, Words};
use dsa_probe::{EventKind, Probe, Stamp};

/// A placement strategy for variable-unit allocation.
///
/// §Placement Strategies: "A common and frequently satisfactory strategy
/// is to place the information in the smallest space which is sufficient
/// to contain it. An alternative strategy, which involves less
/// bookkeeping, is to place large blocks of information starting at one
/// end of storage and small blocks starting at the other end."
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Placement {
    /// Lowest-addressed hole that fits.
    FirstFit,
    /// First fit, resuming from where the previous search ended (a
    /// roving pointer).
    NextFit,
    /// Smallest hole that fits.
    BestFit,
    /// Largest hole (a known-poor control).
    WorstFit,
    /// Requests smaller than `threshold` words are first-fit from the
    /// low end; larger requests are first-fit from the high end and
    /// placed at the top of the hole.
    TwoEnds {
        /// Requests of at least this many words count as "large".
        threshold: Words,
    },
}

impl Placement {
    /// A short label for experiment tables.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Placement::FirstFit => "first-fit",
            Placement::NextFit => "next-fit",
            Placement::BestFit => "best-fit",
            Placement::WorstFit => "worst-fit",
            Placement::TwoEnds { .. } => "two-ends",
        }
    }
}

/// Cumulative allocator statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct FreeListStats {
    /// Successful allocations.
    pub allocs: u64,
    /// Frees.
    pub frees: u64,
    /// Allocation failures (no hole large enough).
    pub failures: u64,
    /// Free blocks examined across all searches — the "bookkeeping"
    /// cost placement strategies trade against fragmentation.
    pub probes: u64,
    /// Coalesce operations performed on free.
    pub coalesces: u64,
}

impl FreeListStats {
    /// Accumulates another allocator's counters into this one — the
    /// reduction a sharded arena performs when it reports totals across
    /// shards.
    pub fn merge(&mut self, other: &FreeListStats) {
        self.allocs += other.allocs;
        self.frees += other.frees;
        self.failures += other.failures;
        self.probes += other.probes;
        self.coalesces += other.coalesces;
    }

    /// Mean search length per allocation attempt.
    #[must_use]
    pub fn mean_search(&self) -> f64 {
        let attempts = self.allocs + self.failures;
        if attempts == 0 {
            0.0
        } else {
            self.probes as f64 / attempts as f64
        }
    }
}

/// A point-in-time view of one allocator: the occupancy figures and
/// cumulative counters, copied out in one go. A sharded arena takes one
/// of these per shard while holding that shard's lock, then reports on
/// the copies with every lock released.
#[derive(Clone, Copy, Debug)]
pub struct AllocSnapshot {
    /// Total capacity in words.
    pub capacity: Words,
    /// Words currently free.
    pub free_words: Words,
    /// The largest contiguous free hole.
    pub largest_free: Words,
    /// Number of free holes.
    pub hole_count: usize,
    /// Number of live allocations.
    pub live_allocs: usize,
    /// Cumulative operation counters.
    pub stats: FreeListStats,
}

/// An address-ordered free-list allocator with immediate coalescing.
///
/// # Examples
///
/// ```
/// use dsa_freelist::freelist::{FreeListAllocator, Placement};
///
/// let mut a = FreeListAllocator::new(1000, Placement::BestFit);
/// let addr = a.alloc(1, 100).unwrap();
/// assert_eq!(addr.value(), 0);
/// a.free(1).unwrap();
/// assert_eq!(a.free_words(), 1000);
/// ```
#[derive(Clone, Debug)]
pub struct FreeListAllocator {
    capacity: Words,
    policy: Placement,
    /// Free holes, keyed by start address.
    free: BTreeMap<u64, Words>,
    /// Free holes indexed by `(size, start address)`. A mirror of
    /// `free` that lets best-fit and worst-fit *choose* a hole in
    /// O(log n) host time; the modeled linear-scan search length the
    /// paper's bookkeeping argument is about is still charged to
    /// `stats.probes` (see `choose_hole`). Maintained only when the
    /// policy consults it — the scanning policies must not pay for an
    /// index they never read.
    by_size: BTreeSet<(Words, u64)>,
    /// Hole start addresses in ascending order, best-fit and first-fit:
    /// answers "how many holes precede this one" — the modeled probe
    /// count at the point the scan would have stopped. A sorted-block
    /// structure rather than one flat `Vec`: first-fit churns the low
    /// end of the address space, and a flat vector would memmove nearly
    /// every element on each of those inserts and removals.
    hole_addrs: AddrRank,
    /// Segregated size-class bins, first-fit only: `bins[c]` maps the
    /// start address to the size of each hole whose size `s` satisfies
    /// `s.ilog2() == c`. Finding the lowest-addressed adequate hole
    /// inspects at most one bin per size class instead of the whole
    /// hole list; the modeled linear-scan search length is still
    /// charged via `hole_addrs` (see `choose_hole`).
    bins: Vec<BTreeMap<u64, Words>>,
    /// `bin_min[c]` is the lowest address in `bins[c]` (`u64::MAX` when
    /// empty) — a flat mirror of each bin's `first()`, so the
    /// higher-class walk in `choose_hole` reads an array instead of
    /// descending a B-tree per populated class.
    bin_min: Vec<u64>,
    /// Bit `c` set iff `bins[c]` is nonempty — the bitmap-of-free-
    /// classes word walked with `trailing_zeros` in `choose_hole`.
    class_bitmap: u64,
    /// Opt-in exact-size quick lists (deferred coalescing): `None`
    /// unless [`FreeListAllocator::enable_quick_lists`] was called.
    quick: Option<QuickLists>,
    /// Cached largest hole for the policies without the size index;
    /// `None` after a removal that may have retired the maximum.
    largest_cache: Cell<Option<Words>>,
    /// Live allocations: id -> (address, size).
    allocated: HashMap<u64, (u64, Words)>,
    /// Live allocations in address order, `(id, address, size)` —
    /// rebuilt lazily (`None` after any mutation) and reused verbatim
    /// across repeated queries, so back-to-back sorted views cost one
    /// sort, not one per call, and the mutation hot path pays nothing.
    sorted_allocs: RefCell<Option<Vec<(u64, u64, Words)>>>,
    /// Roving pointer for next-fit.
    rover: u64,
    stats: FreeListStats,
}

/// Exact-size LIFO free lists in front of the coalescing hole list —
/// the classic "quick fit" arrangement. A freed block of size
/// `s <= max_size` is parked (uncoalesced) on `lists[s]` unless that
/// list is already `depth` deep; a later request for exactly `s` words
/// pops it back in O(1). Parked blocks are *free* storage: they count
/// toward `free_words()` and are flushed into the real hole list when
/// a request cannot otherwise be satisfied, when the arena compacts,
/// or when a shard heals.
///
/// This trades the paper's immediate-coalescing discipline for host
/// speed, so it is strictly opt-in and never enabled in the modeled
/// (golden) experiments; see DESIGN.md "Simulated cost vs host cost".
/// An ordered multiset of hole start addresses supporting O(√n)
/// insert, remove, and rank — the structure behind the modeled probe
/// charge. Addresses live in sorted blocks of at most `2 * RANK_BLOCK`
/// elements, so a mutation memmoves one small block instead of the
/// whole address list, and `rank_le` sums whole-block counts until the
/// block containing the query.
#[derive(Clone, Debug, Default)]
struct AddrRank {
    /// Sorted, non-empty blocks; block `i+1`'s first element is greater
    /// than block `i`'s last.
    blocks: Vec<Vec<u64>>,
}

/// Target block size for [`AddrRank`]; blocks split at twice this.
const RANK_BLOCK: usize = 128;

impl AddrRank {
    /// Index of the block that does (or would) contain `addr`.
    fn block_for(&self, addr: u64) -> usize {
        self.blocks
            .partition_point(|b| b[0] <= addr)
            .saturating_sub(1)
    }

    /// Inserts `addr` (addresses are unique: one hole per start).
    fn insert(&mut self, addr: u64) {
        if self.blocks.is_empty() {
            self.blocks.push(vec![addr]);
            return;
        }
        let i = self.block_for(addr);
        let b = &mut self.blocks[i];
        let j = b.partition_point(|&a| a < addr);
        b.insert(j, addr);
        if b.len() > 2 * RANK_BLOCK {
            let tail = b.split_off(b.len() / 2);
            self.blocks.insert(i + 1, tail);
        }
    }

    /// Replaces `old` with `new` in place. Only legal when no stored
    /// address lies between them, so the rank position is unchanged —
    /// the hole-split and coalesce paths, where a hole's start slides
    /// within its own extent. O(√n) search, zero memmove.
    fn replace(&mut self, old: u64, new: u64) {
        let i = self.block_for(old);
        // Internal invariant: callers only replace an address they hold
        // in the structure (the hole being split or merged).
        #[allow(clippy::expect_used)]
        let j = self.blocks[i]
            .binary_search(&old)
            .expect("replaced address is present");
        #[cfg(debug_assertions)]
        {
            let b = &self.blocks[i];
            #[allow(clippy::expect_used)] // blocks are never empty
            let lo_ok = if j > 0 {
                b[j - 1] < new
            } else {
                i == 0 || *self.blocks[i - 1].last().expect("blocks are non-empty") < new
            };
            let hi_ok = if j + 1 < b.len() {
                new < b[j + 1]
            } else {
                i + 1 >= self.blocks.len() || new < self.blocks[i + 1][0]
            };
            debug_assert!(lo_ok && hi_ok, "replace would reorder");
        }
        self.blocks[i][j] = new;
    }

    /// Removes `addr` if present.
    fn remove(&mut self, addr: u64) {
        if self.blocks.is_empty() {
            return;
        }
        let i = self.block_for(addr);
        let b = &mut self.blocks[i];
        if let Ok(j) = b.binary_search(&addr) {
            b.remove(j);
            if b.is_empty() {
                self.blocks.remove(i);
            }
        }
    }

    /// How many stored addresses are `<= addr` — the rank of the hole
    /// the scan stopped at, counting the holes scanned past plus
    /// itself.
    fn rank_le(&self, addr: u64) -> u64 {
        let mut rank = 0u64;
        for b in &self.blocks {
            if b[0] > addr {
                break;
            }
            // Internal invariant: empty blocks are removed on the spot.
            #[allow(clippy::expect_used)]
            if *b.last().expect("blocks are non-empty") <= addr {
                rank += b.len() as u64;
            } else {
                rank += b.partition_point(|&a| a <= addr) as u64;
                break;
            }
        }
        rank
    }

    /// All addresses in ascending order.
    fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.blocks.iter().flatten().copied()
    }

    fn clear(&mut self) {
        self.blocks.clear();
    }
}

#[derive(Clone, Debug)]
struct QuickLists {
    /// Largest size eligible for parking.
    max_size: Words,
    /// Per-size depth cap, bounding fragmentation from deferred
    /// coalescing.
    depth: usize,
    /// `lists[s]` holds start addresses of parked blocks of size `s`.
    lists: Vec<Vec<u64>>,
    /// Total words parked across all lists.
    words: Words,
}

impl FreeListAllocator {
    /// Creates an allocator over `capacity` words, all free.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: Words, policy: Placement) -> FreeListAllocator {
        assert!(capacity > 0, "capacity must be positive");
        let mut a = FreeListAllocator {
            capacity,
            policy,
            free: BTreeMap::new(),
            by_size: BTreeSet::new(),
            hole_addrs: AddrRank::default(),
            bins: vec![BTreeMap::new(); 64],
            bin_min: vec![u64::MAX; 64],
            class_bitmap: 0,
            quick: None,
            largest_cache: Cell::new(Some(0)),
            allocated: HashMap::new(),
            sorted_allocs: RefCell::new(None),
            rover: 0,
            stats: FreeListStats::default(),
        };
        a.free.insert(0, capacity);
        a.index_insert(0, capacity);
        a
    }

    /// The segregated size class of a hole: floor(log2(size)), the
    /// shared indexing geometry from [`dsa_core::sizeclass`].
    fn class_of(size: Words) -> usize {
        dsa_core::sizeclass::log2_class(size)
    }

    /// Whether the policy maintains the `hole_addrs` rank structure
    /// (the policies whose modeled probe charge is computed from it).
    fn tracks_ranks(&self) -> bool {
        matches!(self.policy, Placement::BestFit | Placement::FirstFit)
    }

    /// Records a hole in the policy's size-keyed structures (`by_size`,
    /// the segregated bins, the largest-hole cache) — everything except
    /// the rank structure, which the callers manage so the split and
    /// coalesce paths can slide an address in place instead of paying a
    /// remove + insert.
    fn size_index_insert(&mut self, addr: u64, size: Words) {
        match self.policy {
            Placement::BestFit | Placement::WorstFit => {
                self.by_size.insert((size, addr));
            }
            Placement::FirstFit => {
                let c = Self::class_of(size);
                self.bins[c].insert(addr, size);
                self.bin_min[c] = self.bin_min[c].min(addr);
                self.class_bitmap |= 1 << c;
                if let Some(m) = self.largest_cache.get() {
                    self.largest_cache.set(Some(m.max(size)));
                }
            }
            _ => {
                if let Some(m) = self.largest_cache.get() {
                    self.largest_cache.set(Some(m.max(size)));
                }
            }
        }
    }

    /// Drops a hole from the policy's size-keyed structures; see
    /// [`FreeListAllocator::size_index_insert`].
    fn size_index_remove(&mut self, addr: u64, size: Words) {
        match self.policy {
            Placement::BestFit | Placement::WorstFit => {
                self.by_size.remove(&(size, addr));
            }
            Placement::FirstFit => {
                let c = Self::class_of(size);
                self.bins[c].remove(&addr);
                if self.bins[c].is_empty() {
                    self.class_bitmap &= !(1 << c);
                    self.bin_min[c] = u64::MAX;
                } else if self.bin_min[c] == addr {
                    // Internal invariant: the branch above handles the
                    // bin going empty.
                    #[allow(clippy::expect_used)]
                    {
                        self.bin_min[c] = *self.bins[c].keys().next().expect("non-empty bin");
                    }
                }
                if self.largest_cache.get() == Some(size) {
                    self.largest_cache.set(None);
                }
            }
            _ => {
                if self.largest_cache.get() == Some(size) {
                    self.largest_cache.set(None);
                }
            }
        }
    }

    /// Records a hole in whatever secondary structure the policy needs.
    fn index_insert(&mut self, addr: u64, size: Words) {
        self.size_index_insert(addr, size);
        if self.tracks_ranks() {
            self.hole_addrs.insert(addr);
        }
    }

    /// Drops a hole from the policy's secondary structure.
    fn index_remove(&mut self, addr: u64, size: Words) {
        self.size_index_remove(addr, size);
        if self.tracks_ranks() {
            self.hole_addrs.remove(addr);
        }
    }

    /// Total capacity in words.
    #[must_use]
    pub fn capacity(&self) -> Words {
        self.capacity
    }

    /// The placement strategy in use.
    #[must_use]
    pub fn policy(&self) -> Placement {
        self.policy
    }

    /// Words currently free (including any blocks parked on the quick
    /// lists — parked storage is free storage, merely uncoalesced).
    #[must_use]
    pub fn free_words(&self) -> Words {
        self.free.values().sum::<Words>() + self.quick.as_ref().map_or(0, |q| q.words)
    }

    /// Words currently allocated.
    #[must_use]
    pub fn allocated_words(&self) -> Words {
        self.capacity - self.free_words()
    }

    /// Utilization: allocated / capacity.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.allocated_words() as f64 / self.capacity as f64
    }

    /// The largest free hole, or 0 when storage is exhausted. Best-fit
    /// and worst-fit answer from the size index; the scanning policies
    /// answer from an incrementally maintained cache that a removal of
    /// the maximal hole invalidates (next query rescans once).
    #[must_use]
    pub fn largest_free(&self) -> Words {
        match self.policy {
            Placement::BestFit | Placement::WorstFit => {
                self.by_size.last().map_or(0, |&(size, _)| size)
            }
            _ => {
                if let Some(m) = self.largest_cache.get() {
                    m
                } else {
                    let m = self.free.values().copied().max().unwrap_or(0);
                    self.largest_cache.set(Some(m));
                    m
                }
            }
        }
    }

    /// Number of free holes.
    #[must_use]
    pub fn hole_count(&self) -> usize {
        self.free.len()
    }

    /// Iterates `(address, size)` over free holes in address order.
    pub fn holes(&self) -> impl Iterator<Item = (u64, Words)> + '_ {
        self.free.iter().map(|(&a, &s)| (a, s))
    }

    /// Iterates `(id, address, size)` over live allocations in address
    /// order. The sorted view is cached: only the first query after a
    /// mutation sorts; repeated queries reuse it.
    #[must_use]
    pub fn allocations_by_address(&self) -> Vec<(u64, u64, Words)> {
        let mut cache = self.sorted_allocs.borrow_mut();
        if let Some(sorted) = cache.as_ref() {
            return sorted.clone();
        }
        let mut sorted: Vec<(u64, u64, Words)> = self
            .allocated
            .iter()
            .map(|(&id, &(addr, size))| (id, addr, size))
            .collect();
        sorted.sort_unstable_by_key(|&(_, addr, _)| addr);
        *cache = Some(sorted.clone());
        sorted
    }

    /// Looks up a live allocation.
    #[must_use]
    pub fn lookup(&self, id: u64) -> Option<(PhysAddr, Words)> {
        self.allocated
            .get(&id)
            .map(|&(addr, size)| (PhysAddr(addr), size))
    }

    /// Cumulative statistics.
    #[must_use]
    pub fn stats(&self) -> &FreeListStats {
        &self.stats
    }

    /// Copies out the occupancy figures and counters in one call (see
    /// [`AllocSnapshot`]).
    #[must_use]
    pub fn snapshot(&self) -> AllocSnapshot {
        AllocSnapshot {
            capacity: self.capacity,
            free_words: self.free_words(),
            largest_free: self.largest_free(),
            hole_count: self.hole_count(),
            live_allocs: self.allocated.len(),
            stats: self.stats,
        }
    }

    /// Allocates `size` words under identifier `id`.
    ///
    /// # Errors
    ///
    /// * [`AllocError::ZeroSize`] for a zero-word request;
    /// * [`AllocError::AlreadyAllocated`] if `id` is live;
    /// * [`AllocError::OutOfStorage`] if no hole fits (external
    ///   fragmentation may leave `free_words() >= size` yet no
    ///   contiguous hole).
    pub fn alloc(&mut self, id: u64, size: Words) -> Result<PhysAddr, AllocError> {
        if size == 0 {
            return Err(AllocError::ZeroSize);
        }
        if self.allocated.contains_key(&id) {
            return Err(AllocError::AlreadyAllocated);
        }
        // Quick-fit fast path: an exact-size parked block satisfies the
        // request in O(1), no search, no split. Charges zero modeled
        // probes — quick lists are opt-in host-speed mode, never part
        // of the modeled experiments.
        if let Some(q) = self.quick.as_mut() {
            if size <= q.max_size {
                if let Some(addr) = q.lists[size as usize].pop() {
                    q.words -= size;
                    self.rover = addr + size;
                    self.allocated.insert(id, (addr, size));
                    self.sorted_allocs.replace(None);
                    self.stats.allocs += 1;
                    return Ok(PhysAddr(addr));
                }
            }
        }
        let mut chosen = self.choose_hole(size);
        if chosen.is_none() && self.quick.as_ref().is_some_and(|q| q.words > 0) {
            // Before declaring exhaustion, return every parked block to
            // the coalescing hole list and search once more: deferred
            // coalescing must not manufacture failures.
            self.flush_quick_lists();
            chosen = self.choose_hole(size);
        }
        let Some((hole_addr, hole_size, place_high)) = chosen else {
            self.stats.failures += 1;
            return Err(AllocError::OutOfStorage {
                requested: size,
                largest_free: self.largest_free(),
            });
        };
        self.free.remove(&hole_addr);
        self.size_index_remove(hole_addr, hole_size);
        let addr = if place_high {
            // Two-ends large request: take the top of the hole; the
            // remainder keeps its start address, so the rank structure
            // (were it maintained for this policy) would be untouched.
            let addr = hole_addr + hole_size - size;
            if hole_size > size {
                self.free.insert(hole_addr, hole_size - size);
                self.size_index_insert(hole_addr, hole_size - size);
            } else if self.tracks_ranks() {
                self.hole_addrs.remove(hole_addr);
            }
            addr
        } else {
            if hole_size > size {
                // The remainder's start slides within the old hole's
                // extent: same rank, no remove + insert.
                self.free.insert(hole_addr + size, hole_size - size);
                self.size_index_insert(hole_addr + size, hole_size - size);
                if self.tracks_ranks() {
                    self.hole_addrs.replace(hole_addr, hole_addr + size);
                }
            } else if self.tracks_ranks() {
                self.hole_addrs.remove(hole_addr);
            }
            hole_addr
        };
        self.rover = addr + size;
        self.allocated.insert(id, (addr, size));
        self.sorted_allocs.replace(None);
        self.stats.allocs += 1;
        Ok(PhysAddr(addr))
    }

    /// [`FreeListAllocator::alloc`] with event emission: a successful
    /// allocation emits `Alloc { words, searched }`, where `searched` is
    /// the number of holes the placement strategy inspected for this
    /// request — the per-request view of the search-length concern in
    /// §Placement Strategies.
    ///
    /// # Errors
    ///
    /// As [`FreeListAllocator::alloc`]; no event is emitted on failure.
    pub fn alloc_probed<P: Probe + ?Sized>(
        &mut self,
        id: u64,
        size: Words,
        at: Stamp,
        probe: &mut P,
    ) -> Result<PhysAddr, AllocError> {
        let before = self.stats.probes;
        let r = self.alloc(id, size);
        if r.is_ok() {
            probe.emit(
                EventKind::Alloc {
                    words: size,
                    searched: self.stats.probes - before,
                },
                at,
            );
        }
        r
    }

    /// Frees the allocation `id`, coalescing with free neighbours.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::UnknownUnit`] if `id` is not live.
    pub fn free(&mut self, id: u64) -> Result<(), AllocError> {
        let (addr, size) = self.allocated.remove(&id).ok_or(AllocError::UnknownUnit)?;
        self.sorted_allocs.replace(None);
        self.stats.frees += 1;
        // Quick-fit fast path: park small blocks uncoalesced, up to the
        // per-size depth cap.
        if let Some(q) = self.quick.as_mut() {
            if size <= q.max_size && q.lists[size as usize].len() < q.depth {
                q.lists[size as usize].push(addr);
                q.words += size;
                return Ok(());
            }
        }
        self.insert_free(addr, size);
        Ok(())
    }

    /// [`FreeListAllocator::free`] with event emission: a successful
    /// release emits `Free { words }`.
    ///
    /// # Errors
    ///
    /// As [`FreeListAllocator::free`]; no event is emitted on failure.
    pub fn free_probed<P: Probe + ?Sized>(
        &mut self,
        id: u64,
        at: Stamp,
        probe: &mut P,
    ) -> Result<(), AllocError> {
        let size = self.allocated.get(&id).map(|&(_, s)| s);
        let r = self.free(id);
        if r.is_ok() {
            probe.emit(
                EventKind::Free {
                    words: size.unwrap_or(0),
                },
                at,
            );
        }
        r
    }

    /// Inserts a free hole, merging with adjacent holes.
    fn insert_free(&mut self, mut addr: u64, mut size: Words) {
        // Whether the final hole's start address is already present in
        // the rank structure (true after a predecessor merge: the
        // merged hole keeps the predecessor's start).
        let mut rank_present = false;
        // Merge with predecessor.
        if let Some((&paddr, &psize)) = self.free.range(..addr).next_back() {
            debug_assert!(paddr + psize <= addr, "overlapping free blocks");
            if paddr + psize == addr {
                self.free.remove(&paddr);
                self.size_index_remove(paddr, psize);
                addr = paddr;
                size += psize;
                rank_present = true;
                self.stats.coalesces += 1;
            }
        }
        // Merge with successor.
        if let Some((&saddr, &ssize)) = self.free.range(addr + size..).next() {
            if addr + size == saddr {
                self.free.remove(&saddr);
                self.size_index_remove(saddr, ssize);
                size += ssize;
                self.stats.coalesces += 1;
                if self.tracks_ranks() {
                    if rank_present {
                        self.hole_addrs.remove(saddr);
                    } else {
                        // The merged hole inherits the successor's rank
                        // slot: its start slides down within the merged
                        // extent.
                        self.hole_addrs.replace(saddr, addr);
                        rank_present = true;
                    }
                }
            }
        }
        self.free.insert(addr, size);
        self.size_index_insert(addr, size);
        if self.tracks_ranks() && !rank_present {
            self.hole_addrs.insert(addr);
        }
    }

    /// Chooses a hole per the placement policy. Returns
    /// `(hole address, hole size, place-at-high-end)`.
    fn choose_hole(&mut self, size: Words) -> Option<(u64, Words, bool)> {
        match self.policy {
            Placement::FirstFit => {
                // Segregated-bin lookup: first-fit wants the lowest-
                // addressed adequate hole. In the request's own (floor)
                // class, holes may be smaller than the request, so that
                // bin is scanned in address order for the first that
                // fits; in any strictly higher class every hole fits
                // (its size is at least 2^(c+1) > size), so only each
                // such bin's minimum address competes. The candidate
                // with the lowest address overall is exactly the hole
                // the address-ordered scan finds.
                let c = Self::class_of(size);
                // Higher classes first: their minimum addresses are one
                // `first()` away and need no size check, and the best of
                // them caps the floor-bin scan below.
                let mask = if c + 1 >= 64 { 0 } else { !0u64 << (c + 1) };
                let mut higher = self.class_bitmap & mask;
                let mut cap = u64::MAX;
                while higher != 0 {
                    let k = higher.trailing_zeros() as usize;
                    higher &= higher - 1;
                    cap = cap.min(self.bin_min[k]);
                }
                // Floor bin, address order: the first fitting hole wins
                // — but once addresses pass `cap`, the higher-class
                // candidate is the lower-addressed adequate hole no
                // matter what the rest of this bin holds.
                let mut chosen: Option<(u64, Words)> = None;
                for (&addr, &hsize) in &self.bins[c] {
                    if cap < addr {
                        break;
                    }
                    if hsize >= size {
                        chosen = Some((addr, hsize));
                        break;
                    }
                }
                if chosen.is_none() && cap != u64::MAX {
                    let hsize = self.free.get(&cap).copied().unwrap_or(0);
                    chosen = Some((cap, hsize));
                }
                // The *modeled* cost stays the address-ordered scan's:
                // every hole up to and including the chosen one, or the
                // whole list on failure.
                self.stats.probes += match chosen {
                    Some((addr, _)) => self.hole_addrs.rank_le(addr),
                    None => self.free.len() as u64,
                };
                chosen.map(|(a, s)| (a, s, false))
            }
            Placement::NextFit => {
                let rover = self.rover;
                for (&addr, &hsize) in self.free.range(rover..).chain(self.free.range(..rover)) {
                    self.stats.probes += 1;
                    if hsize >= size {
                        return Some((addr, hsize, false));
                    }
                }
                None
            }
            Placement::BestFit => {
                // Index lookup: the smallest adequate size class, lowest
                // address within it — exactly the hole the address-order
                // scan with the classic exact-fit early exit chooses.
                let chosen = self
                    .by_size
                    .range((size, 0)..)
                    .next()
                    .map(|&(hsize, addr)| (addr, hsize));
                // The *modeled* cost stays the scan's: up to the chosen
                // hole when the exact-fit exit would have fired there,
                // the whole list otherwise (including on failure).
                self.stats.probes += match chosen {
                    Some((addr, hsize)) if hsize == size => self.hole_addrs.rank_le(addr),
                    _ => self.free.len() as u64,
                };
                chosen.map(|(a, s)| (a, s, false))
            }
            Placement::WorstFit => {
                // Index lookup: the largest size class, lowest address
                // within it — the hole the full scan's first-strict-
                // maximum rule chooses. The scan has no early exit, so
                // the modeled cost is always the whole list.
                self.stats.probes += self.free.len() as u64;
                let largest = self.by_size.last().map(|&(hsize, _)| hsize);
                largest.filter(|&hsize| hsize >= size).and_then(|hsize| {
                    self.by_size
                        .range((hsize, 0)..)
                        .next()
                        .map(|&(_, addr)| (addr, hsize, false))
                })
            }
            Placement::TwoEnds { threshold } => {
                if size < threshold {
                    for (&addr, &hsize) in &self.free {
                        self.stats.probes += 1;
                        if hsize >= size {
                            return Some((addr, hsize, false));
                        }
                    }
                    None
                } else {
                    for (&addr, &hsize) in self.free.iter().rev() {
                        self.stats.probes += 1;
                        if hsize >= size {
                            return Some((addr, hsize, true));
                        }
                    }
                    None
                }
            }
        }
    }

    /// Enables exact-size quick lists (deferred coalescing) for sizes
    /// up to `max_size`, at most `depth` parked blocks per size. This
    /// is a host-speed fast path: it changes *placement behavior* (a
    /// parked block is reused before any hole is searched) and charges
    /// zero modeled probes on the quick path, so it must never be
    /// enabled in a modeled experiment. Idempotent.
    ///
    /// # Panics
    ///
    /// Panics if `max_size` is zero or exceeds the capacity, or if
    /// `depth` is zero.
    pub fn enable_quick_lists(&mut self, max_size: Words, depth: usize) {
        assert!(max_size > 0, "max_size must be positive");
        assert!(max_size <= self.capacity, "max_size beyond capacity");
        assert!(depth > 0, "depth must be positive");
        if self.quick.is_none() {
            self.quick = Some(QuickLists {
                max_size,
                depth,
                lists: vec![Vec::new(); max_size as usize + 1],
                words: 0,
            });
        }
    }

    /// Whether quick lists are enabled.
    #[must_use]
    pub fn quick_lists_enabled(&self) -> bool {
        self.quick.is_some()
    }

    /// Words currently parked on the quick lists (0 when disabled).
    #[must_use]
    pub fn quick_parked_words(&self) -> Words {
        self.quick.as_ref().map_or(0, |q| q.words)
    }

    /// Returns every parked block to the coalescing hole list. Called
    /// automatically before a request is allowed to fail, before
    /// compaction, and on heal; callable directly to restore the
    /// maximally-coalesced invariant at a quiescent point.
    pub fn flush_quick_lists(&mut self) {
        let Some(q) = self.quick.as_mut() else { return };
        if q.words == 0 {
            return;
        }
        let mut parked: Vec<(u64, Words)> = Vec::new();
        for (size, list) in q.lists.iter_mut().enumerate() {
            for addr in list.drain(..) {
                parked.push((addr, size as Words));
            }
        }
        q.words = 0;
        for (addr, size) in parked {
            self.insert_free(addr, size);
        }
    }

    /// Empties the quick lists *without* re-inserting blocks — for the
    /// paths that rebuild the hole list wholesale from the live book
    /// (compaction, heal), where parked storage is re-covered by the
    /// reconstructed holes.
    fn clear_quick_lists(&mut self) {
        if let Some(q) = self.quick.as_mut() {
            for list in &mut q.lists {
                list.clear();
            }
            q.words = 0;
        }
    }

    /// Slides every allocation toward address zero, preserving address
    /// order, leaving a single hole at the top of storage. Returns
    /// `(id, old address, new address, size)` for each block that moved,
    /// in the order the moves must be performed (ascending addresses, so
    /// overlapping slides are safe).
    pub(crate) fn pack_down(&mut self) -> Vec<(u64, u64, u64, Words)> {
        let blocks = self.allocations_by_address();
        let mut moves = Vec::new();
        let mut cursor = 0u64;
        let mut packed = Vec::with_capacity(blocks.len());
        for (id, addr, size) in blocks {
            if addr != cursor {
                debug_assert!(cursor < addr, "pack_down must slide downwards");
                self.allocated.insert(id, (cursor, size));
                moves.push((id, addr, cursor, size));
            }
            packed.push((id, cursor, size));
            cursor += size;
        }
        // The packed layout *is* the new sorted view.
        self.sorted_allocs.replace(Some(packed));
        self.free.clear();
        self.by_size.clear();
        self.hole_addrs.clear();
        for bin in &mut self.bins {
            bin.clear();
        }
        self.bin_min.fill(u64::MAX);
        self.class_bitmap = 0;
        self.clear_quick_lists();
        self.largest_cache.set(Some(0));
        if cursor < self.capacity {
            self.free.insert(cursor, self.capacity - cursor);
            self.index_insert(cursor, self.capacity - cursor);
        }
        self.rover = cursor;
        moves
    }

    /// Verifies internal invariants; used by tests and property tests.
    ///
    /// # Panics
    ///
    /// Panics if free/allocated regions overlap, accounting is wrong, or
    /// two free holes are adjacent (coalescing must be maximal).
    pub fn check_invariants(&self) {
        if let Err(why) = self.audit() {
            panic!("{why}");
        }
    }

    /// Non-panicking invariant check: the self-healing path's detector.
    ///
    /// Runs exactly the checks of [`FreeListAllocator::check_invariants`]
    /// but returns the first violation as a description instead of
    /// panicking — a concurrent service auditing a possibly-corrupted
    /// shard must be able to *observe* the damage while holding the
    /// shard lock, quarantine, and heal, not unwind.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant, described.
    pub fn audit(&self) -> Result<(), String> {
        // Free holes: in-bounds, disjoint, non-adjacent.
        let mut prev_end: Option<u64> = None;
        for (&addr, &size) in &self.free {
            if size == 0 {
                return Err(format!("zero-size hole at {addr}"));
            }
            if addr + size > self.capacity {
                return Err(format!("hole at {addr} beyond capacity"));
            }
            if let Some(end) = prev_end {
                if end >= addr {
                    return Err(format!("holes overlap or are adjacent at {addr}"));
                }
            }
            prev_end = Some(addr + size);
        }
        // Quick lists: parked blocks sized by their list, words
        // accounted exactly, every block in bounds.
        if let Some(q) = self.quick.as_ref() {
            let mut parked_words: Words = 0;
            for (size, list) in q.lists.iter().enumerate() {
                if size == 0 && !list.is_empty() {
                    return Err("zero-size block parked on quick list".to_string());
                }
                parked_words += size as Words * list.len() as Words;
                for &addr in list {
                    if addr + size as Words > self.capacity {
                        return Err(format!("parked block at {addr} beyond capacity"));
                    }
                }
            }
            if parked_words != q.words {
                return Err(format!(
                    "quick-list words out of step: {parked_words} parked, {} recorded",
                    q.words
                ));
            }
        }
        // Allocations and parked quick-list blocks: in-bounds, disjoint
        // from each other and from holes. (Parked blocks may be
        // *adjacent* to holes — coalescing is deferred — but never
        // overlapping.)
        let quick_regions: Vec<(u64, u64)> = self.quick.as_ref().map_or_else(Vec::new, |q| {
            q.lists
                .iter()
                .enumerate()
                .flat_map(|(size, list)| list.iter().map(move |&a| (a, a + size as Words)))
                .collect()
        });
        let mut regions: Vec<(u64, u64)> = self
            .free
            .iter()
            .map(|(&a, &s)| (a, a + s))
            .chain(self.allocated.values().map(|&(a, s)| (a, a + s)))
            .chain(quick_regions)
            .collect();
        regions.sort_unstable();
        for w in regions.windows(2) {
            if w[0].1 > w[1].0 {
                return Err(format!("regions overlap: {w:?}"));
            }
        }
        // Accounting.
        let total: Words =
            self.free_words() + self.allocated.values().map(|&(_, s)| s).sum::<Words>();
        if total != self.capacity {
            return Err(format!(
                "words leaked or duplicated: {total} accounted of {} capacity",
                self.capacity
            ));
        }
        // The secondary structures mirror the hole list exactly.
        match self.policy {
            Placement::BestFit | Placement::WorstFit => {
                if self.by_size.len() != self.free.len() {
                    return Err("size index out of step".to_string());
                }
                for (&addr, &size) in &self.free {
                    if !self.by_size.contains(&(size, addr)) {
                        return Err(format!("hole at {addr} missing from size index"));
                    }
                }
                if self.policy == Placement::BestFit
                    && !self.hole_addrs.iter().eq(self.free.keys().copied())
                {
                    return Err("rank structure out of step with the hole list".to_string());
                }
            }
            Placement::FirstFit => {
                if let Some(m) = self.largest_cache.get() {
                    let actual = self.free.values().copied().max().unwrap_or(0);
                    if m != actual {
                        return Err(format!("stale largest-hole cache: {m} vs {actual}"));
                    }
                }
                if !self.hole_addrs.iter().eq(self.free.keys().copied()) {
                    return Err("rank structure out of step with the hole list".to_string());
                }
                let binned: usize = self.bins.iter().map(BTreeMap::len).sum();
                if binned != self.free.len() {
                    return Err(format!(
                        "segregated bins out of step: {binned} binned, {} holes",
                        self.free.len()
                    ));
                }
                for (&addr, &size) in &self.free {
                    if self.bins[Self::class_of(size)].get(&addr) != Some(&size) {
                        return Err(format!("hole at {addr} missing from its size-class bin"));
                    }
                }
                for (c, bin) in self.bins.iter().enumerate() {
                    if (self.class_bitmap & (1 << c) != 0) == bin.is_empty() {
                        return Err(format!("class bitmap out of step at class {c}"));
                    }
                    let min = bin.keys().next().copied().unwrap_or(u64::MAX);
                    if self.bin_min[c] != min {
                        return Err(format!("stale bin-min cache at class {c}"));
                    }
                }
            }
            _ => {
                if let Some(m) = self.largest_cache.get() {
                    let actual = self.free.values().copied().max().unwrap_or(0);
                    if m != actual {
                        return Err(format!("stale largest-hole cache: {m} vs {actual}"));
                    }
                }
            }
        }
        // A cached sorted view, when present, mirrors the id map.
        if let Some(sorted) = self.sorted_allocs.borrow().as_ref() {
            if sorted.len() != self.allocated.len() {
                return Err("stale sorted view".to_string());
            }
            for &(id, addr, size) in sorted {
                if self.allocated.get(&id) != Some(&(addr, size)) {
                    return Err(format!("allocation {id} stale in sorted view"));
                }
            }
            if !sorted.windows(2).all(|w| w[0].1 < w[1].1) {
                return Err("sorted view out of order".to_string());
            }
        }
        Ok(())
    }

    /// Rebuilds the hole list, the policy indexes, and every cache from
    /// the live-allocation book alone, discarding whatever (possibly
    /// corrupt) free-list state was there. Returns the free words after
    /// the rebuild.
    ///
    /// This is the self-healing half of the quarantine protocol: the
    /// `allocated` map is the book of record (it is what `free(id)`
    /// consults, and the corruption model covers the derived hole
    /// structures, not the book), so the complement of the live blocks
    /// *is* the free store. Holes are reconstructed maximal — adjacent
    /// free runs become one hole — so a healed allocator passes
    /// [`FreeListAllocator::audit`] including the coalescing invariant.
    pub fn rebuild_from_live(&mut self) -> Words {
        let mut blocks: Vec<(u64, Words)> = self.allocated.values().copied().collect();
        blocks.sort_unstable_by_key(|&(addr, _)| addr);
        self.free.clear();
        self.by_size.clear();
        self.hole_addrs.clear();
        for bin in &mut self.bins {
            bin.clear();
        }
        self.bin_min.fill(u64::MAX);
        self.class_bitmap = 0;
        self.clear_quick_lists();
        self.largest_cache.set(Some(0));
        self.sorted_allocs.replace(None);
        let mut cursor = 0u64;
        for &(addr, size) in &blocks {
            if addr > cursor {
                self.free.insert(cursor, addr - cursor);
                self.index_insert(cursor, addr - cursor);
            }
            cursor = addr + size;
        }
        if cursor < self.capacity {
            self.free.insert(cursor, self.capacity - cursor);
            self.index_insert(cursor, self.capacity - cursor);
        }
        self.rover = 0;
        self.free_words()
    }

    /// Deliberately corrupts the derived free-list state (never the
    /// live-allocation book): the chaos injector's shard-corruption
    /// payload. The damage is deterministic and always detectable by
    /// [`FreeListAllocator::audit`] — either a word leaks from the first
    /// hole or, with no holes to damage, a bogus hole is fabricated over
    /// allocated storage.
    #[doc(hidden)]
    pub fn corrupt_free_list_for_chaos(&mut self) {
        if let Some((&addr, &size)) = self.free.iter().next() {
            self.index_remove(addr, size);
            self.free.remove(&addr);
            if size > 1 {
                // Shrink the hole by one word: conservation now fails.
                self.free.insert(addr, size - 1);
                self.index_insert(addr, size - 1);
            }
            // size == 1: the hole vanishes entirely — also a leak.
        } else {
            // Saturated shard: fabricate a hole overlapping an
            // allocation.
            self.free.insert(0, 1);
            self.index_insert(0, 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_alloc_free_cycle() {
        let mut a = FreeListAllocator::new(100, Placement::FirstFit);
        let p1 = a.alloc(1, 30).unwrap();
        let p2 = a.alloc(2, 30).unwrap();
        assert_eq!(p1, PhysAddr(0));
        assert_eq!(p2, PhysAddr(30));
        assert_eq!(a.allocated_words(), 60);
        a.free(1).unwrap();
        a.free(2).unwrap();
        assert_eq!(a.free_words(), 100);
        assert_eq!(a.hole_count(), 1, "frees must coalesce back to one hole");
        a.check_invariants();
    }

    #[test]
    fn audit_detects_chaos_corruption_and_rebuild_heals_it() {
        for policy in [
            Placement::FirstFit,
            Placement::BestFit,
            Placement::WorstFit,
            Placement::NextFit,
        ] {
            let mut a = FreeListAllocator::new(400, policy);
            a.alloc(1, 50).unwrap();
            a.alloc(2, 60).unwrap();
            a.alloc(3, 70).unwrap();
            a.free(2).unwrap();
            assert!(a.audit().is_ok(), "{policy:?}");
            a.corrupt_free_list_for_chaos();
            assert!(a.audit().is_err(), "{policy:?}: corruption must be seen");
            let free = a.rebuild_from_live();
            assert_eq!(free, 400 - 50 - 70, "{policy:?}");
            a.check_invariants();
            // The healed allocator still places and frees correctly.
            a.alloc(4, 60).unwrap();
            a.free(1).unwrap();
            a.check_invariants();
        }
    }

    #[test]
    fn corruption_of_a_saturated_allocator_is_detected() {
        let mut a = FreeListAllocator::new(64, Placement::FirstFit);
        a.alloc(1, 64).unwrap();
        assert_eq!(a.hole_count(), 0);
        a.corrupt_free_list_for_chaos();
        assert!(a.audit().is_err());
        assert_eq!(a.rebuild_from_live(), 0);
        a.check_invariants();
    }

    #[test]
    fn error_cases() {
        let mut a = FreeListAllocator::new(100, Placement::FirstFit);
        assert_eq!(a.alloc(1, 0), Err(AllocError::ZeroSize));
        a.alloc(1, 10).unwrap();
        assert_eq!(a.alloc(1, 10), Err(AllocError::AlreadyAllocated));
        assert_eq!(a.free(99), Err(AllocError::UnknownUnit));
        let err = a.alloc(2, 1000).unwrap_err();
        assert!(matches!(
            err,
            AllocError::OutOfStorage {
                requested: 1000,
                largest_free: 90
            }
        ));
        assert_eq!(a.stats().failures, 1);
    }

    #[test]
    fn external_fragmentation_blocks_fitting_total() {
        // Holes of 30+30 = 60 free words, but a 40-word request fails.
        let mut a = FreeListAllocator::new(100, Placement::FirstFit);
        a.alloc(1, 30).unwrap(); // [0,30)
        a.alloc(2, 10).unwrap(); // [30,40)
        a.alloc(3, 30).unwrap(); // [40,70)
        a.alloc(4, 30).unwrap(); // [70,100)
        a.free(1).unwrap();
        a.free(3).unwrap();
        assert_eq!(a.free_words(), 60);
        assert!(a.alloc(5, 40).is_err());
        assert_eq!(a.largest_free(), 30);
        a.check_invariants();
    }

    #[test]
    fn best_fit_picks_smallest_adequate_hole() {
        let mut a = FreeListAllocator::new(100, Placement::BestFit);
        // Create holes of sizes 20 ([0,20)) and 10 ([30,40)).
        a.alloc(1, 20).unwrap();
        a.alloc(2, 10).unwrap();
        a.alloc(3, 10).unwrap();
        a.alloc(4, 60).unwrap();
        a.free(1).unwrap(); // hole [0,20)
        a.free(3).unwrap(); // hole [30,40)
        let p = a.alloc(5, 8).unwrap();
        assert_eq!(p, PhysAddr(30), "best-fit must choose the 10-word hole");
        a.check_invariants();
    }

    #[test]
    fn worst_fit_picks_largest_hole() {
        let mut a = FreeListAllocator::new(100, Placement::WorstFit);
        a.alloc(1, 20).unwrap();
        a.alloc(2, 10).unwrap();
        a.alloc(3, 10).unwrap();
        a.alloc(4, 60).unwrap();
        a.free(1).unwrap(); // hole [0,20)
        a.free(3).unwrap(); // hole [30,40)
        let p = a.alloc(5, 8).unwrap();
        assert_eq!(p, PhysAddr(0), "worst-fit must choose the 20-word hole");
    }

    #[test]
    fn first_fit_takes_lowest_hole() {
        let mut a = FreeListAllocator::new(100, Placement::FirstFit);
        a.alloc(1, 20).unwrap();
        a.alloc(2, 10).unwrap();
        a.alloc(3, 10).unwrap();
        a.alloc(4, 60).unwrap();
        a.free(1).unwrap();
        a.free(3).unwrap();
        let p = a.alloc(5, 8).unwrap();
        assert_eq!(p, PhysAddr(0));
    }

    #[test]
    fn next_fit_resumes_from_rover() {
        let mut a = FreeListAllocator::new(100, Placement::NextFit);
        a.alloc(1, 20).unwrap();
        a.alloc(2, 10).unwrap();
        a.alloc(3, 10).unwrap();
        a.alloc(4, 60).unwrap();
        a.free(1).unwrap(); // hole [0,20)
        a.free(3).unwrap(); // hole [30,40)
                            // Rover is at 100 (end of last alloc), wraps to the start.
        let p = a.alloc(5, 8).unwrap();
        assert_eq!(p, PhysAddr(0));
        // Rover now at 8: the next small alloc comes from [8,20), not
        // rescanning [0,8).
        let p2 = a.alloc(6, 8).unwrap();
        assert_eq!(p2, PhysAddr(8));
        // And the next one skips to [30,40).
        let p3 = a.alloc(7, 8).unwrap();
        assert_eq!(p3, PhysAddr(30));
    }

    #[test]
    fn two_ends_separates_small_and_large() {
        let mut a = FreeListAllocator::new(1000, Placement::TwoEnds { threshold: 100 });
        let small = a.alloc(1, 10).unwrap();
        let large = a.alloc(2, 200).unwrap();
        let small2 = a.alloc(3, 10).unwrap();
        let large2 = a.alloc(4, 200).unwrap();
        assert_eq!(small, PhysAddr(0));
        assert_eq!(large, PhysAddr(800));
        assert_eq!(small2, PhysAddr(10));
        assert_eq!(large2, PhysAddr(600));
        a.check_invariants();
    }

    #[test]
    fn exact_fit_consumes_whole_hole() {
        let mut a = FreeListAllocator::new(100, Placement::BestFit);
        a.alloc(1, 40).unwrap();
        a.alloc(2, 60).unwrap();
        a.free(1).unwrap();
        a.alloc(3, 40).unwrap();
        assert_eq!(a.free_words(), 0);
        assert_eq!(a.hole_count(), 0);
        a.check_invariants();
    }

    #[test]
    fn coalescing_merges_both_sides() {
        let mut a = FreeListAllocator::new(90, Placement::FirstFit);
        a.alloc(1, 30).unwrap();
        a.alloc(2, 30).unwrap();
        a.alloc(3, 30).unwrap();
        a.free(1).unwrap();
        a.free(3).unwrap();
        assert_eq!(a.hole_count(), 2);
        a.free(2).unwrap(); // merges with both neighbours
        assert_eq!(a.hole_count(), 1);
        assert_eq!(a.largest_free(), 90);
        assert!(a.stats().coalesces >= 2);
    }

    #[test]
    fn probe_counting_reflects_search_length() {
        let mut a = FreeListAllocator::new(100, Placement::FirstFit);
        a.alloc(1, 10).unwrap(); // 1 probe (single hole)
        a.alloc(2, 10).unwrap(); // 1 probe
        assert_eq!(a.stats().probes, 2);
        assert_eq!(a.stats().mean_search(), 1.0);
    }

    #[test]
    fn best_fit_probes_whole_list_without_exact_fit() {
        let mut a = FreeListAllocator::new(300, Placement::BestFit);
        for i in 0..5 {
            a.alloc(i, 30).unwrap();
        }
        for i in [0u64, 2, 4] {
            a.free(i).unwrap();
        }
        // Holes: [0,30), [60,90), and [120,300) (the last coalesced with
        // the tail).
        assert_eq!(a.hole_count(), 3);
        let probes_before = a.stats().probes;
        a.alloc(10, 5).unwrap(); // no exact fit: must scan all 3 holes
        assert_eq!(a.stats().probes - probes_before, 3);
    }

    #[test]
    fn lookup_and_listing() {
        let mut a = FreeListAllocator::new(100, Placement::FirstFit);
        a.alloc(7, 25).unwrap();
        assert_eq!(a.lookup(7), Some((PhysAddr(0), 25)));
        assert_eq!(a.lookup(8), None);
        let list = a.allocations_by_address();
        assert_eq!(list, vec![(7, 0, 25)]);
        assert!((a.utilization() - 0.25).abs() < 1e-12);
    }
}

#[cfg(test)]
mod probe_tests {
    use super::*;
    use dsa_probe::CountingProbe;

    #[test]
    fn alloc_and_free_emit_balanced_events() {
        let mut a = FreeListAllocator::new(200, Placement::BestFit);
        let mut probe = CountingProbe::new();
        let at = Stamp::vtime(0);
        a.alloc_probed(1, 40, at, &mut probe).unwrap();
        a.alloc_probed(2, 60, at, &mut probe).unwrap();
        a.free_probed(1, at, &mut probe).unwrap();
        // A third allocation must now search past hole [0,40).
        a.alloc_probed(3, 50, at, &mut probe).unwrap();
        assert_eq!(probe.allocs, 3);
        assert_eq!(probe.alloc_words, 150);
        assert_eq!(probe.frees, 1);
        assert_eq!(probe.freed_words, 40);
        assert!(probe.alloc_searched >= 3, "searches were counted");
    }

    #[test]
    fn failed_requests_emit_nothing() {
        let mut a = FreeListAllocator::new(10, Placement::FirstFit);
        let mut probe = CountingProbe::new();
        let at = Stamp::vtime(0);
        assert!(a.alloc_probed(1, 99, at, &mut probe).is_err());
        assert!(a.free_probed(9, at, &mut probe).is_err());
        assert_eq!(probe.total_events(), 0);
    }

    /// A first-fit scan over the hole list, straight from the paper:
    /// the reference the segregated bins must agree with.
    fn first_fit_reference(a: &FreeListAllocator, size: Words) -> (Option<u64>, u64) {
        let holes: Vec<(u64, Words)> = a.holes().collect();
        for (i, &(addr, hsize)) in holes.iter().enumerate() {
            if hsize >= size {
                return (Some(addr), i as u64 + 1);
            }
        }
        (None, holes.len() as u64)
    }

    #[test]
    fn segregated_first_fit_matches_linear_scan_under_churn() {
        let mut a = FreeListAllocator::new(8192, Placement::FirstFit);
        let mut x = 0x9e3779b97f4a7c15u64;
        let mut step = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let mut live: Vec<u64> = Vec::new();
        for id in 0..4000u64 {
            if step() % 3 != 0 || live.is_empty() {
                let size = 1 + step() % 300;
                let (want_addr, want_probes) = first_fit_reference(&a, size);
                let before = a.stats().probes;
                match a.alloc(id, size) {
                    Ok(addr) => {
                        assert_eq!(Some(addr.value()), want_addr, "placement diverged");
                        live.push(id);
                    }
                    Err(_) => assert!(want_addr.is_none(), "scan found a hole the bins missed"),
                }
                assert_eq!(
                    a.stats().probes - before,
                    want_probes,
                    "modeled cost diverged"
                );
            } else {
                let victim = live.swap_remove((step() % live.len() as u64) as usize);
                a.free(victim).unwrap();
            }
            if id % 512 == 0 {
                a.check_invariants();
            }
        }
        a.check_invariants();
    }

    #[test]
    fn quick_lists_round_trip_and_account_words() {
        let mut a = FreeListAllocator::new(1000, Placement::FirstFit);
        a.enable_quick_lists(64, 8);
        let p1 = a.alloc(1, 16).unwrap();
        a.alloc(2, 16).unwrap();
        a.free(1).unwrap();
        assert_eq!(a.quick_parked_words(), 16);
        assert_eq!(a.free_words(), 1000 - 16, "parked storage is free storage");
        // The exact-size request reuses the parked block, no search.
        let probes_before = a.stats().probes;
        let p3 = a.alloc(3, 16).unwrap();
        assert_eq!(p3, p1, "quick list must hand back the parked block");
        assert_eq!(
            a.stats().probes,
            probes_before,
            "quick path charges no probes"
        );
        assert_eq!(a.quick_parked_words(), 0);
        a.check_invariants();
    }

    #[test]
    fn quick_lists_flush_before_failing() {
        let mut a = FreeListAllocator::new(100, Placement::FirstFit);
        a.enable_quick_lists(50, 8);
        for id in 0..4u64 {
            a.alloc(id, 25).unwrap();
        }
        for id in 0..4u64 {
            a.free(id).unwrap();
        }
        assert_eq!(a.quick_parked_words(), 100);
        assert_eq!(a.hole_count(), 0, "parked blocks are not holes yet");
        // No single hole fits 100 words until the parked blocks are
        // flushed and coalesced — which alloc must do before failing.
        let addr = a.alloc(9, 100).unwrap();
        assert_eq!(addr, PhysAddr(0));
        a.check_invariants();
    }

    #[test]
    fn quick_lists_respect_depth_and_size_caps() {
        let mut a = FreeListAllocator::new(1000, Placement::FirstFit);
        a.enable_quick_lists(16, 2);
        for id in 0..3u64 {
            a.alloc(id, 8).unwrap();
        }
        a.alloc(3, 100).unwrap();
        for id in 0..3u64 {
            a.free(id).unwrap();
        }
        // Depth cap 2: the third freed 8-word block coalesces normally.
        assert_eq!(a.quick_parked_words(), 16);
        a.free(3).unwrap();
        // Size cap 16: the 100-word block goes straight to the holes.
        assert_eq!(a.quick_parked_words(), 16);
        a.check_invariants();
        a.flush_quick_lists();
        assert_eq!(a.quick_parked_words(), 0);
        assert_eq!(a.free_words(), 1000);
        a.check_invariants();
    }

    #[test]
    fn rebuild_and_pack_down_clear_quick_lists() {
        let mut a = FreeListAllocator::new(500, Placement::FirstFit);
        a.enable_quick_lists(32, 8);
        for id in 0..6u64 {
            a.alloc(id, 20).unwrap();
        }
        a.free(1).unwrap();
        a.free(3).unwrap();
        assert_eq!(a.quick_parked_words(), 40);
        a.rebuild_from_live();
        assert_eq!(a.quick_parked_words(), 0);
        assert_eq!(a.free_words(), 500 - 4 * 20);
        a.check_invariants();
        a.free(5).unwrap();
        assert!(a.quick_parked_words() > 0);
        let _ = a.pack_down();
        assert_eq!(a.quick_parked_words(), 0);
        a.check_invariants();
    }
}
