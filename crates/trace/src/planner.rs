//! Compiler-derived predictive information.
//!
//! The paper distinguishes user-supplied advice (unreliable, advisory)
//! from compiler-supplied advice: "The situation is different when the
//! information is provided by a compiler, but only if it is known that
//! all programs written for the computer system will use such
//! compilers." Project ACSI-MATIC went furthest, attaching whole
//! "program descriptions" — which medium each segment should be in when
//! used, and overlay permissions — that storage allocation strategies
//! then analysed.
//!
//! [`AdvicePlanner`] plays that compiler: it analyses a finished
//! [`ProgramOp`] stream (the compiler sees the whole program), finds
//! each segment's *episodes of use*, and weaves in will-need directives
//! a little ahead of each episode and wont-need directives at each
//! episode's end. Because the analysis is exact, the output is the
//! upper bound on what predictive information can ever be worth — the
//! "compiler" row of experiment E8.

use std::collections::HashMap;

use dsa_core::access::ProgramOp;
use dsa_core::advice::{Advice, AdviceUnit};
use dsa_core::ids::SegId;

/// Planner parameters.
#[derive(Clone, Copy, Debug)]
pub struct PlannerCfg {
    /// How many operations ahead of an episode the will-need directive
    /// is placed (fetch lead time).
    pub lead: usize,
    /// Touches of a segment separated by at most this many operations
    /// belong to one episode.
    pub episode_gap: usize,
}

impl Default for PlannerCfg {
    fn default() -> Self {
        PlannerCfg {
            lead: 40,
            episode_gap: 200,
        }
    }
}

/// The "authoritarian compiler": exact whole-program advice planning.
#[derive(Clone, Debug, Default)]
pub struct AdvicePlanner {
    cfg: PlannerCfg,
}

/// One maximal run of uses of a segment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Episode {
    seg: SegId,
    start: usize,
    end: usize,
}

impl AdvicePlanner {
    /// Creates a planner.
    #[must_use]
    pub fn new(cfg: PlannerCfg) -> AdvicePlanner {
        AdvicePlanner { cfg }
    }

    /// Finds every segment's episodes of use in `ops`.
    fn episodes(&self, ops: &[ProgramOp]) -> Vec<Episode> {
        let mut open: HashMap<SegId, Episode> = HashMap::new();
        let mut done: Vec<Episode> = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            let ProgramOp::Touch { seg, .. } = *op else {
                continue;
            };
            match open.get_mut(&seg) {
                Some(ep) if i - ep.end <= self.cfg.episode_gap => ep.end = i,
                Some(ep) => {
                    done.push(*ep);
                    *ep = Episode {
                        seg,
                        start: i,
                        end: i,
                    };
                }
                None => {
                    open.insert(
                        seg,
                        Episode {
                            seg,
                            start: i,
                            end: i,
                        },
                    );
                }
            }
        }
        done.extend(open.into_values());
        done.sort_unstable_by_key(|e| e.start);
        done
    }

    /// Returns `ops` with compiler advice woven in.
    ///
    /// Will-need directives are placed `lead` operations before each
    /// episode (but never before the segment's `Define`); wont-need
    /// directives immediately after each episode's last touch.
    #[must_use]
    pub fn plan(&self, ops: &[ProgramOp]) -> Vec<ProgramOp> {
        let episodes = self.episodes(ops);
        // Defines' positions bound how early a will-need may go.
        let mut defined_at: HashMap<SegId, usize> = HashMap::new();
        for (i, op) in ops.iter().enumerate() {
            if let ProgramOp::Define { seg, .. } = *op {
                defined_at.entry(seg).or_insert(i);
            }
        }
        // Directives to insert *before* the op at each index.
        let mut insert_before: HashMap<usize, Vec<ProgramOp>> = HashMap::new();
        for ep in &episodes {
            let earliest = defined_at.get(&ep.seg).map_or(0, |&d| d + 1);
            let at = ep.start.saturating_sub(self.cfg.lead).max(earliest);
            insert_before
                .entry(at)
                .or_default()
                .push(ProgramOp::Advise(Advice::WillNeed(AdviceUnit::Segment(
                    ep.seg,
                ))));
            insert_before
                .entry(ep.end + 1)
                .or_default()
                .push(ProgramOp::Advise(Advice::WontNeed(AdviceUnit::Segment(
                    ep.seg,
                ))));
        }
        let mut out = Vec::with_capacity(ops.len() + 2 * episodes.len());
        for (i, op) in ops.iter().enumerate() {
            if let Some(directives) = insert_before.remove(&i) {
                out.extend(directives);
            }
            out.push(*op);
        }
        if let Some(directives) = insert_before.remove(&ops.len()) {
            out.extend(directives);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsa_core::access::AccessKind;

    fn touch(seg: u32, offset: u64) -> ProgramOp {
        ProgramOp::Touch {
            seg: SegId(seg),
            offset,
            kind: AccessKind::Read,
        }
    }

    fn ops_with_two_episodes() -> Vec<ProgramOp> {
        let mut ops = vec![
            ProgramOp::Define {
                seg: SegId(0),
                size: 100,
            },
            ProgramOp::Define {
                seg: SegId(1),
                size: 100,
            },
        ];
        // Episode 1 of seg 0.
        ops.extend([touch(0, 1), touch(0, 2)]);
        // A long stretch of seg 1.
        for i in 0..300 {
            ops.push(touch(1, i % 100));
        }
        // Episode 2 of seg 0.
        ops.push(touch(0, 3));
        ops
    }

    #[test]
    fn episodes_split_on_gaps() {
        let planner = AdvicePlanner::new(PlannerCfg {
            lead: 10,
            episode_gap: 100,
        });
        let ops = ops_with_two_episodes();
        let eps = planner.episodes(&ops);
        let seg0: Vec<_> = eps.iter().filter(|e| e.seg == SegId(0)).collect();
        let seg1: Vec<_> = eps.iter().filter(|e| e.seg == SegId(1)).collect();
        assert_eq!(seg0.len(), 2, "the 300-op gap splits seg 0's uses");
        assert_eq!(seg1.len(), 1);
    }

    #[test]
    fn plan_preserves_original_ops_in_order() {
        let planner = AdvicePlanner::new(PlannerCfg::default());
        let ops = ops_with_two_episodes();
        let planned = planner.plan(&ops);
        let stripped: Vec<ProgramOp> = planned
            .iter()
            .copied()
            .filter(|op| !matches!(op, ProgramOp::Advise(_)))
            .collect();
        assert_eq!(stripped, ops, "planning must only insert advice");
    }

    #[test]
    fn will_need_precedes_each_episode() {
        let planner = AdvicePlanner::new(PlannerCfg {
            lead: 20,
            episode_gap: 100,
        });
        let ops = ops_with_two_episodes();
        let planned = planner.plan(&ops);
        // For every touch, some earlier will-need for its segment exists
        // with no intervening wont-need for that segment.
        let mut advised_in: std::collections::HashSet<SegId> = std::collections::HashSet::new();
        for op in &planned {
            match *op {
                ProgramOp::Advise(Advice::WillNeed(AdviceUnit::Segment(s))) => {
                    advised_in.insert(s);
                }
                ProgramOp::Advise(Advice::WontNeed(AdviceUnit::Segment(s))) => {
                    advised_in.remove(&s);
                }
                ProgramOp::Touch { seg, .. } => {
                    assert!(
                        advised_in.contains(&seg),
                        "touch of {seg} without live will-need"
                    );
                }
                _ => {}
            }
        }
    }

    #[test]
    fn will_need_never_precedes_define() {
        let planner = AdvicePlanner::new(PlannerCfg {
            lead: 1000,
            episode_gap: 100,
        });
        let ops = ops_with_two_episodes();
        let planned = planner.plan(&ops);
        let mut defined: std::collections::HashSet<SegId> = std::collections::HashSet::new();
        for op in &planned {
            match *op {
                ProgramOp::Define { seg, .. } => {
                    defined.insert(seg);
                }
                ProgramOp::Advise(Advice::WillNeed(AdviceUnit::Segment(s))) => {
                    assert!(defined.contains(&s), "advice for undeclared {s}");
                }
                _ => {}
            }
        }
    }

    #[test]
    fn wont_need_follows_episode_end() {
        let planner = AdvicePlanner::new(PlannerCfg {
            lead: 5,
            episode_gap: 50,
        });
        let ops = ops_with_two_episodes();
        let planned = planner.plan(&ops);
        // After the final op of the stream every segment's episode has
        // been closed: count will-needs == wont-needs per segment.
        let mut balance: HashMap<SegId, i64> = HashMap::new();
        for op in &planned {
            match *op {
                ProgramOp::Advise(Advice::WillNeed(AdviceUnit::Segment(s))) => {
                    *balance.entry(s).or_insert(0) += 1;
                }
                ProgramOp::Advise(Advice::WontNeed(AdviceUnit::Segment(s))) => {
                    *balance.entry(s).or_insert(0) -= 1;
                }
                _ => {}
            }
        }
        for (seg, b) in balance {
            assert_eq!(b, 0, "{seg}: unbalanced episodes");
        }
    }

    #[test]
    fn empty_stream_plans_to_empty() {
        let planner = AdvicePlanner::new(PlannerCfg::default());
        assert!(planner.plan(&[]).is_empty());
    }
}
