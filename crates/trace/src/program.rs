//! Segment-structured synthetic programs.
//!
//! The machine-survey experiment (E9) and the advice experiment (E8)
//! need workloads expressed machine-independently, as streams of
//! [`ProgramOp`]s: declare segments, touch items in them, resize and
//! delete them, interleave compute, and optionally emit advisory
//! directives. The generator models a program as a sequence of *phases*,
//! each working over a small set of segments — the structure the paper
//! says segmentation exists to convey ("if the program has started using
//! information from a particular segment, it is likely, in a short time,
//! to need to use other information in that segment").

use dsa_core::access::{AccessKind, ProgramOp};
use dsa_core::advice::{Advice, AdviceUnit};
use dsa_core::ids::{SegId, Words};

use crate::allocstream::SizeDist;
use crate::rng::Rng64;

/// Configuration for a synthetic segmented program.
#[derive(Clone, Debug)]
pub struct ProgramCfg {
    /// Number of segments the program declares.
    pub segments: u32,
    /// Distribution of segment sizes, in words.
    pub seg_sizes: SizeDist,
    /// Number of `Touch` operations to generate.
    pub touches: usize,
    /// Segments per phase working set.
    pub phase_set: u32,
    /// Touches per phase.
    pub phase_len: usize,
    /// Fraction of touches that are writes.
    pub write_fraction: f64,
    /// Probability per phase boundary that some live segment is resized.
    pub resize_prob: f64,
    /// If `Some(accuracy)`, advice is emitted at phase boundaries:
    /// will-need for the incoming set and wont-need for the outgoing
    /// set. Each directive independently names the *correct* segment
    /// with probability `accuracy`, otherwise a uniformly random wrong
    /// one — the knob experiment E8 sweeps.
    pub advice_accuracy: Option<f64>,
    /// Probability per touch of an out-of-bounds offset (an illegal
    /// subscript for experiment E13). The generated offset is `size +
    /// small`, guaranteed to violate the segment bound.
    pub wild_touch_prob: f64,
    /// Instructions of register-only compute between consecutive
    /// touches.
    pub compute_between: u64,
}

impl Default for ProgramCfg {
    fn default() -> Self {
        ProgramCfg {
            segments: 24,
            seg_sizes: SizeDist::Exponential {
                mean: 300.0,
                cap: 2048,
            },
            touches: 20_000,
            phase_set: 4,
            phase_len: 400,
            write_fraction: 0.3,
            resize_prob: 0.1,
            advice_accuracy: None,
            wild_touch_prob: 0.0,
            compute_between: 5,
        }
    }
}

/// A generated program: its op stream and the declared segment sizes.
#[derive(Clone, Debug)]
pub struct SyntheticProgram {
    /// The operation stream.
    pub ops: Vec<ProgramOp>,
    /// Size of each declared segment, indexed by `SegId.0`.
    pub seg_sizes: Vec<Words>,
}

impl SyntheticProgram {
    /// Total words across all declared segments (ignoring resizes).
    #[must_use]
    pub fn total_declared_words(&self) -> Words {
        self.seg_sizes.iter().sum()
    }

    /// Number of `Touch` operations in the stream.
    #[must_use]
    pub fn touch_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, ProgramOp::Touch { .. }))
            .count()
    }
}

impl ProgramCfg {
    /// Generates the program.
    ///
    /// The stream starts with `Define`s for every segment, then runs
    /// phases of touches; segments are deleted at the end. Offsets of
    /// ordinary touches are uniform within the segment's current size;
    /// wild touches exceed it.
    ///
    /// # Panics
    ///
    /// Panics if `segments` or `phase_set` is zero.
    #[must_use]
    pub fn generate(&self, rng: &mut Rng64) -> SyntheticProgram {
        assert!(self.segments > 0, "need at least one segment");
        assert!(self.phase_set > 0, "phase set must be non-empty");
        let nseg = self.segments;
        let mut sizes: Vec<Words> = (0..nseg).map(|_| self.seg_sizes.sample(rng)).collect();
        let mut ops: Vec<ProgramOp> = Vec::with_capacity(self.touches * 2);
        for (i, &size) in sizes.iter().enumerate() {
            ops.push(ProgramOp::Define {
                seg: SegId(i as u32),
                size,
            });
        }

        let set_size = self.phase_set.min(nseg) as usize;
        let mut all: Vec<u32> = (0..nseg).collect();
        let mut current: Vec<u32> = Vec::new();
        let mut emitted = 0usize;
        while emitted < self.touches {
            // Phase boundary: pick the next working set.
            rng.shuffle(&mut all);
            let next: Vec<u32> = all[..set_size].to_vec();
            if let Some(acc) = self.advice_accuracy {
                let advise =
                    |seg: u32, incoming: bool, rng: &mut Rng64, ops: &mut Vec<ProgramOp>| {
                        let named = if rng.chance(acc) {
                            seg
                        } else {
                            rng.below(u64::from(nseg)) as u32
                        };
                        let unit = AdviceUnit::Segment(SegId(named));
                        ops.push(ProgramOp::Advise(if incoming {
                            Advice::WillNeed(unit)
                        } else {
                            Advice::WontNeed(unit)
                        }));
                    };
                for &s in &current {
                    if !next.contains(&s) {
                        advise(s, false, rng, &mut ops);
                    }
                }
                for &s in &next {
                    if !current.contains(&s) {
                        advise(s, true, rng, &mut ops);
                    }
                }
            }
            current = next;
            if rng.chance(self.resize_prob) {
                let victim = *rng.pick(&current) as usize;
                let new_size = self.seg_sizes.sample(rng);
                sizes[victim] = new_size;
                ops.push(ProgramOp::Resize {
                    seg: SegId(victim as u32),
                    size: new_size,
                });
            }
            let phase_touches = self.phase_len.min(self.touches - emitted);
            for _ in 0..phase_touches {
                let seg = *rng.pick(&current);
                let size = sizes[seg as usize];
                let wild = rng.chance(self.wild_touch_prob);
                let offset = if wild {
                    size + rng.range(0, 7)
                } else {
                    rng.below(size.max(1))
                };
                let kind = if rng.chance(self.write_fraction) {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                ops.push(ProgramOp::Touch {
                    seg: SegId(seg),
                    offset,
                    kind,
                });
                if self.compute_between > 0 {
                    ops.push(ProgramOp::Compute {
                        instructions: self.compute_between,
                    });
                }
                emitted += 1;
            }
        }
        for i in 0..nseg {
            ops.push(ProgramOp::Delete { seg: SegId(i) });
        }
        SyntheticProgram {
            ops,
            seg_sizes: sizes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> ProgramCfg {
        ProgramCfg {
            segments: 8,
            seg_sizes: SizeDist::Uniform { lo: 50, hi: 200 },
            touches: 1000,
            phase_set: 3,
            phase_len: 100,
            write_fraction: 0.5,
            resize_prob: 0.2,
            advice_accuracy: None,
            wild_touch_prob: 0.0,
            compute_between: 2,
        }
    }

    #[test]
    fn touch_count_matches_cfg() {
        let p = small_cfg().generate(&mut Rng64::new(1));
        assert_eq!(p.touch_count(), 1000);
    }

    #[test]
    fn defines_precede_touches_and_deletes_close() {
        let p = small_cfg().generate(&mut Rng64::new(2));
        let first_touch = p
            .ops
            .iter()
            .position(|op| matches!(op, ProgramOp::Touch { .. }))
            .unwrap();
        let defines = p
            .ops
            .iter()
            .take(first_touch)
            .filter(|op| matches!(op, ProgramOp::Define { .. }))
            .count();
        assert_eq!(defines, 8);
        let deletes = p
            .ops
            .iter()
            .filter(|op| matches!(op, ProgramOp::Delete { .. }))
            .count();
        assert_eq!(deletes, 8);
        assert!(matches!(p.ops.last().unwrap(), ProgramOp::Delete { .. }));
    }

    #[test]
    fn touches_stay_in_bounds_without_wild_prob() {
        let p = small_cfg().generate(&mut Rng64::new(3));
        // Track sizes through resizes.
        let mut sizes: Vec<Words> = vec![0; 8];
        for op in &p.ops {
            match *op {
                ProgramOp::Define { seg, size } | ProgramOp::Resize { seg, size } => {
                    sizes[seg.0 as usize] = size;
                }
                ProgramOp::Touch { seg, offset, .. } => {
                    assert!(offset < sizes[seg.0 as usize], "oob touch generated");
                }
                _ => {}
            }
        }
    }

    #[test]
    fn wild_touches_violate_bounds() {
        let mut cfg = small_cfg();
        cfg.wild_touch_prob = 1.0;
        cfg.resize_prob = 0.0;
        let p = cfg.generate(&mut Rng64::new(4));
        for op in &p.ops {
            if let ProgramOp::Touch { seg, offset, .. } = *op {
                assert!(offset >= p.seg_sizes[seg.0 as usize]);
            }
        }
    }

    #[test]
    fn advice_is_emitted_when_enabled() {
        let mut cfg = small_cfg();
        cfg.advice_accuracy = Some(1.0);
        let p = cfg.generate(&mut Rng64::new(5));
        let advice = p
            .ops
            .iter()
            .filter(|op| matches!(op, ProgramOp::Advise(_)))
            .count();
        assert!(advice > 0, "no advice emitted");
        let none = small_cfg().generate(&mut Rng64::new(5));
        assert_eq!(
            none.ops
                .iter()
                .filter(|op| matches!(op, ProgramOp::Advise(_)))
                .count(),
            0
        );
    }

    #[test]
    fn accurate_advice_names_segments_about_to_be_used() {
        let mut cfg = small_cfg();
        cfg.advice_accuracy = Some(1.0);
        cfg.compute_between = 0;
        let p = cfg.generate(&mut Rng64::new(6));
        // Every will-need advice must be followed by a touch of that
        // segment before the next phase boundary block of advice ends
        // and the following phase completes.
        for (i, op) in p.ops.iter().enumerate() {
            if let ProgramOp::Advise(Advice::WillNeed(AdviceUnit::Segment(seg))) = op {
                let horizon = &p.ops[i..(i + 2 * cfg.phase_len + 16).min(p.ops.len())];
                let touched = horizon
                    .iter()
                    .any(|o| matches!(o, ProgramOp::Touch { seg: s, .. } if s == seg));
                // The phase may end early at stream end; allow the tail.
                if i + cfg.phase_len < p.ops.len() {
                    assert!(
                        touched,
                        "will-need advice for {seg} never honoured near op {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn determinism() {
        let a = small_cfg().generate(&mut Rng64::new(7));
        let b = small_cfg().generate(&mut Rng64::new(7));
        assert_eq!(a.ops, b.ops);
    }

    #[test]
    fn total_declared_words_is_sum() {
        let p = small_cfg().generate(&mut Rng64::new(8));
        // Sizes vector may reflect resizes; the sum is over current sizes.
        assert_eq!(p.total_declared_words(), p.seg_sizes.iter().sum::<u64>());
    }
}
