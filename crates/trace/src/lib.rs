//! Synthetic workload generation.
//!
//! The paper's strategies are evaluated (following Belady \[1\], whom it
//! cites) on abstracted *reference strings* and *allocation request
//! streams* rather than on recordings of particular 1967 programs. This
//! crate generates such workloads deterministically:
//!
//! * [`rng::Rng64`] — a small, self-contained xoshiro256++ PRNG so every
//!   experiment is exactly reproducible from a seed, independent of any
//!   external crate's stream stability;
//! * [`refstring`] — reference-string models: independent references,
//!   the LRU-stack-distance model, working-set phases, sequential
//!   sweeps, and the loop-structured patterns the ATLAS learning program
//!   was designed for;
//! * [`allocstream`] — allocation/free event streams with controllable
//!   size distributions, lifetimes, and steady-state load factor;
//! * [`program`] — segment-structured programs ([`dsa_core::ProgramOp`]
//!   streams) that every appendix machine can execute, with knobs for
//!   advice accuracy and bounds-violation injection;
//! * [`planner`] — the "authoritarian compiler": exact whole-program
//!   advice planning in the ACSI-MATIC program-description tradition,
//!   the upper bound on what predictive information can be worth;
//! * [`stream`] — seedable, resumable, constant-memory iterator
//!   equivalents of the materializing generators, under an exact-replay
//!   contract (same seed ⇒ byte-identical sequence, at any scale).

pub mod allocstream;
pub mod planner;
pub mod program;
pub mod refstring;
pub mod rng;
pub mod stream;

pub use allocstream::{AllocStreamCfg, SizeDist};
pub use planner::{AdvicePlanner, PlannerCfg};
pub use program::{ProgramCfg, SyntheticProgram};
pub use refstring::RefStringCfg;
pub use rng::Rng64;
pub use stream::{AllocEventStream, AllocStream, RefStream, RefStringStream};
