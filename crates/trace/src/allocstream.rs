//! Allocation/free event streams.
//!
//! Placement, fragmentation and compaction experiments (E5–E7) consume
//! streams of variable-size allocation requests and frees. The stream
//! generator holds a population of live blocks near a target load factor
//! and draws request sizes and lifetimes from configurable
//! distributions, in the style of the simulation studies the paper
//! alludes to ("analysis or experimentation can often be used to show
//! that the storage utilization will remain at an acceptable level",
//! citing Wald).

use dsa_core::access::{AllocEvent, AllocRequest};
use dsa_core::ids::Words;

use crate::rng::Rng64;

/// A request-size distribution.
#[derive(Clone, Copy, Debug)]
pub enum SizeDist {
    /// Uniform in `[lo, hi]`.
    Uniform {
        /// Smallest request.
        lo: Words,
        /// Largest request.
        hi: Words,
    },
    /// Exponential with the given mean, truncated to `[1, cap]`.
    Exponential {
        /// Mean request size.
        mean: f64,
        /// Upper truncation.
        cap: Words,
    },
    /// Two sizes: `small` with probability `p_small`, else `large`.
    /// Matches the paper's observation that placement policy choice
    /// depends on "the number of different allocation units".
    Bimodal {
        /// The common small size.
        small: Words,
        /// The rare large size.
        large: Words,
        /// Probability of a small request.
        p_small: f64,
    },
    /// One fixed size (degenerate case; useful as a control).
    Fixed {
        /// The size of every request.
        size: Words,
    },
}

impl SizeDist {
    /// Draws one request size.
    pub fn sample(&self, rng: &mut Rng64) -> Words {
        match *self {
            SizeDist::Uniform { lo, hi } => rng.range(lo.max(1), hi.max(1)),
            SizeDist::Exponential { mean, cap } => {
                (rng.exponential(mean) as Words).clamp(1, cap.max(1))
            }
            SizeDist::Bimodal {
                small,
                large,
                p_small,
            } => {
                if rng.chance(p_small) {
                    small.max(1)
                } else {
                    large.max(1)
                }
            }
            SizeDist::Fixed { size } => size.max(1),
        }
    }

    /// The mean of the distribution (exact, not sampled).
    #[must_use]
    pub fn mean(&self) -> f64 {
        match *self {
            SizeDist::Uniform { lo, hi } => (lo + hi) as f64 / 2.0,
            SizeDist::Exponential { mean, .. } => mean,
            SizeDist::Bimodal {
                small,
                large,
                p_small,
            } => small as f64 * p_small + large as f64 * (1.0 - p_small),
            SizeDist::Fixed { size } => size as f64,
        }
    }
}

/// Configuration for an allocation/free stream.
#[derive(Clone, Debug)]
pub struct AllocStreamCfg {
    /// Request-size distribution.
    pub sizes: SizeDist,
    /// Mean lifetime of a block, measured in events.
    pub mean_lifetime: f64,
    /// Target number of live *words*; while below it the stream is
    /// allocation-heavy, at or above it frees catch up. Models a program
    /// running at a steady storage demand.
    pub target_live_words: Words,
}

impl AllocStreamCfg {
    /// Generates `n` events. Every `Free` refers to a previously issued
    /// `Alloc` of the same stream; ids are unique across the stream.
    ///
    /// While live words are below [`AllocStreamCfg::target_live_words`]
    /// the stream allocates; at or above the target it frees the block
    /// whose drawn lifetime expires soonest. Lifetimes therefore govern
    /// the *order* in which blocks die (and hence the hole pattern the
    /// allocator must cope with), while the target governs steady-state
    /// occupancy.
    #[must_use]
    pub fn generate(&self, n: usize, rng: &mut Rng64) -> Vec<AllocEvent> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        let mut out = Vec::with_capacity(n);
        // Min-heap of (expiry, id, size) over live blocks.
        let mut live: BinaryHeap<Reverse<(u64, u64, Words)>> = BinaryHeap::new();
        let mut live_words: Words = 0;
        let mut next_id = 0u64;
        let mut t = 0u64;
        while out.len() < n {
            if live_words < self.target_live_words {
                let size = self.sizes.sample(rng);
                let lifetime = rng.exponential(self.mean_lifetime) as u64;
                let id = next_id;
                next_id += 1;
                live.push(Reverse((t + lifetime.max(1), id, size)));
                live_words += size;
                out.push(AllocEvent::Alloc(AllocRequest { id, size }));
            } else {
                // Invariant: live_words >= target > 0 here, so at least
                // one live block exists to retire.
                #[allow(clippy::expect_used)]
                let Reverse((_, id, size)) = live.pop().expect("target > 0 implies live blocks");
                live_words -= size;
                out.push(AllocEvent::Free { id });
            }
            t += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn cfg() -> AllocStreamCfg {
        AllocStreamCfg {
            sizes: SizeDist::Uniform { lo: 10, hi: 100 },
            mean_lifetime: 40.0,
            target_live_words: 5_000,
        }
    }

    #[test]
    fn stream_has_requested_length() {
        let mut rng = Rng64::new(1);
        assert_eq!(cfg().generate(1000, &mut rng).len(), 1000);
    }

    #[test]
    fn frees_only_refer_to_prior_allocs_and_never_twice() {
        let mut rng = Rng64::new(2);
        let events = cfg().generate(5000, &mut rng);
        let mut live: HashSet<u64> = HashSet::new();
        for e in &events {
            match *e {
                AllocEvent::Alloc(r) => {
                    assert!(live.insert(r.id), "duplicate alloc id {}", r.id);
                    assert!(r.size > 0);
                }
                AllocEvent::Free { id } => {
                    assert!(live.remove(&id), "free of dead/unknown id {id}");
                }
            }
        }
    }

    #[test]
    fn live_words_hover_near_target() {
        let mut rng = Rng64::new(3);
        let c = cfg();
        let events = c.generate(10_000, &mut rng);
        let mut live_words: i64 = 0;
        let mut sizes = std::collections::HashMap::new();
        let mut peak: i64 = 0;
        for e in &events[..] {
            match *e {
                AllocEvent::Alloc(r) => {
                    sizes.insert(r.id, r.size as i64);
                    live_words += r.size as i64;
                }
                AllocEvent::Free { id } => live_words -= sizes[&id],
            }
            peak = peak.max(live_words);
        }
        assert!(peak >= c.target_live_words as i64, "never reached target");
        // One request beyond target is the worst possible overshoot.
        assert!(peak <= c.target_live_words as i64 + 100);
    }

    #[test]
    fn size_dist_samples_match_spec() {
        let mut rng = Rng64::new(4);
        for _ in 0..1000 {
            let s = SizeDist::Uniform { lo: 5, hi: 9 }.sample(&mut rng);
            assert!((5..=9).contains(&s));
        }
        for _ in 0..1000 {
            let s = SizeDist::Exponential {
                mean: 50.0,
                cap: 200,
            }
            .sample(&mut rng);
            assert!((1..=200).contains(&s));
        }
        for _ in 0..1000 {
            let s = SizeDist::Bimodal {
                small: 8,
                large: 512,
                p_small: 0.9,
            }
            .sample(&mut rng);
            assert!(s == 8 || s == 512);
        }
        assert_eq!(SizeDist::Fixed { size: 64 }.sample(&mut rng), 64);
    }

    #[test]
    fn bimodal_probability_respected() {
        let mut rng = Rng64::new(5);
        let d = SizeDist::Bimodal {
            small: 1,
            large: 2,
            p_small: 0.8,
        };
        let smalls = (0..20_000).filter(|_| d.sample(&mut rng) == 1).count();
        let frac = smalls as f64 / 20_000.0;
        assert!((frac - 0.8).abs() < 0.02, "{frac}");
    }

    #[test]
    fn mean_formulas() {
        assert_eq!(SizeDist::Uniform { lo: 10, hi: 20 }.mean(), 15.0);
        assert_eq!(SizeDist::Fixed { size: 7 }.mean(), 7.0);
        let b = SizeDist::Bimodal {
            small: 10,
            large: 110,
            p_small: 0.9,
        };
        assert!((b.mean() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn determinism() {
        let a = cfg().generate(500, &mut Rng64::new(42));
        let b = cfg().generate(500, &mut Rng64::new(42));
        assert_eq!(a, b);
    }
}
