//! Reference-string models.
//!
//! A reference string is the sequence of names (here: page-granular
//! names) a program touches. Replacement-strategy behaviour is entirely
//! determined by it, so the models below are chosen to span the regimes
//! the paper and Belady discuss:
//!
//! * [`RefStringCfg::Uniform`] — independent references; no locality, the
//!   regime where every demand strategy degenerates;
//! * [`RefStringCfg::LruStack`] — the stack-distance model: each
//!   reference re-touches the page at a Zipf-distributed LRU depth, so
//!   locality strength is one knob (`theta`);
//! * [`RefStringCfg::WorkingSetPhases`] — program phases: a random
//!   working set is touched for a while, then the set shifts ("segments
//!   merely by their existence implicitly contain … information about
//!   future use");
//! * [`RefStringCfg::SequentialSweep`] — cyclic sweeps over more pages
//!   than fit in core: LRU's classic worst case and FIFO-anomaly
//!   territory;
//! * [`RefStringCfg::LoopNest`] — a strict nested-loop pattern with
//!   per-page fixed periods, the regime the ATLAS "learning program" was
//!   built for (Appendix A.1, experiment E12).

use dsa_core::access::{Access, AccessKind, ReferenceString};
use dsa_core::ids::PageNo;

use crate::rng::Rng64;

/// A reference-string model plus its parameters.
#[derive(Clone, Debug)]
pub enum RefStringCfg {
    /// Independent uniform references over `pages` pages.
    Uniform {
        /// Number of distinct pages.
        pages: u64,
    },
    /// LRU-stack-distance model: with probability given by a Zipf law of
    /// exponent `theta` over depths `1..=pages`, re-reference the page at
    /// that LRU depth. Larger `theta` means stronger locality.
    LruStack {
        /// Number of distinct pages.
        pages: u64,
        /// Zipf exponent over stack depths; 0.8–1.2 is program-like.
        theta: f64,
    },
    /// Working-set phases: touch a random subset of `set` pages
    /// uniformly for `phase_len` references, then pick a fresh subset.
    WorkingSetPhases {
        /// Number of distinct pages.
        pages: u64,
        /// Working-set size per phase.
        set: u64,
        /// References per phase.
        phase_len: u64,
    },
    /// Deterministic cyclic sweep over `pages` pages, one reference per
    /// page per sweep.
    SequentialSweep {
        /// Number of distinct pages.
        pages: u64,
    },
    /// A strict two-level loop nest: an inner set of `inner` pages is
    /// touched every iteration; each of the `outer` remaining pages is
    /// touched once every `period` iterations (staggered). Gives each
    /// page a *stable inactivity period* — exactly the signal the ATLAS
    /// learning program predicts from.
    LoopNest {
        /// Pages touched on every iteration.
        inner: u64,
        /// Pages touched periodically.
        outer: u64,
        /// Iterations between touches of an outer page.
        period: u64,
    },
    /// A stationary hot/cold mixture: with probability `p_hot` the next
    /// reference goes (uniformly) to one of the `hot` pages, otherwise
    /// to one of the remaining cold pages. No recency structure at all —
    /// the regime where *frequency* of use (LFU, the M44's criterion) is
    /// the right signal and recency adds nothing.
    HotCold {
        /// Number of hot pages.
        hot: u64,
        /// Number of cold pages.
        cold: u64,
        /// Probability that a reference is to the hot set.
        p_hot: f64,
    },
}

impl RefStringCfg {
    /// The number of distinct pages the model may reference.
    #[must_use]
    pub fn page_universe(&self) -> u64 {
        match *self {
            RefStringCfg::Uniform { pages }
            | RefStringCfg::LruStack { pages, .. }
            | RefStringCfg::WorkingSetPhases { pages, .. }
            | RefStringCfg::SequentialSweep { pages } => pages,
            RefStringCfg::LoopNest { inner, outer, .. } => inner + outer,
            RefStringCfg::HotCold { hot, cold, .. } => hot + cold,
        }
    }

    /// Generates a page-granular reference string of `len` references,
    /// with each reference independently a write with probability
    /// `write_fraction`.
    ///
    /// The returned accesses use the *page number as the name*; callers
    /// that want word-granular names can scale by a page size.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has an empty page universe.
    #[must_use]
    pub fn generate(&self, len: usize, write_fraction: f64, rng: &mut Rng64) -> ReferenceString {
        assert!(self.page_universe() > 0, "empty page universe");
        let mut out = Vec::with_capacity(len);
        let push = |page: u64, rng: &mut Rng64, out: &mut ReferenceString| {
            let kind = if rng.chance(write_fraction) {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            out.push(Access {
                name: dsa_core::ids::Name(page),
                kind,
            });
        };
        match *self {
            RefStringCfg::Uniform { pages } => {
                for _ in 0..len {
                    let p = rng.below(pages);
                    push(p, rng, &mut out);
                }
            }
            RefStringCfg::LruStack { pages, theta } => {
                // The stack starts in a random permutation so early
                // references are not biased toward low page numbers.
                let mut stack: Vec<u64> = (0..pages).collect();
                rng.shuffle(&mut stack);
                for _ in 0..len {
                    let depth = rng.zipf(pages, theta) as usize;
                    let page = stack.remove(depth);
                    stack.insert(0, page);
                    push(page, rng, &mut out);
                }
            }
            RefStringCfg::WorkingSetPhases {
                pages,
                set,
                phase_len,
            } => {
                let set = set.min(pages).max(1);
                let mut all: Vec<u64> = (0..pages).collect();
                let mut remaining = 0u64;
                let mut current: Vec<u64> = Vec::new();
                for _ in 0..len {
                    if remaining == 0 {
                        rng.shuffle(&mut all);
                        current = all[..set as usize].to_vec();
                        remaining = phase_len.max(1);
                    }
                    remaining -= 1;
                    let p = *rng.pick(&current);
                    push(p, rng, &mut out);
                }
            }
            RefStringCfg::SequentialSweep { pages } => {
                for i in 0..len as u64 {
                    push(i % pages, rng, &mut out);
                }
            }
            RefStringCfg::LoopNest {
                inner,
                outer,
                period,
            } => {
                let period = period.max(1);
                let mut iter = 0u64;
                'outer: loop {
                    for p in 0..inner {
                        if out.len() >= len {
                            break 'outer;
                        }
                        push(p, rng, &mut out);
                    }
                    // Outer pages are staggered so exactly outer/period of
                    // them (rounded) fire per iteration.
                    for q in 0..outer {
                        if q % period == iter % period {
                            if out.len() >= len {
                                break 'outer;
                            }
                            push(inner + q, rng, &mut out);
                        }
                    }
                    if out.len() >= len {
                        break;
                    }
                    iter += 1;
                }
            }
            RefStringCfg::HotCold { hot, cold, p_hot } => {
                for _ in 0..len {
                    let p = if rng.chance(p_hot) {
                        rng.below(hot)
                    } else {
                        hot + rng.below(cold.max(1))
                    };
                    push(p, rng, &mut out);
                }
            }
        }
        out
    }

    /// Convenience: generate and project to bare page numbers.
    #[must_use]
    pub fn generate_pages(&self, len: usize, rng: &mut Rng64) -> Vec<PageNo> {
        self.generate(len, 0.0, rng)
            .into_iter()
            .map(|a| PageNo(a.name.value()))
            .collect()
    }
}

/// Counts the number of distinct pages in a page-granular string.
#[must_use]
pub fn distinct_pages(s: &[PageNo]) -> usize {
    let mut v: Vec<u64> = s.iter().map(|p| p.0).collect();
    v.sort_unstable();
    v.dedup();
    v.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Rng64 {
        Rng64::new(0xD5A_5EED)
    }

    #[test]
    fn lengths_are_exact() {
        let mut r = rng();
        for cfg in [
            RefStringCfg::Uniform { pages: 10 },
            RefStringCfg::LruStack {
                pages: 10,
                theta: 1.0,
            },
            RefStringCfg::WorkingSetPhases {
                pages: 20,
                set: 5,
                phase_len: 7,
            },
            RefStringCfg::SequentialSweep { pages: 4 },
            RefStringCfg::LoopNest {
                inner: 3,
                outer: 6,
                period: 3,
            },
        ] {
            assert_eq!(cfg.generate(123, 0.3, &mut r).len(), 123, "{cfg:?}");
        }
    }

    #[test]
    fn pages_stay_in_universe() {
        let mut r = rng();
        for cfg in [
            RefStringCfg::Uniform { pages: 7 },
            RefStringCfg::LruStack {
                pages: 7,
                theta: 0.9,
            },
            RefStringCfg::WorkingSetPhases {
                pages: 7,
                set: 3,
                phase_len: 5,
            },
            RefStringCfg::SequentialSweep { pages: 7 },
            RefStringCfg::LoopNest {
                inner: 3,
                outer: 4,
                period: 2,
            },
        ] {
            let universe = cfg.page_universe();
            for a in cfg.generate(500, 0.5, &mut r) {
                assert!(a.name.value() < universe, "{cfg:?}");
            }
        }
    }

    #[test]
    fn write_fraction_is_respected() {
        let mut r = rng();
        let cfg = RefStringCfg::Uniform { pages: 16 };
        let s = cfg.generate(20_000, 0.25, &mut r);
        let writes = s.iter().filter(|a| a.kind.is_write()).count();
        let frac = writes as f64 / s.len() as f64;
        assert!((frac - 0.25).abs() < 0.02, "write fraction {frac}");
        let all_reads = cfg.generate(100, 0.0, &mut r);
        assert!(all_reads.iter().all(|a| !a.kind.is_write()));
    }

    #[test]
    fn sequential_sweep_is_cyclic() {
        let mut r = rng();
        let s = RefStringCfg::SequentialSweep { pages: 3 }.generate_pages(9, &mut r);
        assert_eq!(
            s.iter().map(|p| p.0).collect::<Vec<_>>(),
            vec![0, 1, 2, 0, 1, 2, 0, 1, 2]
        );
    }

    #[test]
    fn lru_stack_locality_increases_with_theta() {
        // Stronger theta ⇒ fewer distinct pages in a fixed window.
        let mut r1 = Rng64::new(11);
        let mut r2 = Rng64::new(11);
        let weak = RefStringCfg::LruStack {
            pages: 200,
            theta: 0.5,
        }
        .generate_pages(2000, &mut r1);
        let strong = RefStringCfg::LruStack {
            pages: 200,
            theta: 2.0,
        }
        .generate_pages(2000, &mut r2);
        assert!(
            distinct_pages(&strong) < distinct_pages(&weak),
            "strong {} !< weak {}",
            distinct_pages(&strong),
            distinct_pages(&weak)
        );
    }

    #[test]
    fn working_set_phases_bound_distinct_pages_per_phase() {
        let mut r = rng();
        let cfg = RefStringCfg::WorkingSetPhases {
            pages: 50,
            set: 4,
            phase_len: 100,
        };
        let s = cfg.generate_pages(100, &mut r);
        assert!(distinct_pages(&s) <= 4);
    }

    #[test]
    fn loop_nest_inner_pages_recur_every_iteration() {
        let mut r = rng();
        let cfg = RefStringCfg::LoopNest {
            inner: 2,
            outer: 4,
            period: 4,
        };
        let s = cfg.generate_pages(60, &mut r);
        // Page 0 must appear with gap <= inner + outer/period + 1.
        let idx: Vec<usize> = s
            .iter()
            .enumerate()
            .filter(|(_, p)| p.0 == 0)
            .map(|(i, _)| i)
            .collect();
        assert!(idx.len() > 10);
        for w in idx.windows(2) {
            assert!(w[1] - w[0] <= 4, "gap {} too large", w[1] - w[0]);
        }
        // Outer pages appear with period-proportional gaps.
        let idx2: Vec<usize> = s
            .iter()
            .enumerate()
            .filter(|(_, p)| p.0 == 2)
            .map(|(i, _)| i)
            .collect();
        for w in idx2.windows(2) {
            assert!(
                w[1] - w[0] >= 8,
                "outer page recurred too fast: gap {}",
                w[1] - w[0]
            );
        }
    }

    #[test]
    fn determinism_given_seed() {
        let cfg = RefStringCfg::LruStack {
            pages: 30,
            theta: 1.0,
        };
        let a = cfg.generate(500, 0.3, &mut Rng64::new(99));
        let b = cfg.generate(500, 0.3, &mut Rng64::new(99));
        assert_eq!(a, b);
    }
}

#[cfg(test)]
mod hot_cold_tests {
    use super::*;
    use crate::rng::Rng64;

    #[test]
    fn hot_pages_dominate() {
        let cfg = RefStringCfg::HotCold {
            hot: 4,
            cold: 60,
            p_hot: 0.9,
        };
        let s = cfg.generate_pages(20_000, &mut Rng64::new(1));
        let hot_refs = s.iter().filter(|p| p.0 < 4).count();
        let frac = hot_refs as f64 / s.len() as f64;
        assert!((frac - 0.9).abs() < 0.02, "hot fraction {frac}");
        assert!(s.iter().all(|p| p.0 < 64));
    }

    #[test]
    fn universe_and_length() {
        let cfg = RefStringCfg::HotCold {
            hot: 3,
            cold: 5,
            p_hot: 0.5,
        };
        assert_eq!(cfg.page_universe(), 8);
        assert_eq!(cfg.generate_pages(777, &mut Rng64::new(2)).len(), 777);
    }
}
