//! Streaming workload generation: seedable, resumable, constant-memory
//! iterators over references and allocation events.
//!
//! The materializing generators ([`RefStringCfg::generate`],
//! [`AllocStreamCfg::generate`]) cap experiment scale at whatever `Vec`
//! fits in memory. Every model's internal state, however, is bounded by
//! the *page universe* (or the live-block population), not by the trace
//! length — so the same sequences can be produced one reference at a
//! time in constant memory. This module does exactly that, under an
//! **exact-replay contract**:
//!
//! 1. **Prefix equality.** For every configuration, seed and length,
//!    `cfg.stream(wf, seed).take(len)` yields byte-for-byte the sequence
//!    `cfg.generate(len, wf, &mut Rng64::new(seed))` materializes. The
//!    legacy generators are untouched (golden outputs cannot drift); the
//!    property tests in `tests/properties_trace_stream.rs` pin the two
//!    paths together across every [`RefStringCfg`] regime.
//! 2. **Checkpoint/resume.** Streams are `Clone`: a clone is an O(state)
//!    checkpoint, and continuing the original and the clone produces
//!    identical suffixes. [`RefStringCfg::stream_at`] /
//!    [`AllocStreamCfg::stream_at`] reconstruct the same point from
//!    `(seed, position)` alone by fast-forwarding — O(position) time,
//!    O(state) memory — so a resumed run needs no serialized state.
//! 3. **Constant memory.** Per-item work never allocates proportionally
//!    to the position; state is O(page universe) for reference strings
//!    and O(live blocks) for allocation streams.
//!
//! Streams are *infinite* (`next()` never returns `None` for reference
//! models; allocation streams likewise run forever): length is the
//! caller's cut, exactly as `len` was an argument to `generate`.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use dsa_core::access::{Access, AccessKind, AllocEvent, AllocRequest};
use dsa_core::ids::{PageNo, Words};

use crate::allocstream::AllocStreamCfg;
use crate::refstring::RefStringCfg;
use crate::rng::Rng64;

/// A resumable reference-string iterator.
///
/// See the module docs for the exact-replay contract. `position()` is
/// the number of references already yielded; together with the
/// construction seed it identifies the stream's exact point.
pub trait RefStream: Iterator<Item = Access> + Clone {
    /// References yielded so far.
    fn position(&self) -> u64;
}

/// A resumable allocation-event iterator (same contract as
/// [`RefStream`], for [`AllocEvent`] streams).
pub trait AllocStream: Iterator<Item = AllocEvent> + Clone {
    /// Events yielded so far.
    fn position(&self) -> u64;
}

/// Per-regime generator state. Each variant holds exactly the state the
/// corresponding arm of [`RefStringCfg::generate`] carries across loop
/// iterations, so the draw order (and hence the output) is identical.
#[derive(Clone, Debug)]
enum Regime {
    Uniform {
        pages: u64,
    },
    LruStack {
        pages: u64,
        theta: f64,
        /// The LRU stack, most recent first — shuffled once at
        /// construction, exactly as `generate` shuffles before its loop.
        stack: Vec<u64>,
    },
    WorkingSetPhases {
        set: u64,
        phase_len: u64,
        all: Vec<u64>,
        current: Vec<u64>,
        remaining: u64,
    },
    SequentialSweep {
        pages: u64,
    },
    LoopNest {
        inner: u64,
        outer: u64,
        period: u64,
        /// Iteration counter (the legacy `iter`).
        iter: u64,
        /// Cursor within the iteration: `p < inner` walks the inner
        /// pages, `inner + q` (q < outer) walks the outer candidates.
        cursor: u64,
    },
    HotCold {
        hot: u64,
        cold: u64,
        p_hot: f64,
    },
}

/// A seedable, resumable, constant-memory reference-string stream.
///
/// # Examples
///
/// ```
/// use dsa_trace::refstring::RefStringCfg;
/// use dsa_trace::rng::Rng64;
/// use dsa_trace::stream::RefStream;
///
/// let cfg = RefStringCfg::LruStack { pages: 16, theta: 1.0 };
/// let streamed: Vec<_> = cfg.stream(0.3, 42).take(100).collect();
/// let materialized = cfg.generate(100, 0.3, &mut Rng64::new(42));
/// assert_eq!(streamed, materialized);
///
/// // Checkpoint at 60, resume from (seed, position) alone.
/// let resumed: Vec<_> = cfg.stream_at(0.3, 42, 60).take(40).collect();
/// assert_eq!(resumed, materialized[60..]);
/// ```
#[derive(Clone, Debug)]
pub struct RefStringStream {
    regime: Regime,
    write_fraction: f64,
    rng: Rng64,
    pos: u64,
}

impl RefStringCfg {
    /// A streaming equivalent of [`RefStringCfg::generate`], seeded by
    /// `seed` (the stream draws from `Rng64::new(seed)` in exactly the
    /// order `generate` would).
    ///
    /// # Panics
    ///
    /// Panics if the configuration has an empty page universe.
    #[must_use]
    pub fn stream(&self, write_fraction: f64, seed: u64) -> RefStringStream {
        self.stream_with_rng(write_fraction, Rng64::new(seed))
    }

    /// [`RefStringCfg::stream`] over a caller-positioned generator, for
    /// composing with other draws from the same seed.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has an empty page universe.
    #[must_use]
    pub fn stream_with_rng(&self, write_fraction: f64, mut rng: Rng64) -> RefStringStream {
        assert!(self.page_universe() > 0, "empty page universe");
        let regime = match *self {
            RefStringCfg::Uniform { pages } => Regime::Uniform { pages },
            RefStringCfg::LruStack { pages, theta } => {
                let mut stack: Vec<u64> = (0..pages).collect();
                rng.shuffle(&mut stack);
                Regime::LruStack {
                    pages,
                    theta,
                    stack,
                }
            }
            RefStringCfg::WorkingSetPhases {
                pages,
                set,
                phase_len,
            } => Regime::WorkingSetPhases {
                set: set.min(pages).max(1),
                phase_len,
                all: (0..pages).collect(),
                current: Vec::new(),
                remaining: 0,
            },
            RefStringCfg::SequentialSweep { pages } => Regime::SequentialSweep { pages },
            RefStringCfg::LoopNest {
                inner,
                outer,
                period,
            } => Regime::LoopNest {
                inner,
                outer,
                period: period.max(1),
                iter: 0,
                cursor: 0,
            },
            RefStringCfg::HotCold { hot, cold, p_hot } => Regime::HotCold { hot, cold, p_hot },
        };
        RefStringStream {
            regime,
            write_fraction,
            rng,
            pos: 0,
        }
    }

    /// The stream fast-forwarded to `position`: yields the suffix a
    /// fresh stream would produce after `position` references. O(state)
    /// memory, O(position) time — resume-from-seed needs no serialized
    /// checkpoint (clone the stream instead when O(1) resume matters).
    ///
    /// # Panics
    ///
    /// Panics if the configuration has an empty page universe.
    #[must_use]
    pub fn stream_at(&self, write_fraction: f64, seed: u64, position: u64) -> RefStringStream {
        let mut s = self.stream(write_fraction, seed);
        s.advance_by_draining(position);
        s
    }
}

impl RefStringStream {
    /// Drops `n` references (cheaper than `nth` only in intent: every
    /// draw must still happen for replay exactness).
    fn advance_by_draining(&mut self, n: u64) {
        for _ in 0..n {
            let _ = self.next();
        }
    }

    /// Projects the stream to bare page numbers (the shape the paging
    /// machines and the stack-distance engines consume).
    pub fn pages(self) -> impl Iterator<Item = PageNo> + Clone {
        self.map(|a| PageNo(a.name.value()))
    }

    fn emit(&mut self, page: u64) -> Access {
        let kind = if self.rng.chance(self.write_fraction) {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        self.pos += 1;
        Access {
            name: dsa_core::ids::Name(page),
            kind,
        }
    }
}

impl Iterator for RefStringStream {
    type Item = Access;

    fn next(&mut self) -> Option<Access> {
        // Select the page exactly as the corresponding `generate` arm
        // does, *then* roll the write fraction (the draw order is part
        // of the replay contract).
        let page = match self.regime {
            Regime::Uniform { pages } => self.rng.below(pages),
            Regime::LruStack {
                pages,
                theta,
                ref mut stack,
            } => {
                let depth = self.rng.zipf(pages, theta) as usize;
                let page = stack.remove(depth);
                stack.insert(0, page);
                page
            }
            Regime::WorkingSetPhases {
                set,
                phase_len,
                ref mut all,
                ref mut current,
                ref mut remaining,
            } => {
                if *remaining == 0 {
                    self.rng.shuffle(all);
                    *current = all[..set as usize].to_vec();
                    *remaining = phase_len.max(1);
                }
                *remaining -= 1;
                *self.rng.pick(current)
            }
            Regime::SequentialSweep { pages } => self.pos % pages,
            Regime::LoopNest {
                inner,
                outer,
                period,
                ref mut iter,
                ref mut cursor,
            } => loop {
                // `cursor < inner`: the inner pages, touched every
                // iteration. `inner <= cursor < inner + outer`: the
                // staggered outer candidates, of which only those with
                // q % period == iter % period fire.
                if *cursor < inner {
                    let p = *cursor;
                    *cursor += 1;
                    break p;
                }
                if *cursor < inner + outer {
                    let q = *cursor - inner;
                    *cursor += 1;
                    if q % period == *iter % period {
                        break inner + q;
                    }
                } else {
                    *iter += 1;
                    *cursor = 0;
                }
            },
            Regime::HotCold { hot, cold, p_hot } => {
                if self.rng.chance(p_hot) {
                    self.rng.below(hot)
                } else {
                    hot + self.rng.below(cold.max(1))
                }
            }
        };
        Some(self.emit(page))
    }
}

impl RefStream for RefStringStream {
    fn position(&self) -> u64 {
        self.pos
    }
}

/// A seedable, resumable allocation/free event stream; memory is
/// bounded by the live-block population the target load factor allows,
/// independent of how many events have been drawn.
///
/// # Examples
///
/// ```
/// use dsa_trace::allocstream::{AllocStreamCfg, SizeDist};
/// use dsa_trace::rng::Rng64;
///
/// let cfg = AllocStreamCfg {
///     sizes: SizeDist::Uniform { lo: 10, hi: 100 },
///     mean_lifetime: 40.0,
///     target_live_words: 5_000,
/// };
/// let streamed: Vec<_> = cfg.stream(7).take(500).collect();
/// assert_eq!(streamed, cfg.generate(500, &mut Rng64::new(7)));
/// ```
#[derive(Clone, Debug)]
pub struct AllocEventStream {
    cfg: AllocStreamCfg,
    /// Min-heap of `(expiry, id, size)` over live blocks — the same
    /// structure `generate` carries across its loop.
    live: BinaryHeap<Reverse<(u64, u64, Words)>>,
    live_words: Words,
    next_id: u64,
    t: u64,
    pos: u64,
    rng: Rng64,
}

impl AllocStreamCfg {
    /// A streaming equivalent of [`AllocStreamCfg::generate`]: the
    /// prefix-equality, checkpoint/resume and constant-memory contract
    /// of [`crate::stream`] applies.
    #[must_use]
    pub fn stream(&self, seed: u64) -> AllocEventStream {
        self.stream_with_rng(Rng64::new(seed))
    }

    /// [`AllocStreamCfg::stream`] over a caller-positioned generator.
    #[must_use]
    pub fn stream_with_rng(&self, rng: Rng64) -> AllocEventStream {
        AllocEventStream {
            cfg: self.clone(),
            live: BinaryHeap::new(),
            live_words: 0,
            next_id: 0,
            t: 0,
            pos: 0,
            rng,
        }
    }

    /// The stream fast-forwarded to `position` (see
    /// [`RefStringCfg::stream_at`]).
    #[must_use]
    pub fn stream_at(&self, seed: u64, position: u64) -> AllocEventStream {
        let mut s = self.stream(seed);
        for _ in 0..position {
            let _ = s.next();
        }
        s
    }
}

impl Iterator for AllocEventStream {
    type Item = AllocEvent;

    fn next(&mut self) -> Option<AllocEvent> {
        let e = if self.live_words < self.cfg.target_live_words {
            let size = self.cfg.sizes.sample(&mut self.rng);
            let lifetime = self.rng.exponential(self.cfg.mean_lifetime) as u64;
            let id = self.next_id;
            self.next_id += 1;
            self.live
                .push(Reverse((self.t + lifetime.max(1), id, size)));
            self.live_words += size;
            AllocEvent::Alloc(AllocRequest { id, size })
        } else {
            // Invariant: live_words >= target > 0 here, so at least one
            // live block exists to retire (as in `generate`).
            #[allow(clippy::expect_used)]
            let Reverse((_, id, size)) = self.live.pop().expect("target > 0 implies live blocks");
            self.live_words -= size;
            AllocEvent::Free { id }
        };
        self.t += 1;
        self.pos += 1;
        Some(e)
    }
}

impl AllocStream for AllocEventStream {
    fn position(&self) -> u64 {
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocstream::SizeDist;

    fn cfgs() -> Vec<RefStringCfg> {
        vec![
            RefStringCfg::Uniform { pages: 10 },
            RefStringCfg::LruStack {
                pages: 12,
                theta: 1.1,
            },
            RefStringCfg::WorkingSetPhases {
                pages: 20,
                set: 5,
                phase_len: 7,
            },
            RefStringCfg::SequentialSweep { pages: 4 },
            RefStringCfg::LoopNest {
                inner: 3,
                outer: 6,
                period: 3,
            },
            RefStringCfg::HotCold {
                hot: 3,
                cold: 17,
                p_hot: 0.8,
            },
        ]
    }

    #[test]
    fn stream_prefix_equals_generate() {
        for cfg in cfgs() {
            let materialized = cfg.generate(400, 0.3, &mut Rng64::new(99));
            let streamed: Vec<Access> = cfg.stream(0.3, 99).take(400).collect();
            assert_eq!(streamed, materialized, "{cfg:?}");
        }
    }

    #[test]
    fn clone_checkpoint_resumes_identically() {
        for cfg in cfgs() {
            let mut s = cfg.stream(0.2, 5);
            let head: Vec<Access> = s.by_ref().take(123).collect();
            assert_eq!(s.position(), 123);
            let checkpoint = s.clone();
            let a: Vec<Access> = s.take(77).collect();
            let b: Vec<Access> = checkpoint.take(77).collect();
            assert_eq!(a, b, "{cfg:?}");
            assert_eq!(head.len(), 123);
        }
    }

    #[test]
    fn stream_at_fast_forwards_exactly() {
        for cfg in cfgs() {
            let full: Vec<Access> = cfg.stream(0.4, 11).take(300).collect();
            let tail: Vec<Access> = cfg.stream_at(0.4, 11, 120).take(180).collect();
            assert_eq!(tail, full[120..], "{cfg:?}");
        }
    }

    #[test]
    fn pages_projection_matches_generate_pages() {
        for cfg in cfgs() {
            let materialized = cfg.generate_pages(200, &mut Rng64::new(3));
            let streamed: Vec<PageNo> = cfg.stream(0.0, 3).pages().take(200).collect();
            assert_eq!(streamed, materialized, "{cfg:?}");
        }
    }

    #[test]
    fn alloc_stream_matches_generate_and_resumes() {
        let cfg = AllocStreamCfg {
            sizes: SizeDist::Exponential {
                mean: 30.0,
                cap: 200,
            },
            mean_lifetime: 50.0,
            target_live_words: 3_000,
        };
        let materialized = cfg.generate(800, &mut Rng64::new(21));
        let streamed: Vec<AllocEvent> = cfg.stream(21).take(800).collect();
        assert_eq!(streamed, materialized);
        let tail: Vec<AllocEvent> = cfg.stream_at(21, 500).take(300).collect();
        assert_eq!(tail, materialized[500..]);
    }

    #[test]
    fn alloc_stream_state_is_bounded_by_live_population() {
        let cfg = AllocStreamCfg {
            sizes: SizeDist::Fixed { size: 10 },
            mean_lifetime: 25.0,
            target_live_words: 1_000,
        };
        let mut s = cfg.stream(1);
        for _ in 0..50_000 {
            let _ = s.next();
        }
        // At most target/size + 1 blocks can ever be live.
        assert!(s.live.len() <= 101, "heap grew to {}", s.live.len());
        assert_eq!(s.position(), 50_000);
    }
}
