//! A small deterministic PRNG.
//!
//! Experiments must be exactly reproducible from a printed seed, across
//! crate versions and platforms, so we carry our own generator rather
//! than depending on an external crate's stream stability. The generator
//! is xoshiro256++ (Blackman & Vigna), seeded through SplitMix64 — the
//! standard recipe — plus the handful of distributions the workload
//! models need.

/// Deterministic xoshiro256++ generator with distribution helpers.
///
/// # Examples
///
/// ```
/// use dsa_trace::rng::Rng64;
///
/// let mut a = Rng64::new(42);
/// let mut b = Rng64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Clone, Debug)]
pub struct Rng64 {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng64 {
    /// Creates a generator from a seed. Any seed (including 0) is valid.
    #[must_use]
    pub fn new(seed: u64) -> Rng64 {
        let mut sm = seed;
        Rng64 {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, n)`. Uses Lemire's unbiased method.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Lemire's multiply-shift rejection method.
        loop {
            let x = self.next_u64();
            let m = u128::from(x) * u128::from(n);
            let low = m as u64;
            if low >= n.wrapping_neg() % n {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform value in `[lo, hi]` inclusive.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        lo + self.below(hi - lo + 1)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0,1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Exponentially distributed value with the given mean (> 0),
    /// truncated to at least `1.0`.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u = 1.0 - self.f64(); // in (0, 1]
        (-u.ln() * mean).max(1.0)
    }

    /// Geometric number of trials until first success (>= 1) with
    /// success probability `p` in `(0, 1]`.
    pub fn geometric(&mut self, p: f64) -> u64 {
        if p >= 1.0 {
            return 1;
        }
        let u = 1.0 - self.f64(); // in (0, 1]
        (u.ln() / (1.0 - p).ln()).ceil().max(1.0) as u64
    }

    /// Zipf-distributed rank in `[0, n)` with exponent `theta` (> 0).
    ///
    /// Uses the rejection-inversion sampler of Hörmann & Derflinger; for
    /// the modest `n` of our workloads a simple inverse-CDF over a
    /// precomputed table would also do, but this keeps the generator
    /// allocation-free.
    pub fn zipf(&mut self, n: u64, theta: f64) -> u64 {
        debug_assert!(n > 0 && theta > 0.0);
        // Inverse-CDF by bisection over the harmonic CDF approximation:
        // cheap, deterministic, and accurate enough for workload shaping.
        let h = |x: f64| -> f64 {
            if (theta - 1.0).abs() < 1e-9 {
                x.ln()
            } else {
                (x.powf(1.0 - theta) - 1.0) / (1.0 - theta)
            }
        };
        let total = h(n as f64 + 0.5) - h(0.5);
        let target = self.f64() * total;
        let (mut lo, mut hi) = (0.5f64, n as f64 + 0.5);
        for _ in 0..64 {
            let mid = 0.5 * (lo + hi);
            if h(mid) - h(0.5) < target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        (lo.round() as u64).clamp(1, n) - 1
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        assert!(!xs.is_empty(), "pick from empty slice");
        &xs[self.below(xs.len() as u64) as usize]
    }

    /// Derives an independent generator (for splitting one seed into
    /// several deterministic streams).
    pub fn fork(&mut self) -> Rng64 {
        Rng64::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Rng64::new(7);
        let mut b = Rng64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng64::new(8);
        assert_ne!(Rng64::new(7).next_u64(), c.next_u64());
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = Rng64::new(1);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = r.below(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = Rng64::new(2);
        let n = 10u64;
        let trials = 100_000;
        let mut counts = vec![0u64; n as usize];
        for _ in 0..trials {
            counts[r.below(n) as usize] += 1;
        }
        let expect = trials as f64 / n as f64;
        for &c in &counts {
            assert!(
                (c as f64 - expect).abs() < expect * 0.1,
                "bucket count {c} deviates from {expect}"
            );
        }
    }

    #[test]
    fn range_inclusive() {
        let mut r = Rng64::new(3);
        for _ in 0..1000 {
            let v = r.range(5, 9);
            assert!((5..=9).contains(&v));
        }
        assert_eq!(r.range(4, 4), 4);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng64::new(4);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn exponential_mean() {
        let mut r = Rng64::new(5);
        let mean = 50.0;
        let n = 50_000;
        let total: f64 = (0..n).map(|_| r.exponential(mean)).sum();
        let got = total / n as f64;
        assert!((got - mean).abs() < mean * 0.05, "mean {got}");
    }

    #[test]
    fn geometric_mean() {
        let mut r = Rng64::new(6);
        let p = 0.25;
        let n = 50_000;
        let total: u64 = (0..n).map(|_| r.geometric(p)).sum();
        let got = total as f64 / n as f64;
        assert!((got - 4.0).abs() < 0.2, "mean {got}");
        assert_eq!(r.geometric(1.0), 1);
    }

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let mut r = Rng64::new(7);
        let n = 100u64;
        let mut counts = vec![0u64; n as usize];
        for _ in 0..100_000 {
            let v = r.zipf(n, 1.0);
            assert!(v < n);
            counts[v as usize] += 1;
        }
        // Rank 0 must dominate rank 9 roughly 10:1 under theta=1.
        let ratio = counts[0] as f64 / counts[9].max(1) as f64;
        assert!(ratio > 5.0 && ratio < 20.0, "zipf ratio {ratio}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng64::new(8);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut r = Rng64::new(9);
        let mut f1 = r.fork();
        let mut f2 = r.fork();
        assert_ne!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng64::new(10);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }
}
