//! Size-class geometry, shared by every allocator that segregates by
//! size.
//!
//! Three allocators in this workspace round requests into size classes:
//! the segregated-fit simulator (`dsa-freelist`'s `SegregatedAllocator`),
//! the first-fit hole bins behind the freelist's host-speed index, and
//! the real slab heap (`dsa-alloc`). Before this module each carried its
//! own copy of the class math; now the geometry lives here, once, and
//! the parity property tests exercise a single definition.
//!
//! Three geometries are provided:
//!
//! * [`log2_class`] — `floor(log2(size))`: the coarse bin used to
//!   *index holes* (a hole of size `s` lands in bin `log2(s)`, so every
//!   hole in bin `c+1` and above satisfies any request in bin `c`);
//! * [`power_of_two_classes`] — the doubling ladder the segregated-fit
//!   simulator rounds requests into;
//! * [`SizeClasses`] — a jemalloc-style ladder with four classes per
//!   doubling, the spacing a production heap uses to cap internal
//!   fragmentation at ~20% while keeping the class count small.

use crate::ids::Words;

/// The segregated *bin* of a block: `floor(log2(size))`.
///
/// This is the indexing geometry, not a rounding geometry: a hole is
/// filed under the power-of-two range it falls in, so a search for
/// `size` words must inspect bin `log2_class(size)` (whose holes may be
/// smaller than the request) and may take the first hole from any
/// higher bin.
///
/// # Panics
///
/// Debug-asserts that `size` is positive (a zero-sized hole cannot
/// exist).
#[must_use]
pub fn log2_class(size: Words) -> usize {
    debug_assert!(size > 0);
    size.ilog2() as usize
}

/// The doubling ladder `min, 2·min, 4·min, …` up to and including the
/// first class `>= max` — the rounding geometry of the segregated-fit
/// discipline.
///
/// `min` is clamped to at least 1. The returned classes are strictly
/// ascending and non-empty.
#[must_use]
pub fn power_of_two_classes(min: Words, max: Words) -> Vec<Words> {
    let mut classes = Vec::new();
    let mut c = min.max(1);
    while c < max {
        classes.push(c);
        c *= 2;
    }
    classes.push(c);
    classes
}

/// How many size classes subdivide each power-of-two doubling in the
/// jemalloc-style ladder, once sizes are large enough to subdivide.
pub const CLASSES_PER_DOUBLING: Words = 4;

/// A jemalloc-style size-class ladder: quantum-spaced classes up to
/// `8 × quantum`, then [`CLASSES_PER_DOUBLING`] classes per doubling.
///
/// For the default heap geometry (`quantum = 8`, `max = 2048`) the
/// ladder is
///
/// ```text
/// 8 16 24 32 40 48 56 64            (quantum spacing)
/// 80 96 112 128                     (4 per doubling)
/// 160 192 224 256
/// 320 384 448 512
/// 640 768 896 1024
/// 1280 1536 1792 2048
/// ```
///
/// — 28 classes, worst-case internal fragmentation just under 25% and
/// typically ~12%. Lookup is O(1) via a quantum-granular table.
///
/// # Examples
///
/// ```
/// use dsa_core::sizeclass::SizeClasses;
///
/// let ladder = SizeClasses::jemalloc(8, 2048);
/// assert_eq!(ladder.count(), 28);
/// let c = ladder.class_of(100).unwrap();
/// assert_eq!(ladder.size_of(c), 112);
/// assert_eq!(ladder.class_of(2049), None);
/// ```
#[derive(Clone, Debug)]
pub struct SizeClasses {
    /// Class sizes, strictly ascending; all multiples of the quantum.
    classes: Vec<Words>,
    /// `lut[(size + quantum - 1) / quantum]` = class index of `size`.
    /// Entry 0 (size 0) aliases the smallest class.
    lut: Vec<u8>,
    quantum: Words,
    max: Words,
}

impl SizeClasses {
    /// Builds the ladder from `quantum` (smallest class and spacing
    /// grain) up to and including `max`.
    ///
    /// # Panics
    ///
    /// Panics if `quantum` is not a positive power of two, if `max` is
    /// not a multiple of `quantum` at least `8 × quantum`, or if the
    /// ladder would exceed 256 classes (the lookup table holds `u8`
    /// indices).
    #[must_use]
    pub fn jemalloc(quantum: Words, max: Words) -> SizeClasses {
        assert!(
            quantum > 0 && quantum.is_power_of_two(),
            "quantum must be a positive power of two"
        );
        assert!(
            max >= 8 * quantum && max % quantum == 0 && max.is_power_of_two(),
            "max must be a power-of-two multiple of the quantum, at least 8x"
        );
        let mut classes = Vec::new();
        // Quantum spacing up to 8 * quantum...
        let mut c = quantum;
        while c <= (8 * quantum).min(max) {
            classes.push(c);
            c += quantum;
        }
        // ...then CLASSES_PER_DOUBLING classes per doubling.
        let mut base = 8 * quantum;
        while base < max {
            let step = base / CLASSES_PER_DOUBLING;
            for k in 1..=CLASSES_PER_DOUBLING {
                let size = base + k * step;
                if size <= max {
                    classes.push(size);
                }
            }
            base *= 2;
        }
        assert!(classes.len() <= 256, "ladder too tall for a u8 table");
        // The quantum-granular lookup table: class of the i-th quantum.
        let slots = (max / quantum) as usize + 1;
        let mut lut = vec![0u8; slots];
        let mut class = 0usize;
        for (i, slot) in lut.iter_mut().enumerate().skip(1) {
            let size = i as Words * quantum;
            while classes[class] < size {
                class += 1;
            }
            #[allow(clippy::cast_possible_truncation)] // <= 256 classes
            {
                *slot = class as u8;
            }
        }
        SizeClasses {
            classes,
            lut,
            quantum,
            max,
        }
    }

    /// Number of classes in the ladder.
    #[must_use]
    pub fn count(&self) -> usize {
        self.classes.len()
    }

    /// The largest size the ladder covers.
    #[must_use]
    pub fn max(&self) -> Words {
        self.max
    }

    /// The spacing grain (and smallest class).
    #[must_use]
    pub fn quantum(&self) -> Words {
        self.quantum
    }

    /// The class sizes, strictly ascending.
    #[must_use]
    pub fn classes(&self) -> &[Words] {
        &self.classes
    }

    /// The rounded size of class `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    #[must_use]
    pub fn size_of(&self, c: usize) -> Words {
        self.classes[c]
    }

    /// The smallest class holding `size`, or `None` past the ladder.
    /// O(1): one table read. A zero-size request maps to the smallest
    /// class.
    #[must_use]
    pub fn class_of(&self, size: Words) -> Option<usize> {
        if size > self.max {
            return None;
        }
        let slot = size.div_ceil(self.quantum) as usize;
        Some(self.lut[slot] as usize)
    }

    /// The smallest *power-of-two* class holding both `size` and an
    /// alignment of `align`, or `None` past the ladder. Power-of-two
    /// classes are naturally aligned inside a page-aligned slab, which
    /// is how the real heap serves over-aligned small requests.
    #[must_use]
    pub fn aligned_class_of(&self, size: Words, align: Words) -> Option<usize> {
        let need = size.max(align).max(1).next_power_of_two();
        if need > self.max {
            return None;
        }
        self.class_of(need)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_class_is_floor_log2() {
        assert_eq!(log2_class(1), 0);
        assert_eq!(log2_class(2), 1);
        assert_eq!(log2_class(3), 1);
        assert_eq!(log2_class(4), 2);
        assert_eq!(log2_class(1023), 9);
        assert_eq!(log2_class(1024), 10);
    }

    #[test]
    fn power_of_two_ladder_doubles_to_max() {
        assert_eq!(
            power_of_two_classes(8, 512),
            vec![8, 16, 32, 64, 128, 256, 512]
        );
        assert_eq!(power_of_two_classes(0, 4), vec![1, 2, 4]);
        assert_eq!(power_of_two_classes(16, 16), vec![16]);
        // max not on the ladder: first class >= max terminates it.
        assert_eq!(power_of_two_classes(8, 100), vec![8, 16, 32, 64, 128]);
    }

    #[test]
    fn jemalloc_ladder_default_geometry() {
        let l = SizeClasses::jemalloc(8, 2048);
        assert_eq!(
            l.classes(),
            &[
                8, 16, 24, 32, 40, 48, 56, 64, 80, 96, 112, 128, 160, 192, 224, 256, 320, 384, 448,
                512, 640, 768, 896, 1024, 1280, 1536, 1792, 2048
            ]
        );
        assert_eq!(l.count(), 28);
    }

    #[test]
    fn class_of_rounds_up_to_the_smallest_adequate_class() {
        let l = SizeClasses::jemalloc(8, 2048);
        for size in 1..=2048u64 {
            let c = l.class_of(size).unwrap();
            assert!(l.size_of(c) >= size, "class too small for {size}");
            if c > 0 {
                assert!(l.size_of(c - 1) < size, "class not minimal for {size}");
            }
        }
        assert_eq!(l.class_of(2049), None);
        assert_eq!(l.class_of(0), Some(0));
    }

    #[test]
    fn internal_fragmentation_is_bounded() {
        let l = SizeClasses::jemalloc(8, 2048);
        for size in 65..=2048u64 {
            let rounded = l.size_of(l.class_of(size).unwrap());
            // Above the quantum-spaced run the spacing is base/4, so
            // waste < 25% of the request.
            assert!(
                (rounded - size) * 4 < rounded,
                "waste too high at {size}: rounded {rounded}"
            );
        }
    }

    #[test]
    fn aligned_class_is_a_power_of_two_covering_both() {
        let l = SizeClasses::jemalloc(8, 2048);
        let c = l.aligned_class_of(24, 16).unwrap();
        assert_eq!(l.size_of(c), 32);
        let c = l.aligned_class_of(100, 256).unwrap();
        assert_eq!(l.size_of(c), 256);
        assert_eq!(l.aligned_class_of(1, 4096), None);
        let c = l.aligned_class_of(0, 1).unwrap();
        assert_eq!(l.size_of(c), 8);
    }

    #[test]
    fn quantum_16_ladder_holds_its_invariants() {
        let l = SizeClasses::jemalloc(16, 4096);
        assert!(l.classes().windows(2).all(|w| w[0] < w[1]));
        assert_eq!(l.classes()[0], 16);
        assert_eq!(*l.classes().last().unwrap(), 4096);
        for size in (16..=4096u64).step_by(16) {
            let c = l.class_of(size).unwrap();
            assert!(l.size_of(c) >= size);
        }
    }
}
