//! Predictive-information directives.
//!
//! Several systems in the paper accept advisory directives about future
//! storage use:
//!
//! * the IBM M44/44X has two special instructions — one indicating a page
//!   "will shortly be needed", the other that it "will not be needed for
//!   some time" (Appendix A.2);
//! * MULTICS lets a programmer specify that information be kept
//!   permanently in working storage, be brought in soon if possible, or
//!   be removed because it will not be accessed again (Appendix A.6);
//! * Project ACSI-MATIC attached whole "program descriptions" specifying
//!   media residence and overlay permissions per segment.
//!
//! The directives are *essentially advisory*: "the consequences of
//! predictions will be related to the overall situation as regards
//! storage utilization". Our simulators treat them exactly that way —
//! advice steers prefetch and victim selection but never overrides
//! correctness, and experiment E8 measures what good and bad advice are
//! worth.

use core::fmt;

use crate::ids::{PageNo, SegId};

/// The unit an advisory directive refers to.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AdviceUnit {
    /// A page of the program's name space.
    Page(PageNo),
    /// A whole segment.
    Segment(SegId),
}

impl fmt::Display for AdviceUnit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdviceUnit::Page(p) => write!(f, "{p}"),
            AdviceUnit::Segment(s) => write!(f, "{s}"),
        }
    }
}

/// An advisory directive about future use of storage.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Advice {
    /// The unit will shortly be needed; bring it to working storage if
    /// possible (M44 instruction 1, MULTICS (ii)).
    WillNeed(AdviceUnit),
    /// The unit will not be needed for some time; it is a good
    /// replacement candidate (M44 instruction 2).
    WontNeed(AdviceUnit),
    /// Keep the unit permanently in working storage (MULTICS (i)).
    /// A later [`Advice::Unpin`] cancels it.
    Pin(AdviceUnit),
    /// Cancel a previous [`Advice::Pin`].
    Unpin(AdviceUnit),
    /// The unit will not be accessed again and may be removed from
    /// working storage immediately (MULTICS (iii)).
    Release(AdviceUnit),
}

impl Advice {
    /// The unit the directive refers to.
    #[must_use]
    pub fn unit(&self) -> AdviceUnit {
        match *self {
            Advice::WillNeed(u)
            | Advice::WontNeed(u)
            | Advice::Pin(u)
            | Advice::Unpin(u)
            | Advice::Release(u) => u,
        }
    }

    /// True if the directive asks for the unit to be (kept) resident.
    #[must_use]
    pub fn wants_resident(&self) -> bool {
        matches!(self, Advice::WillNeed(_) | Advice::Pin(_))
    }
}

impl fmt::Display for Advice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Advice::WillNeed(u) => write!(f, "will-need {u}"),
            Advice::WontNeed(u) => write!(f, "wont-need {u}"),
            Advice::Pin(u) => write!(f, "pin {u}"),
            Advice::Unpin(u) => write!(f, "unpin {u}"),
            Advice::Release(u) => write!(f, "release {u}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_extraction() {
        let u = AdviceUnit::Page(PageNo(7));
        for a in [
            Advice::WillNeed(u),
            Advice::WontNeed(u),
            Advice::Pin(u),
            Advice::Unpin(u),
            Advice::Release(u),
        ] {
            assert_eq!(a.unit(), u);
        }
    }

    #[test]
    fn residency_intent() {
        let u = AdviceUnit::Segment(SegId(2));
        assert!(Advice::WillNeed(u).wants_resident());
        assert!(Advice::Pin(u).wants_resident());
        assert!(!Advice::WontNeed(u).wants_resident());
        assert!(!Advice::Release(u).wants_resident());
        assert!(!Advice::Unpin(u).wants_resident());
    }

    #[test]
    fn display() {
        assert_eq!(
            Advice::WillNeed(AdviceUnit::Page(PageNo(3))).to_string(),
            "will-need p3"
        );
        assert_eq!(
            Advice::Release(AdviceUnit::Segment(SegId(1))).to_string(),
            "release s1"
        );
    }
}
