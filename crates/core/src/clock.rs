//! Simulated time.
//!
//! Two notions of time are used throughout the workspace:
//!
//! * [`Cycles`] — *machine time* in nanoseconds. Storage levels, mapping
//!   devices and transfer channels are all parameterized in nanoseconds,
//!   which comfortably spans the 1960s range (a 0.2 µs thin-film
//!   associative search up to a ~100 ms tape seek) with integer
//!   arithmetic and perfect determinism.
//! * [`VirtualTime`] — *reference time*, the index of the current access
//!   in a reference string. Replacement policies (LRU timestamps, the
//!   ATLAS learning program's inactivity periods, Belady's MIN) are
//!   naturally expressed in reference time.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Mul, Sub};

/// A duration or instant of machine time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Debug)]
pub struct Cycles(pub u64);

impl Cycles {
    /// Zero duration.
    pub const ZERO: Cycles = Cycles(0);

    /// Constructs a duration from nanoseconds.
    #[must_use]
    pub const fn from_nanos(ns: u64) -> Cycles {
        Cycles(ns)
    }

    /// Constructs a duration from microseconds.
    #[must_use]
    pub const fn from_micros(us: u64) -> Cycles {
        Cycles(us * 1_000)
    }

    /// Constructs a duration from milliseconds.
    #[must_use]
    pub const fn from_millis(ms: u64) -> Cycles {
        Cycles(ms * 1_000_000)
    }

    /// Returns the duration in nanoseconds.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the duration in (truncated) microseconds.
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the duration as fractional milliseconds.
    #[must_use]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction; useful when comparing instants that may be
    /// out of order.
    #[must_use]
    pub const fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        iter.fold(Cycles::ZERO, Add::add)
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 10_000_000 {
            write!(f, "{:.2}ms", self.as_millis_f64())
        } else if self.0 >= 10_000 {
            write!(f, "{}us", self.as_micros())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// Reference time: the index of an access within a reference string.
pub type VirtualTime = u64;

/// A monotone simulation clock in machine time.
///
/// # Examples
///
/// ```
/// use dsa_core::clock::{Cycles, SimClock};
///
/// let mut clock = SimClock::new();
/// clock.advance(Cycles::from_micros(8));
/// clock.advance(Cycles::from_micros(2));
/// assert_eq!(clock.now().as_micros(), 10);
/// ```
#[derive(Clone, Debug, Default)]
pub struct SimClock {
    now: Cycles,
}

impl SimClock {
    /// Creates a clock at time zero.
    #[must_use]
    pub fn new() -> SimClock {
        SimClock::default()
    }

    /// Returns the current instant.
    #[must_use]
    pub fn now(&self) -> Cycles {
        self.now
    }

    /// Advances the clock by `dt`.
    pub fn advance(&mut self, dt: Cycles) {
        self.now += dt;
    }

    /// Moves the clock forward to `t`, if `t` is in the future; a no-op
    /// otherwise (the clock never runs backwards).
    pub fn advance_to(&mut self, t: Cycles) {
        if t > self.now {
            self.now = t;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constructors_agree() {
        assert_eq!(Cycles::from_micros(1), Cycles::from_nanos(1_000));
        assert_eq!(Cycles::from_millis(1), Cycles::from_micros(1_000));
    }

    #[test]
    fn arithmetic() {
        let a = Cycles::from_micros(5);
        let b = Cycles::from_micros(3);
        assert_eq!(a + b, Cycles::from_micros(8));
        assert_eq!(a - b, Cycles::from_micros(2));
        assert_eq!(b * 4, Cycles::from_micros(12));
        assert_eq!(b.saturating_sub(a), Cycles::ZERO);
        let total: Cycles = [a, b, b].into_iter().sum();
        assert_eq!(total, Cycles::from_micros(11));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(Cycles::from_nanos(200).to_string(), "200ns");
        assert_eq!(Cycles::from_micros(80).to_string(), "80us");
        assert_eq!(Cycles::from_millis(34).to_string(), "34.00ms");
    }

    #[test]
    fn clock_is_monotone() {
        let mut c = SimClock::new();
        c.advance(Cycles::from_micros(10));
        c.advance_to(Cycles::from_micros(5));
        assert_eq!(c.now(), Cycles::from_micros(10));
        c.advance_to(Cycles::from_micros(25));
        assert_eq!(c.now(), Cycles::from_micros(25));
    }
}
