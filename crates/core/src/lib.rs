//! Core types for the Randell–Kuehner storage-allocation taxonomy.
//!
//! This crate contains the vocabulary shared by every other crate in the
//! workspace: address and name types, the four-axis classification of
//! dynamic storage allocation systems from the paper, predictive-advice
//! directives, simulated time, error types, and the event types that
//! workloads are expressed in.
//!
//! The paper's central observation is that hardware-assisted dynamic
//! storage allocation systems are usefully characterized by four largely
//! independent axes:
//!
//! 1. the **name space** offered to programs (linear, linearly segmented,
//!    symbolically segmented) — [`taxonomy::NameSpaceKind`];
//! 2. whether **predictive information** may be supplied — [`advice`];
//! 3. whether **artificial contiguity** (a mapping device) is provided —
//!    [`taxonomy::Contiguity`];
//! 4. the **uniformity of the unit of allocation** (paging vs.
//!    variable-size blocks) — [`taxonomy::AllocationUnit`].
//!
//! [`taxonomy::SystemCharacteristics`] bundles the four axes, and the
//! sibling crates provide the mechanisms and strategies each axis names.

pub mod access;
pub mod advice;
pub mod clock;
pub mod error;
pub mod ids;
pub mod sizeclass;
pub mod taxonomy;

pub use access::{Access, AccessKind, AllocEvent, AllocRequest, ProgramOp, ReferenceString};
pub use advice::{Advice, AdviceUnit};
pub use clock::{Cycles, SimClock, VirtualTime};
pub use error::{AccessFault, AllocError, CoreError};
pub use ids::{FrameNo, JobId, Name, PageNo, PhysAddr, SegId, Words};
pub use sizeclass::SizeClasses;
pub use taxonomy::{
    AllocationUnit, Contiguity, NameSpaceKind, PredictiveInfo, SystemCharacteristics,
};
