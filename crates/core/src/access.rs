//! Workload event types.
//!
//! Workloads are expressed as streams of events at two levels of
//! abstraction:
//!
//! * [`ReferenceString`] — a flat sequence of [`Access`]es to names in a
//!   linear name space. This is the abstraction Belady's replacement
//!   study (cited as \[1\] by the paper) works in, and what the paging
//!   and mapping simulators consume.
//! * [`ProgramOp`] — segment-structured program events (declare a
//!   segment, touch an item in it, resize it, supply advice, compute for
//!   a while, free it). This is the portable workload the machine-survey
//!   experiment (E9) feeds to every appendix machine: each machine's
//!   adapter lowers `ProgramOp`s onto its own name space.
//!
//! Allocation-only experiments (placement, fragmentation, compaction) use
//! the coarser [`AllocEvent`] stream.

use core::fmt;

use crate::advice::Advice;
use crate::ids::{Name, SegId, Words};

/// How an item is accessed.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AccessKind {
    /// Fetch the item (data read or instruction fetch).
    Read,
    /// Store into the item. Write accesses set the hardware modify
    /// sensor, which replacement strategies may interrogate.
    Write,
}

impl AccessKind {
    /// True for [`AccessKind::Write`].
    #[must_use]
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

/// One access to a name in a linear name space.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Access {
    /// The name referenced.
    pub name: Name,
    /// Read or write.
    pub kind: AccessKind,
}

impl Access {
    /// A read access to `name`.
    #[must_use]
    pub fn read(name: impl Into<Name>) -> Access {
        Access {
            name: name.into(),
            kind: AccessKind::Read,
        }
    }

    /// A write access to `name`.
    #[must_use]
    pub fn write(name: impl Into<Name>) -> Access {
        Access {
            name: name.into(),
            kind: AccessKind::Write,
        }
    }
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            AccessKind::Read => write!(f, "R {}", self.name),
            AccessKind::Write => write!(f, "W {}", self.name),
        }
    }
}

/// A sequence of accesses to a linear name space.
pub type ReferenceString = Vec<Access>;

/// A request to allocate a variable-size unit.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AllocRequest {
    /// Caller-chosen identifier; later [`AllocEvent::Free`]s refer to it.
    pub id: u64,
    /// Requested extent, in words.
    pub size: Words,
}

/// One event in an allocation-only workload.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AllocEvent {
    /// Allocate a unit.
    Alloc(AllocRequest),
    /// Free a previously allocated unit.
    Free {
        /// The identifier given at allocation time.
        id: u64,
    },
}

impl fmt::Display for AllocEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocEvent::Alloc(r) => write!(f, "alloc #{} {} words", r.id, r.size),
            AllocEvent::Free { id } => write!(f, "free #{id}"),
        }
    }
}

/// A segment-structured program event.
///
/// This is the machine-independent workload format: every appendix
/// machine in `dsa-machines` can interpret it, lowering segments onto its
/// own name space (flattening them into a linear space on ATLAS/M44,
/// keeping them as segments on the B5000/Rice/MULTICS/360-67).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProgramOp {
    /// Declare a segment of `size` words (brings it into existence; the
    /// dynamic-segment attribute of the paper).
    Define {
        /// The segment being declared.
        seg: SegId,
        /// Its initial extent, in words.
        size: Words,
    },
    /// Touch the item at `offset` within `seg`.
    Touch {
        /// The segment referenced.
        seg: SegId,
        /// The item within the segment.
        offset: Words,
        /// Read or write.
        kind: AccessKind,
    },
    /// Change the extent of `seg` to `size` words (grow or shrink by
    /// special program directive).
    Resize {
        /// The segment being resized.
        seg: SegId,
        /// Its new extent, in words.
        size: Words,
    },
    /// Cease the existence of `seg`.
    Delete {
        /// The segment being deleted.
        seg: SegId,
    },
    /// Supply an advisory directive.
    Advise(Advice),
    /// Execute `instructions` machine instructions that make no storage
    /// references we model (register-only compute). Gives workloads a
    /// CPU-time dimension for space-time accounting.
    Compute {
        /// Number of instructions executed.
        instructions: u64,
    },
}

impl fmt::Display for ProgramOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramOp::Define { seg, size } => write!(f, "define {seg} ({size} words)"),
            ProgramOp::Touch { seg, offset, kind } => {
                let k = if kind.is_write() { "W" } else { "R" };
                write!(f, "{k} {seg}[{offset}]")
            }
            ProgramOp::Resize { seg, size } => write!(f, "resize {seg} -> {size} words"),
            ProgramOp::Delete { seg } => write!(f, "delete {seg}"),
            ProgramOp::Advise(a) => write!(f, "advise: {a}"),
            ProgramOp::Compute { instructions } => write!(f, "compute {instructions}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::advice::AdviceUnit;
    use crate::ids::PageNo;

    #[test]
    fn access_constructors() {
        let r = Access::read(5u64);
        assert_eq!(r.kind, AccessKind::Read);
        assert!(!r.kind.is_write());
        let w = Access::write(5u64);
        assert!(w.kind.is_write());
        assert_eq!(r.name, w.name);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Access::read(16u64).to_string(), "R 0x10");
        assert_eq!(
            AllocEvent::Alloc(AllocRequest { id: 1, size: 40 }).to_string(),
            "alloc #1 40 words"
        );
        assert_eq!(AllocEvent::Free { id: 1 }.to_string(), "free #1");
        assert_eq!(
            ProgramOp::Touch {
                seg: SegId(2),
                offset: 9,
                kind: AccessKind::Write
            }
            .to_string(),
            "W s2[9]"
        );
        assert_eq!(
            ProgramOp::Advise(Advice::WillNeed(AdviceUnit::Page(PageNo(1)))).to_string(),
            "advise: will-need p1"
        );
    }

    #[test]
    fn program_ops_are_copy() {
        let op = ProgramOp::Define {
            seg: SegId(1),
            size: 100,
        };
        let op2 = op;
        assert_eq!(op, op2);
    }
}
