//! Fundamental identifier and quantity types.
//!
//! The paper is careful to distinguish the *name* used by a program to
//! specify an informational item from the *address* used by the computer
//! system to access the location in which the item is stored. We keep the
//! same distinction at the type level: [`Name`] values flow into mapping
//! devices, [`PhysAddr`] values come out, and the two cannot be confused.
//!
//! All quantities are measured in *words*, the natural unit of a
//! 1960s-era machine; [`Words`] is a plain `u64` alias used for extents
//! and capacities.

use core::fmt;

/// A storage extent or capacity, in words.
pub type Words = u64;

/// A name in a program's name space.
///
/// For a linear name space this is simply an integer in `0..n`. For a
/// segmented name space the name is the pair *(segment, item within
/// segment)*; such pairs are carried as [`crate::access::Access`] fields
/// rather than packed into a single `Name`, except where a machine (IBM
/// 360/67, MULTICS) explicitly packs the segment number into the most
/// significant bits of a linear name — see `dsa-mapping`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Name(pub u64);

impl Name {
    /// Returns the raw integer value of the name.
    #[must_use]
    pub const fn value(self) -> u64 {
        self.0
    }

    /// Offsets the name by `delta` words (address arithmetic).
    ///
    /// The whole point of name contiguity is that this operation is
    /// meaningful: `name.offset(k)` denotes the item `k` places after
    /// `name` in the same linear name space.
    #[must_use]
    pub const fn offset(self, delta: u64) -> Name {
        Name(self.0 + delta)
    }
}

impl fmt::Debug for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Name({:#x})", self.0)
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u64> for Name {
    fn from(v: u64) -> Self {
        Name(v)
    }
}

/// An absolute address of a physical working-storage location.
///
/// Produced only by mapping devices (or used directly on systems without
/// artificial contiguity).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(pub u64);

impl PhysAddr {
    /// Returns the raw address value.
    #[must_use]
    pub const fn value(self) -> u64 {
        self.0
    }

    /// Offsets the address by `delta` words.
    #[must_use]
    pub const fn offset(self, delta: u64) -> PhysAddr {
        PhysAddr(self.0 + delta)
    }
}

impl fmt::Debug for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PhysAddr({:#x})", self.0)
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u64> for PhysAddr {
    fn from(v: u64) -> Self {
        PhysAddr(v)
    }
}

/// A page number within a name space (a "page" is the set of items that
/// fit within a page frame).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct PageNo(pub u64);

impl fmt::Display for PageNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<u64> for PageNo {
    fn from(v: u64) -> Self {
        PageNo(v)
    }
}

/// A page-frame number within physical working storage.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct FrameNo(pub u64);

impl FrameNo {
    /// Returns the frame number as a `usize` index.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FrameNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

impl From<u64> for FrameNo {
    fn from(v: u64) -> Self {
        FrameNo(v)
    }
}

/// An internal segment identifier.
///
/// Machines with a *linearly* segmented name space expose segment numbers
/// to programs directly; machines with a *symbolically* segmented name
/// space hide them behind a dictionary (see `dsa-seg::names`). Either way
/// the allocator works in terms of `SegId`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SegId(pub u32);

impl fmt::Display for SegId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl From<u32> for SegId {
    fn from(v: u32) -> Self {
        SegId(v)
    }
}

/// Identifier for a job (program) in a multiprogrammed mix.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct JobId(pub u32);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "j{}", self.0)
    }
}

impl From<u32> for JobId {
    fn from(v: u32) -> Self {
        JobId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_offset_is_address_arithmetic() {
        let n = Name(0x100);
        assert_eq!(n.offset(0), n);
        assert_eq!(n.offset(5), Name(0x105));
        assert_eq!(n.offset(5).offset(3), n.offset(8));
    }

    #[test]
    fn phys_addr_offset() {
        let a = PhysAddr(40);
        assert_eq!(a.offset(2), PhysAddr(42));
    }

    #[test]
    fn names_and_addresses_are_distinct_types() {
        // A compile-time property, but we at least check the display
        // forms differ so logs cannot be misread.
        assert_eq!(Name(16).to_string(), "0x10");
        assert_eq!(PageNo(16).to_string(), "p16");
        assert_eq!(FrameNo(16).to_string(), "f16");
    }

    #[test]
    fn conversions_from_raw() {
        assert_eq!(Name::from(7).value(), 7);
        assert_eq!(PhysAddr::from(7).value(), 7);
        assert_eq!(FrameNo::from(3).index(), 3);
        assert_eq!(SegId::from(3), SegId(3));
        assert_eq!(JobId::from(9), JobId(9));
    }

    #[test]
    fn ordering_follows_raw_values() {
        assert!(Name(1) < Name(2));
        assert!(PageNo(1) < PageNo(2));
        assert!(FrameNo(0) < FrameNo(1));
    }
}
