//! Error and fault types.
//!
//! The paper distinguishes *errors* (requests the system cannot honour,
//! e.g. exhausted storage) from *faults* (events the addressing hardware
//! traps and the allocation system services, e.g. a reference to a page
//! not currently in working storage — the heart of demand paging, special
//! hardware facility (v)).

use core::fmt;

use crate::ids::{Name, PageNo, SegId, Words};

/// An allocation request could not be satisfied.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AllocError {
    /// No free block (or frame) large enough exists, even after any
    /// permitted coalescing or compaction.
    OutOfStorage {
        /// The size that was requested, in words.
        requested: Words,
        /// The largest contiguous free extent at the time of failure.
        largest_free: Words,
    },
    /// The request exceeds the maximum the system permits (e.g. a B5000
    /// segment larger than 1024 words).
    RequestTooLarge {
        /// The size that was requested, in words.
        requested: Words,
        /// The maximum size the system permits for one unit.
        max: Words,
    },
    /// The request was for zero words, which no allocator accepts.
    ZeroSize,
    /// The identifier in the request is already in use.
    AlreadyAllocated,
    /// The identifier in the request is unknown (e.g. freeing twice).
    UnknownUnit,
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            AllocError::OutOfStorage {
                requested,
                largest_free,
            } => write!(
                f,
                "out of storage: requested {requested} words, largest free extent {largest_free}"
            ),
            AllocError::RequestTooLarge { requested, max } => {
                write!(
                    f,
                    "request of {requested} words exceeds maximum unit size {max}"
                )
            }
            AllocError::ZeroSize => write!(f, "zero-size allocation request"),
            AllocError::AlreadyAllocated => write!(f, "unit identifier already allocated"),
            AllocError::UnknownUnit => write!(f, "unknown unit identifier"),
        }
    }
}

impl std::error::Error for AllocError {}

/// A fault raised on the addressing path.
///
/// Faults are not (necessarily) program errors: a [`AccessFault::MissingPage`]
/// or [`AccessFault::MissingSegment`] is the trap that *drives* a demand
/// fetch strategy. [`AccessFault::BoundsViolation`] is the illegal-subscript
/// interception the paper lists as segmentation advantage (iii).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessFault {
    /// The name lies outside the program's name space (or the limit
    /// register check failed).
    InvalidName {
        /// The offending name.
        name: Name,
        /// The extent of the name space against which it was checked.
        extent: Words,
    },
    /// The referenced segment does not exist.
    UnknownSegment {
        /// The offending segment.
        seg: SegId,
    },
    /// The offset exceeds the segment's declared extent — an attempted
    /// violation of array bounds, intercepted automatically.
    BoundsViolation {
        /// The segment whose bound was violated.
        seg: SegId,
        /// The offending offset.
        offset: Words,
        /// The segment's extent at the time of the access.
        limit: Words,
    },
    /// The referenced page is not in any page frame; a page fetch must be
    /// initiated (demand paging).
    MissingPage {
        /// The page that must be fetched.
        page: PageNo,
    },
    /// The referenced segment is not in working storage; a segment fetch
    /// must be initiated (B5000 / Rice fetch-on-first-reference).
    MissingSegment {
        /// The segment that must be fetched.
        seg: SegId,
    },
    /// The access mode is not permitted by the program's capability for
    /// the segment (segmentation advantage (ii): segments as the unit
    /// of information protection).
    ProtectionViolation {
        /// The protected segment.
        seg: SegId,
        /// A short label of the attempted access ("write", "execute").
        attempted: &'static str,
    },
}

impl fmt::Display for AccessFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            AccessFault::InvalidName { name, extent } => {
                write!(f, "invalid name {name} (name-space extent {extent})")
            }
            AccessFault::UnknownSegment { seg } => write!(f, "unknown segment {seg}"),
            AccessFault::BoundsViolation { seg, offset, limit } => {
                write!(
                    f,
                    "bounds violation in {seg}: offset {offset} >= limit {limit}"
                )
            }
            AccessFault::MissingPage { page } => write!(f, "page fault on {page}"),
            AccessFault::MissingSegment { seg } => write!(f, "segment fault on {seg}"),
            AccessFault::ProtectionViolation { seg, attempted } => {
                write!(
                    f,
                    "protection violation: {attempted} access to {seg} not permitted"
                )
            }
        }
    }
}

impl std::error::Error for AccessFault {}

/// Top-level error type for composed systems.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CoreError {
    /// An allocation failed.
    Alloc(AllocError),
    /// An access faulted and the fault could not be serviced (e.g. a
    /// bounds violation, which no amount of fetching cures).
    Access(AccessFault),
    /// A configuration is internally inconsistent (e.g. a page size of
    /// zero, or a TLB larger than the frame count it indexes).
    BadConfig(&'static str),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Alloc(e) => write!(f, "allocation error: {e}"),
            CoreError::Access(e) => write!(f, "access fault: {e}"),
            CoreError::BadConfig(msg) => write!(f, "bad configuration: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<AllocError> for CoreError {
    fn from(e: AllocError) -> Self {
        CoreError::Alloc(e)
    }
}

impl From<AccessFault> for CoreError {
    fn from(e: AccessFault) -> Self {
        CoreError::Access(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms_are_informative() {
        let e = AllocError::OutOfStorage {
            requested: 100,
            largest_free: 60,
        };
        let s = e.to_string();
        assert!(s.contains("100") && s.contains("60"), "{s}");

        let fault = AccessFault::BoundsViolation {
            seg: SegId(4),
            offset: 1024,
            limit: 1000,
        };
        let s = fault.to_string();
        assert!(
            s.contains("s4") && s.contains("1024") && s.contains("1000"),
            "{s}"
        );
    }

    #[test]
    fn conversions_into_core_error() {
        let e: CoreError = AllocError::ZeroSize.into();
        assert_eq!(e, CoreError::Alloc(AllocError::ZeroSize));
        let e: CoreError = AccessFault::MissingPage { page: PageNo(3) }.into();
        assert!(matches!(
            e,
            CoreError::Access(AccessFault::MissingPage { .. })
        ));
    }

    #[test]
    fn faults_are_copy_and_comparable() {
        let a = AccessFault::MissingPage { page: PageNo(1) };
        let b = a;
        assert_eq!(a, b);
        assert_ne!(a, AccessFault::MissingPage { page: PageNo(2) });
    }
}
