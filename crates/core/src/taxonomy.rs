//! The four-axis classification of dynamic storage allocation systems.
//!
//! Section "Basic Characteristics of Dynamic Storage Allocation Systems"
//! of the paper identifies four characteristics that are "to a large
//! degree, mutually independent" and collectively reveal the functional
//! capability and underlying mechanism of a system:
//!
//! | Axis | Type |
//! |---|---|
//! | Name space | [`NameSpaceKind`] |
//! | Predictive information | [`PredictiveInfo`] |
//! | Artificial contiguity | [`Contiguity`] |
//! | Uniformity of unit of allocation | [`AllocationUnit`] |
//!
//! [`SystemCharacteristics`] bundles one choice on each axis; the
//! `dsa-machines` crate instantiates it for each machine in the paper's
//! appendix, and experiment E9 prints the resulting comparative table.

use core::fmt;

use crate::ids::Words;

/// The structure of the set of names a program may use.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum NameSpaceKind {
    /// Permissible names are the integers `0..extent`. The IBM 7094 and
    /// the Ferranti ATLAS provide linear name spaces.
    Linear {
        /// Number of names in the space.
        extent: Words,
    },
    /// A set of separate linear name spaces, where segment names are
    /// themselves drawn from a linear space (a bit field at the most
    /// significant end of the address representation): the IBM 360/67,
    /// and — by mechanism, though not by convention — MULTICS.
    ///
    /// Because segment names are ordered and manipulable, the segment
    /// dictionary suffers the same contiguous-allocation problems as any
    /// linear space (see experiment E10).
    LinearlySegmented {
        /// Maximum number of segments (e.g. 16 for the 24-bit 360/67).
        max_segments: u32,
        /// Maximum extent of one segment, in words.
        max_segment_extent: Words,
    },
    /// A set of separate linear name spaces where segments are named
    /// symbolically and are in no sense ordered: the Burroughs B5000.
    /// No name contiguity exists among segment names, so the dictionary
    /// never fragments and names never need reallocation.
    SymbolicallySegmented {
        /// Maximum extent of one segment, in words (1024 on the B5000;
        /// unbounded-by-representation elsewhere).
        max_segment_extent: Words,
    },
}

impl NameSpaceKind {
    /// True if the name space is segmented (either flavour).
    #[must_use]
    pub fn is_segmented(&self) -> bool {
        !matches!(self, NameSpaceKind::Linear { .. })
    }

    /// A short label used in survey tables.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            NameSpaceKind::Linear { .. } => "linear",
            NameSpaceKind::LinearlySegmented { .. } => "linearly segmented",
            NameSpaceKind::SymbolicallySegmented { .. } => "symbolically segmented",
        }
    }
}

impl fmt::Display for NameSpaceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NameSpaceKind::Linear { extent } => write!(f, "linear ({extent} words)"),
            NameSpaceKind::LinearlySegmented {
                max_segments,
                max_segment_extent,
            } => write!(
                f,
                "linearly segmented ({max_segments} segs x {max_segment_extent} words)"
            ),
            NameSpaceKind::SymbolicallySegmented { max_segment_extent } => {
                write!(
                    f,
                    "symbolically segmented (seg <= {max_segment_extent} words)"
                )
            }
        }
    }
}

/// Whether, and from where, the system accepts predictions about future
/// storage use.
///
/// The paper stresses that accepting predictions "is not the same as
/// having the programs incorporate an explicit storage allocation
/// strategy": directives are essentially advisory, and — in the authors'
/// opinion — general performance should not depend on them.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PredictiveInfo {
    /// No predictive directives are accepted.
    None,
    /// Advisory directives may be supplied by the programmer (M44/44X
    /// "will shortly be needed" / "not needed for some time"; MULTICS
    /// keep-resident / fetch-soon / release).
    Advisory,
    /// Predictions are produced by the compiler for every program, which
    /// the paper notes changes the trust calculus ("achieved by
    /// legislation, or by an authoritarian operating system") — the
    /// ACSI-MATIC program-description model.
    Compiler,
}

impl PredictiveInfo {
    /// A short label used in survey tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            PredictiveInfo::None => "none",
            PredictiveInfo::Advisory => "advisory",
            PredictiveInfo::Compiler => "compiler",
        }
    }
}

impl fmt::Display for PredictiveInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Whether a mapping device provides name contiguity without address
/// contiguity.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Contiguity {
    /// Name contiguity requires underlying address contiguity: a
    /// contiguous group of names occupies a contiguous block of
    /// locations (B5000, Rice).
    Physical,
    /// A mapping function in the addressing path lets a set of separate
    /// physical blocks appear as one contiguous run of names (ATLAS was
    /// the first such system); almost invariably exploited to disguise
    /// the actual extent of physical working storage ("virtual storage").
    Artificial,
}

impl Contiguity {
    /// A short label used in survey tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Contiguity::Physical => "physical",
            Contiguity::Artificial => "artificial",
        }
    }
}

impl fmt::Display for Contiguity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The unit in which blocks of contiguous working storage are allocated.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AllocationUnit {
    /// All units are page frames of one size ("paging systems": ATLAS at
    /// 512 words, M44/44X at a start-up-selectable size).
    Uniform {
        /// The page-frame size, in words.
        page_size: Words,
    },
    /// A small fixed set of frame sizes (MULTICS: 64 and 1024 words) —
    /// commonly still called paging, but, the paper notes, such a system
    /// "has to contain provisions for dealing with the storage
    /// fragmentation problem".
    MultiSize {
        /// The permitted frame sizes, in words, in increasing order.
        sizes: Vec<Words>,
    },
    /// The unit of allocation directly reflects the allocation request
    /// (B5000, Rice): external fragmentation becomes directly apparent,
    /// and placement/compaction strategies matter.
    Variable,
}

impl AllocationUnit {
    /// A short label used in survey tables.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            AllocationUnit::Uniform { .. } => "uniform (paged)",
            AllocationUnit::MultiSize { .. } => "multi-size pages",
            AllocationUnit::Variable => "variable",
        }
    }

    /// True for uniform or multi-size paging.
    #[must_use]
    pub fn is_paged(&self) -> bool {
        !matches!(self, AllocationUnit::Variable)
    }
}

impl fmt::Display for AllocationUnit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocationUnit::Uniform { page_size } => write!(f, "uniform {page_size}-word pages"),
            AllocationUnit::MultiSize { sizes } => {
                write!(f, "pages of ")?;
                for (i, s) in sizes.iter().enumerate() {
                    if i > 0 {
                        write!(f, "/")?;
                    }
                    write!(f, "{s}")?;
                }
                write!(f, " words")
            }
            AllocationUnit::Variable => write!(f, "variable (request-sized)"),
        }
    }
}

/// A point in the paper's four-dimensional design space.
///
/// # Examples
///
/// The combination the authors themselves favour (conclusion of the
/// "Basic Characteristics" section):
///
/// ```
/// use dsa_core::taxonomy::*;
///
/// let favoured = SystemCharacteristics {
///     name_space: NameSpaceKind::SymbolicallySegmented { max_segment_extent: u64::MAX },
///     predictive: PredictiveInfo::Advisory,
///     contiguity: Contiguity::Artificial,
///     unit: AllocationUnit::Variable,
/// };
/// assert!(favoured.name_space.is_segmented());
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SystemCharacteristics {
    /// Axis 1: the name space offered to programs.
    pub name_space: NameSpaceKind,
    /// Axis 2: acceptance of predictive information.
    pub predictive: PredictiveInfo,
    /// Axis 3: artificial contiguity.
    pub contiguity: Contiguity,
    /// Axis 4: uniformity of the unit of allocation.
    pub unit: AllocationUnit,
}

impl SystemCharacteristics {
    /// Renders the characteristics as four `label: value` lines, the
    /// format used by the machine-survey experiment (E9).
    #[must_use]
    pub fn describe(&self) -> String {
        format!(
            "name space:  {}\npredictive:  {}\ncontiguity:  {}\nalloc unit:  {}",
            self.name_space, self.predictive, self.contiguity, self.unit
        )
    }
}

impl fmt::Display for SystemCharacteristics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{} | {} | {} | {}]",
            self.name_space.label(),
            self.predictive.label(),
            self.contiguity.label(),
            self.unit.label()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b5000() -> SystemCharacteristics {
        SystemCharacteristics {
            name_space: NameSpaceKind::SymbolicallySegmented {
                max_segment_extent: 1024,
            },
            predictive: PredictiveInfo::None,
            contiguity: Contiguity::Physical,
            unit: AllocationUnit::Variable,
        }
    }

    #[test]
    fn segmentedness() {
        assert!(!NameSpaceKind::Linear { extent: 1 << 24 }.is_segmented());
        assert!(b5000().name_space.is_segmented());
    }

    #[test]
    fn pagedness() {
        assert!(AllocationUnit::Uniform { page_size: 512 }.is_paged());
        assert!(AllocationUnit::MultiSize {
            sizes: vec![64, 1024]
        }
        .is_paged());
        assert!(!AllocationUnit::Variable.is_paged());
    }

    #[test]
    fn display_round_trip_contains_all_axes() {
        let c = b5000();
        let s = c.describe();
        assert!(s.contains("symbolically segmented"), "{s}");
        assert!(s.contains("none"), "{s}");
        assert!(s.contains("physical"), "{s}");
        assert!(s.contains("variable"), "{s}");
    }

    #[test]
    fn multi_size_display_lists_sizes() {
        let u = AllocationUnit::MultiSize {
            sizes: vec![64, 1024],
        };
        assert_eq!(u.to_string(), "pages of 64/1024 words");
    }

    #[test]
    fn compact_display() {
        let c = b5000();
        assert_eq!(
            c.to_string(),
            "[symbolically segmented | none | physical | variable]"
        );
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Contiguity::Artificial.label(), "artificial");
        assert_eq!(PredictiveInfo::Compiler.label(), "compiler");
        assert_eq!(AllocationUnit::Variable.label(), "variable");
    }
}
