//! Deterministic case runner and RNG for the proptest shim.

/// Cases per property. Small enough to keep `cargo test -q` fast across
/// the whole workspace, large enough to exercise the op-stream spaces.
const CASES: u64 = 48;

/// SplitMix64: tiny, fast, full-period, and plenty good for test-case
/// generation.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        // Modulo bias is irrelevant at test-generation quality.
        self.next_u64() % n
    }

    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// FNV-1a over the test name: a stable per-test seed, independent of
/// link order or run environment.
fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs `CASES` deterministic cases of one property; panics with the
/// case index and seed on the first failure.
pub fn run<F>(name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), String>,
{
    let seed = seed_from_name(name);
    for i in 0..CASES {
        let mut rng = TestRng::new(seed ^ i.wrapping_mul(0xA076_1D64_78BD_642F));
        if let Err(msg) = case(&mut rng) {
            panic!("property `{name}` failed on case {i} (seed {seed:#x}): {msg}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(7);
        let mut b = TestRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_stays_in_range() {
        let mut rng = TestRng::new(3);
        for _ in 0..1000 {
            assert!(rng.below(17) < 17);
        }
    }

    #[test]
    #[should_panic(expected = "property `always_fails`")]
    fn failures_panic_with_context() {
        run("always_fails", |_| Err("boom".into()));
    }

    #[test]
    fn passing_property_runs_quietly() {
        let mut count = 0;
        run("counts_cases", |rng| {
            count += 1;
            let _ = rng.next_u64();
            Ok(())
        });
        assert_eq!(count, CASES);
    }
}
