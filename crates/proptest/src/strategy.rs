//! Value-generation strategies for the proptest shim.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::Range;

/// Something that can produce a value of its `Value` type from an RNG.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy so heterogeneous strategies producing
    /// the same value type can share a collection (`prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.generate(rng)))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn Fn(&mut TestRng) -> V>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// `Strategy::prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among same-valued strategies (`prop_oneof!`).
pub struct Union<V> {
    branches: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    pub fn new(branches: Vec<BoxedStrategy<V>>) -> Self {
        assert!(
            !branches.is_empty(),
            "prop_oneof! needs at least one branch"
        );
        Union { branches }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.branches.len() as u64) as usize;
        self.branches[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),+) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(width) as i128) as $t
                }
            }
        )+
    };
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        // 53 uniform mantissa bits in [0, 1), scaled to the range.
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))+) => {
        $(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+
    };
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen_bool()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),+) => {
        $(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )+
    };
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

/// Strategy form of [`Arbitrary`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// `prop::collection::vec`: a vector whose length is drawn from
/// `len_range` and whose elements come from `element`.
pub struct VecStrategy<S> {
    element: S,
    len_range: Range<usize>,
}

pub fn vec<S: Strategy>(element: S, len_range: Range<usize>) -> VecStrategy<S> {
    assert!(len_range.start < len_range.end, "empty length range");
    VecStrategy { element, len_range }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let width = (self.len_range.end - self.len_range.start) as u64;
        let len = self.len_range.start + rng.below(width) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `prop::sample::subsequence`: an order-preserving subsequence of
/// `items` whose length is drawn from `len_range` (clamped to the
/// number of items).
pub struct Subsequence<T> {
    items: Vec<T>,
    len_range: Range<usize>,
}

pub fn subsequence<T: Clone>(items: Vec<T>, len_range: Range<usize>) -> Subsequence<T> {
    assert!(len_range.start < len_range.end, "empty length range");
    Subsequence { items, len_range }
}

impl<T: Clone> Strategy for Subsequence<T> {
    type Value = Vec<T>;
    fn generate(&self, rng: &mut TestRng) -> Vec<T> {
        let width = (self.len_range.end - self.len_range.start) as u64;
        let len = (self.len_range.start + rng.below(width) as usize).min(self.items.len());
        // Partial Fisher-Yates over the index space, then restore
        // original order so the result is a true subsequence.
        let mut idx: Vec<usize> = (0..self.items.len()).collect();
        for i in 0..len {
            let j = i + rng.below((idx.len() - i) as u64) as usize;
            idx.swap(i, j);
        }
        let mut chosen: Vec<usize> = idx[..len].to_vec();
        chosen.sort_unstable();
        chosen.into_iter().map(|i| self.items[i].clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..500 {
            let v = (3u64..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let s = (0usize..4).generate(&mut rng);
            assert!(s < 4);
            let n = (-5i64..5).generate(&mut rng);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn map_and_tuple_compose() {
        let mut rng = TestRng::new(2);
        let strat = (1u64..10, 0u32..3).prop_map(|(a, b)| a + u64::from(b));
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((1..13).contains(&v));
        }
    }

    #[test]
    fn union_draws_from_every_branch() {
        let mut rng = TestRng::new(3);
        let u = Union::new(vec![(0u64..1).boxed(), (100u64..101).boxed()]);
        let mut seen = [false, false];
        for _ in 0..200 {
            match u.generate(&mut rng) {
                0 => seen[0] = true,
                100 => seen[1] = true,
                other => panic!("unexpected value {other}"),
            }
        }
        assert!(seen[0] && seen[1]);
    }

    #[test]
    fn vec_respects_length_range() {
        let mut rng = TestRng::new(4);
        let strat = vec(0u8..10, 2..7);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn subsequence_preserves_order() {
        let mut rng = TestRng::new(5);
        let items: Vec<u64> = (0..16).collect();
        let strat = subsequence(items, 4..16);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((4..16).contains(&v.len()));
            assert!(
                v.windows(2).all(|w| w[0] < w[1]),
                "not a subsequence: {v:?}"
            );
        }
    }
}
