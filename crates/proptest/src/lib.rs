//! A minimal, dependency-free stand-in for the `proptest` crate,
//! exposing exactly the API surface this workspace's property tests
//! use: the `proptest!` test macro, `prop_assert!`/`prop_assert_eq!`/
//! `prop_assume!`, `prop_oneof!`, range and tuple strategies,
//! `Strategy::prop_map`/`boxed`, `any::<T>()`, `prop::collection::vec`,
//! and `prop::sample::subsequence`.
//!
//! Generation is deterministic: each test derives a seed from its own
//! name and runs a fixed number of cases, so failures reproduce exactly
//! across runs and machines. There is no shrinking — a failing case
//! reports its case index and message and panics.

pub mod strategy;
pub mod test_runner;

/// Mirrors proptest's `prop::` namespace (`prop::collection::vec`,
/// `prop::sample::subsequence`).
pub mod prop {
    pub mod collection {
        pub use crate::strategy::vec;
    }
    pub mod sample {
        pub use crate::strategy::subsequence;
    }
}

pub use strategy::{any, Arbitrary, BoxedStrategy, Strategy, Union};
pub use test_runner::TestRng;

/// What `use proptest::prelude::*` must bring into scope.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Strategy, Union};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Wraps `#[test]` functions whose arguments are drawn from strategies.
///
/// Each generated test runs a fixed number of deterministic cases; the
/// body may use `prop_assert!`-family macros, which abort the case with
/// an error message rather than panicking mid-generation.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run(stringify!($name), |__dsa_rng| {
                    $(let $pat = $crate::Strategy::generate(&{ $strat }, __dsa_rng);)+
                    let __dsa_result: ::std::result::Result<(), ::std::string::String> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    __dsa_result
                });
            }
        )+
    };
}

/// A strategy choosing uniformly between the listed strategies (all of
/// which must produce the same value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($s)),+])
    };
}

/// Fails the current case if the condition does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Fails the current case if the two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?}` != `{:?}`", left, right
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?}` != `{:?}`: {}", left, right, format!($($fmt)+)
            ));
        }
    }};
}

/// Skips the current case (counts as a pass) if the condition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}
