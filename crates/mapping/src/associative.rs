//! Associative memories.
//!
//! Two distinct uses of associative hardware appear in the paper:
//!
//! * On ATLAS, the associative memory *performs the mapping directly*:
//!   there is one page-address register per page frame, and the hardware
//!   matches the high bits of every name against all registers at once —
//!   [`FrameAssociativeMap`].
//! * On MULTICS, the 360/67 and the B8500, a *small* associative memory
//!   caches recently used mapping-table entries so that most references
//!   avoid walking tables in core — [`AssocMemory`], used by
//!   [`crate::two_level::TwoLevelMap`]. This is special hardware
//!   facility (vi): "if it were not for such mechanisms, the cost in
//!   extra addressing time ... would often be unacceptable".

use std::collections::VecDeque;

use dsa_core::error::AccessFault;
use dsa_core::ids::{FrameNo, Name, PageNo, PhysAddr, Words};

use crate::cost::{MapCosts, MapStats};
use crate::{AddressMap, Translation};

/// Replacement policy for a small associative memory.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AssocPolicy {
    /// Evict the least recently matched entry.
    Lru,
    /// Evict the oldest-loaded entry (cheaper hardware, no use
    /// recording).
    Fifo,
}

/// A small fully-associative memory mapping keys to 64-bit values.
///
/// Capacity-bounded; the search itself is modelled as constant-time
/// (it is a parallel match in hardware).
#[derive(Clone, Debug)]
pub struct AssocMemory {
    capacity: usize,
    policy: AssocPolicy,
    // Entries in recency/load order, most recent last.
    entries: VecDeque<(u64, u64)>,
    hits: u64,
    misses: u64,
}

impl AssocMemory {
    /// Creates an associative memory of `capacity` entries. A capacity
    /// of zero is legal and models the absence of the device (every
    /// lookup misses).
    #[must_use]
    pub fn new(capacity: usize, policy: AssocPolicy) -> AssocMemory {
        AssocMemory {
            capacity,
            policy,
            entries: VecDeque::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up `key`, updating recency under LRU.
    pub fn lookup(&mut self, key: u64) -> Option<u64> {
        match self.entries.iter().position(|&(k, _)| k == key) {
            Some(i) => {
                self.hits += 1;
                let entry = self.entries[i];
                if self.policy == AssocPolicy::Lru {
                    self.entries.remove(i);
                    self.entries.push_back(entry);
                }
                Some(entry.1)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts or updates `key -> value`, evicting per policy if full.
    pub fn insert(&mut self, key: u64, value: u64) {
        if self.capacity == 0 {
            return;
        }
        if let Some(i) = self.entries.iter().position(|&(k, _)| k == key) {
            self.entries.remove(i);
        } else if self.entries.len() >= self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back((key, value));
    }

    /// Removes `key` if present (needed when a page is replaced: a stale
    /// entry would translate to a frame now holding other information).
    pub fn invalidate(&mut self, key: u64) {
        if let Some(i) = self.entries.iter().position(|&(k, _)| k == key) {
            self.entries.remove(i);
        }
    }

    /// Clears the memory (e.g. on a program switch).
    pub fn invalidate_all(&mut self) {
        self.entries.clear();
    }

    /// Number of resident entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entries are resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over the currently resident keys.
    pub fn keys(&self) -> impl Iterator<Item = u64> + '_ {
        self.entries.iter().map(|&(k, _)| k)
    }

    /// Hits so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

/// The ATLAS mapping scheme: one page-address register per page frame.
///
/// Names are split on a power-of-two page size; the page bits are
/// matched associatively against all frame registers simultaneously.
/// Loading a page into a frame sets that frame's register.
#[derive(Clone, Debug)]
pub struct FrameAssociativeMap {
    page_bits: u32,
    registers: Vec<Option<PageNo>>,
    name_extent: Words,
    costs: MapCosts,
    stats: MapStats,
}

impl FrameAssociativeMap {
    /// Creates the map for `frames` page frames of `1 << page_bits`
    /// words each, over a name space of `name_extent` words.
    ///
    /// # Panics
    ///
    /// Panics if `frames` is zero or `page_bits` not in `1..=32`.
    #[must_use]
    pub fn new(
        frames: usize,
        page_bits: u32,
        name_extent: Words,
        costs: MapCosts,
    ) -> FrameAssociativeMap {
        assert!(frames > 0, "need at least one frame");
        assert!((1..=32).contains(&page_bits), "page_bits out of range");
        FrameAssociativeMap {
            page_bits,
            registers: vec![None; frames],
            name_extent,
            costs,
            stats: MapStats::default(),
        }
    }

    /// Page size in words.
    #[must_use]
    pub fn page_size(&self) -> Words {
        1u64 << self.page_bits
    }

    /// Declares that `page` now occupies `frame` (sets the frame's
    /// page-address register).
    ///
    /// # Panics
    ///
    /// Panics if `frame` is out of range.
    pub fn load(&mut self, frame: FrameNo, page: PageNo) {
        self.registers[frame.index()] = Some(page);
    }

    /// Clears `frame`'s register (the page was removed).
    ///
    /// # Panics
    ///
    /// Panics if `frame` is out of range.
    pub fn unload(&mut self, frame: FrameNo) {
        self.registers[frame.index()] = None;
    }

    /// The frame currently holding `page`, if resident.
    #[must_use]
    pub fn frame_of(&self, page: PageNo) -> Option<FrameNo> {
        self.registers
            .iter()
            .position(|&r| r == Some(page))
            .map(|i| FrameNo(i as u64))
    }

    /// Number of frames.
    #[must_use]
    pub fn frames(&self) -> usize {
        self.registers.len()
    }
}

impl AddressMap for FrameAssociativeMap {
    fn translate(&mut self, name: Name) -> Translation {
        self.stats.translations += 1;
        // One parallel associative search, regardless of frame count.
        let cost = self.costs.assoc_search;
        self.stats.cycles += cost;
        if name.value() >= self.name_extent {
            self.stats.faults += 1;
            return Translation::fault(
                AccessFault::InvalidName {
                    name,
                    extent: self.name_extent,
                },
                cost,
            );
        }
        let page = PageNo(name.value() >> self.page_bits);
        let offset = name.value() & (self.page_size() - 1);
        match self.frame_of(page) {
            Some(frame) => {
                self.stats.assoc_hits += 1;
                let addr = PhysAddr(frame.0 * self.page_size() + offset);
                Translation::ok(addr, cost)
            }
            None => {
                self.stats.assoc_misses += 1;
                self.stats.faults += 1;
                Translation::fault(AccessFault::MissingPage { page }, cost)
            }
        }
    }

    fn stats(&self) -> &MapStats {
        &self.stats
    }

    fn label(&self) -> &'static str {
        "frame-associative (ATLAS)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsa_core::clock::Cycles;

    #[test]
    fn assoc_lru_evicts_least_recent() {
        let mut a = AssocMemory::new(2, AssocPolicy::Lru);
        a.insert(1, 10);
        a.insert(2, 20);
        assert_eq!(a.lookup(1), Some(10)); // 1 now most recent
        a.insert(3, 30); // evicts 2
        assert_eq!(a.lookup(2), None);
        assert_eq!(a.lookup(1), Some(10));
        assert_eq!(a.lookup(3), Some(30));
    }

    #[test]
    fn assoc_fifo_evicts_oldest_load() {
        let mut a = AssocMemory::new(2, AssocPolicy::Fifo);
        a.insert(1, 10);
        a.insert(2, 20);
        assert_eq!(a.lookup(1), Some(10)); // recency must not matter
        a.insert(3, 30); // evicts 1 (oldest load)
        assert_eq!(a.lookup(1), None);
        assert_eq!(a.lookup(2), Some(20));
    }

    #[test]
    fn assoc_zero_capacity_always_misses() {
        let mut a = AssocMemory::new(0, AssocPolicy::Lru);
        a.insert(1, 10);
        assert_eq!(a.lookup(1), None);
        assert!(a.is_empty());
        assert_eq!(a.misses(), 1);
        assert_eq!(a.hits(), 0);
    }

    #[test]
    fn assoc_update_and_invalidate() {
        let mut a = AssocMemory::new(4, AssocPolicy::Lru);
        a.insert(1, 10);
        a.insert(1, 11); // update, no duplicate
        assert_eq!(a.len(), 1);
        assert_eq!(a.lookup(1), Some(11));
        a.invalidate(1);
        assert_eq!(a.lookup(1), None);
        a.insert(2, 20);
        a.invalidate_all();
        assert!(a.is_empty());
    }

    fn atlas_map() -> FrameAssociativeMap {
        // 4 frames of 8 words; 64-word name space.
        FrameAssociativeMap::new(4, 3, 64, MapCosts::for_core_cycle(Cycles::from_micros(2)))
    }

    #[test]
    fn frame_map_translates_resident_pages() {
        let mut m = atlas_map();
        m.load(FrameNo(2), PageNo(5)); // names 40..48 -> addrs 16..24
        let t = m.translate(Name(43));
        assert_eq!(t.unwrap_addr(), PhysAddr(19));
        assert_eq!(m.frame_of(PageNo(5)), Some(FrameNo(2)));
    }

    #[test]
    fn frame_map_faults_on_missing_page() {
        let mut m = atlas_map();
        let t = m.translate(Name(0));
        assert!(matches!(
            t.outcome,
            Err(AccessFault::MissingPage { page: PageNo(0) })
        ));
        assert_eq!(m.stats().assoc_misses, 1);
    }

    #[test]
    fn frame_map_checks_name_extent() {
        let mut m = atlas_map();
        let t = m.translate(Name(64));
        assert!(matches!(t.outcome, Err(AccessFault::InvalidName { .. })));
    }

    #[test]
    fn frame_map_unload_clears_register() {
        let mut m = atlas_map();
        m.load(FrameNo(0), PageNo(1));
        assert!(m.translate(Name(8)).outcome.is_ok());
        m.unload(FrameNo(0));
        assert!(m.translate(Name(8)).outcome.is_err());
    }

    #[test]
    fn frame_map_search_cost_is_constant() {
        let mut small =
            FrameAssociativeMap::new(1, 3, 64, MapCosts::for_core_cycle(Cycles::from_micros(2)));
        let mut large = atlas_map();
        small.load(FrameNo(0), PageNo(0));
        large.load(FrameNo(3), PageNo(0));
        assert_eq!(small.translate(Name(0)).cost, large.translate(Name(0)).cost);
    }

    #[test]
    fn page_moving_frames_keeps_name_stable() {
        let mut m = atlas_map();
        m.load(FrameNo(0), PageNo(2));
        assert_eq!(m.translate(Name(16)).unwrap_addr(), PhysAddr(0));
        m.unload(FrameNo(0));
        m.load(FrameNo(3), PageNo(2));
        assert_eq!(m.translate(Name(16)).unwrap_addr(), PhysAddr(24));
    }

    #[test]
    fn probed_translation_traces_hits_and_misses() {
        use dsa_probe::{CountingProbe, Stamp};
        let mut m = atlas_map();
        let mut probe = CountingProbe::new();
        m.load(FrameNo(2), PageNo(5));
        let t = m.translate_probed(Name(43), Stamp::vtime(0), &mut probe);
        assert!(t.outcome.is_ok());
        m.translate_probed(Name(0), Stamp::vtime(1), &mut probe); // missing page
        m.translate_probed(Name(64), Stamp::vtime(2), &mut probe); // invalid name
        assert_eq!(probe.map_lookups, 3);
        assert_eq!(probe.map_hits, 1);
        assert_eq!(probe.map_misses, 2);
    }
}
