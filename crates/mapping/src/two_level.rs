//! The two-level mapping scheme of Figure 4.
//!
//! "Name contiguity within segments is provided by a mapping mechanism
//! using two levels of indirect addressing, through a segment table and
//! a set of page tables. ... A small associative memory is used to
//! contain the locations of recently accessed pages in order to reduce
//! the overhead caused by the mapping process" — Appendix A.6; the same
//! basic form, with an eight-word associative memory, appears in the
//! 360/67 (A.7).
//!
//! A [`TwoLevelMap`] resolves `(segment, offset)` pairs: the segment
//! table yields the segment's limit (bounds are checked automatically —
//! special hardware facility (ii)) and its page table; the page table
//! yields the frame. An [`AssocMemory`] in front short-circuits both
//! table references on a hit.

use dsa_core::clock::Cycles;
use dsa_core::error::AccessFault;
use dsa_core::ids::{FrameNo, Name, PageNo, PhysAddr, SegId, Words};
use dsa_probe::{EventKind, Probe, Stamp};

use crate::associative::{AssocMemory, AssocPolicy};
use crate::cost::{MapCosts, MapStats};
use crate::{AddressMap, Translation};

/// One segment's descriptor in the segment table.
#[derive(Clone, Debug)]
pub struct SegmentEntry {
    /// The segment's current extent in words (the limit checked on
    /// every access).
    pub limit: Words,
    /// Frame of each page of the segment; `None` = not in working
    /// storage.
    pub page_table: Vec<Option<FrameNo>>,
}

/// Figure 4's segment-table → page-table mapping device.
#[derive(Clone, Debug)]
pub struct TwoLevelMap {
    page_bits: u32,
    max_segments: u32,
    max_segment_extent: Words,
    segments: Vec<Option<SegmentEntry>>,
    tlb: AssocMemory,
    costs: MapCosts,
    stats: MapStats,
}

impl TwoLevelMap {
    /// Creates the map.
    ///
    /// * `max_segments` — size of the segment table;
    /// * `max_segment_extent` — maximum words per segment;
    /// * `page_bits` — page size is `1 << page_bits` words;
    /// * `tlb_entries`, `tlb_policy` — the associative memory (0 entries
    ///   models its absence).
    ///
    /// # Panics
    ///
    /// Panics if `max_segments` is zero or `page_bits` not in `1..=32`.
    #[must_use]
    pub fn new(
        max_segments: u32,
        max_segment_extent: Words,
        page_bits: u32,
        tlb_entries: usize,
        tlb_policy: AssocPolicy,
        costs: MapCosts,
    ) -> TwoLevelMap {
        assert!(max_segments > 0, "need at least one segment");
        assert!((1..=32).contains(&page_bits), "page_bits out of range");
        TwoLevelMap {
            page_bits,
            max_segments,
            max_segment_extent,
            segments: vec![None; max_segments as usize],
            tlb: AssocMemory::new(tlb_entries, tlb_policy),
            costs,
            stats: MapStats::default(),
        }
    }

    /// Page size in words.
    #[must_use]
    pub fn page_size(&self) -> Words {
        1u64 << self.page_bits
    }

    /// Number of pages needed for a segment of `limit` words.
    #[must_use]
    pub fn pages_for(&self, limit: Words) -> u64 {
        limit.div_ceil(self.page_size())
    }

    /// A globally unique page number for `(seg, page index)`, used in
    /// [`AccessFault::MissingPage`] so fault handlers can locate the
    /// page.
    #[must_use]
    pub fn global_page(&self, seg: SegId, index: u64) -> PageNo {
        PageNo((u64::from(seg.0) << 32) | index)
    }

    /// Decodes a global page number back to `(seg, page index)`.
    #[must_use]
    pub fn decode_page(page: PageNo) -> (SegId, u64) {
        (SegId((page.0 >> 32) as u32), page.0 & 0xFFFF_FFFF)
    }

    /// Creates (or re-creates) segment `seg` with extent `limit`; all
    /// its pages start non-resident.
    ///
    /// # Errors
    ///
    /// Returns [`AccessFault::UnknownSegment`] if `seg` exceeds the
    /// segment table, or [`AccessFault::BoundsViolation`] if `limit`
    /// exceeds the maximum segment extent.
    pub fn create_segment(&mut self, seg: SegId, limit: Words) -> Result<(), AccessFault> {
        if seg.0 >= self.max_segments {
            return Err(AccessFault::UnknownSegment { seg });
        }
        if limit > self.max_segment_extent {
            return Err(AccessFault::BoundsViolation {
                seg,
                offset: limit,
                limit: self.max_segment_extent,
            });
        }
        let pages = self.pages_for(limit) as usize;
        self.segments[seg.0 as usize] = Some(SegmentEntry {
            limit,
            page_table: vec![None; pages],
        });
        self.invalidate_segment_tlb(seg);
        Ok(())
    }

    /// Removes segment `seg`.
    pub fn delete_segment(&mut self, seg: SegId) {
        if let Some(slot) = self.segments.get_mut(seg.0 as usize) {
            *slot = None;
        }
        self.invalidate_segment_tlb(seg);
    }

    /// Changes segment `seg`'s extent; existing page mappings within the
    /// new extent are preserved (a grown segment keeps its resident
    /// pages, a shrunk one drops the tail).
    ///
    /// # Errors
    ///
    /// Returns [`AccessFault::UnknownSegment`] if the segment does not
    /// exist, or [`AccessFault::BoundsViolation`] if the new limit
    /// exceeds the maximum extent.
    pub fn resize_segment(&mut self, seg: SegId, limit: Words) -> Result<(), AccessFault> {
        if limit > self.max_segment_extent {
            return Err(AccessFault::BoundsViolation {
                seg,
                offset: limit,
                limit: self.max_segment_extent,
            });
        }
        let pages = self.pages_for(limit) as usize;
        let entry = self
            .segments
            .get_mut(seg.0 as usize)
            .and_then(Option::as_mut)
            .ok_or(AccessFault::UnknownSegment { seg })?;
        entry.limit = limit;
        entry.page_table.resize(pages, None);
        self.invalidate_segment_tlb(seg);
        Ok(())
    }

    /// Declares that page `index` of `seg` now resides in `frame`.
    ///
    /// # Errors
    ///
    /// Returns [`AccessFault::UnknownSegment`] if the segment does not
    /// exist, or [`AccessFault::MissingPage`] if `index` exceeds its
    /// page table.
    pub fn map_page(&mut self, seg: SegId, index: u64, frame: FrameNo) -> Result<(), AccessFault> {
        let global = self.global_page(seg, index);
        let entry = self
            .segments
            .get_mut(seg.0 as usize)
            .and_then(Option::as_mut)
            .ok_or(AccessFault::UnknownSegment { seg })?;
        let slot = entry
            .page_table
            .get_mut(index as usize)
            .ok_or(AccessFault::MissingPage { page: global })?;
        *slot = Some(frame);
        Ok(())
    }

    /// Removes the residence of page `index` of `seg` (and its TLB
    /// entry, which would otherwise translate stale).
    ///
    /// # Errors
    ///
    /// Returns [`AccessFault::UnknownSegment`] or
    /// [`AccessFault::MissingPage`] as for [`TwoLevelMap::map_page`].
    pub fn unmap_page(&mut self, seg: SegId, index: u64) -> Result<(), AccessFault> {
        let global = self.global_page(seg, index);
        let entry = self
            .segments
            .get_mut(seg.0 as usize)
            .and_then(Option::as_mut)
            .ok_or(AccessFault::UnknownSegment { seg })?;
        let slot = entry
            .page_table
            .get_mut(index as usize)
            .ok_or(AccessFault::MissingPage { page: global })?;
        *slot = None;
        self.tlb.invalidate(global.0);
        Ok(())
    }

    /// The frame holding page `index` of `seg`, if resident.
    #[must_use]
    pub fn frame_of(&self, seg: SegId, index: u64) -> Option<FrameNo> {
        self.segments
            .get(seg.0 as usize)
            .and_then(Option::as_ref)
            .and_then(|e| e.page_table.get(index as usize).copied().flatten())
    }

    /// The segment's current limit, if it exists.
    #[must_use]
    pub fn segment_limit(&self, seg: SegId) -> Option<Words> {
        self.segments
            .get(seg.0 as usize)
            .and_then(Option::as_ref)
            .map(|e| e.limit)
    }

    /// Words of storage the mapping tables themselves occupy (one word
    /// per segment-table entry plus one per page-table entry) — the
    /// "unacceptable amount of overhead" small pages threaten (E6).
    #[must_use]
    pub fn table_words(&self) -> Words {
        self.max_segments as u64
            + self
                .segments
                .iter()
                .flatten()
                .map(|e| e.page_table.len() as u64)
                .sum::<u64>()
    }

    /// Translates an explicit `(segment, offset)` pair — the native
    /// operation of a segmented name space.
    pub fn translate_pair(&mut self, seg: SegId, offset: Words) -> Translation {
        self.stats.translations += 1;
        let mut cost = Cycles::ZERO;
        // The associative memory is searched first (if present).
        let page_index = offset >> self.page_bits;
        let global = self.global_page(seg, page_index);
        cost += self.costs.assoc_search;
        let tlb_hit = self.tlb.lookup(global.0);
        if let Some(frame) = tlb_hit {
            self.stats.assoc_hits += 1;
            // The limit check still happens (it is part of the hardware
            // path), but costs only a register comparison.
            cost += self.costs.register_op;
            let limit = self.segment_limit(seg).unwrap_or(0);
            if offset >= limit {
                self.stats.faults += 1;
                self.stats.cycles += cost;
                return Translation::fault(
                    AccessFault::BoundsViolation { seg, offset, limit },
                    cost,
                );
            }
            let in_page = offset & (self.page_size() - 1);
            self.stats.cycles += cost;
            return Translation::ok(PhysAddr(frame * self.page_size() + in_page), cost);
        }
        self.stats.assoc_misses += 1;
        // Segment-table reference.
        cost += self.costs.table_ref;
        self.stats.table_refs += 1;
        let Some(entry) = self.segments.get(seg.0 as usize).and_then(Option::as_ref) else {
            self.stats.faults += 1;
            self.stats.cycles += cost;
            return Translation::fault(AccessFault::UnknownSegment { seg }, cost);
        };
        if offset >= entry.limit {
            let limit = entry.limit;
            self.stats.faults += 1;
            self.stats.cycles += cost;
            return Translation::fault(AccessFault::BoundsViolation { seg, offset, limit }, cost);
        }
        // Page-table reference.
        cost += self.costs.table_ref;
        self.stats.table_refs += 1;
        match entry.page_table.get(page_index as usize).copied().flatten() {
            Some(frame) => {
                self.tlb.insert(global.0, frame.0);
                let in_page = offset & (self.page_size() - 1);
                self.stats.cycles += cost;
                Translation::ok(PhysAddr(frame.0 * self.page_size() + in_page), cost)
            }
            None => {
                self.stats.faults += 1;
                self.stats.cycles += cost;
                Translation::fault(AccessFault::MissingPage { page: global }, cost)
            }
        }
    }

    /// [`TwoLevelMap::translate_pair`] with event emission: one
    /// `MapLookup` per lookup, `hit` iff the pair resolved to an
    /// address (bounds violations, unknown segments and missing pages
    /// are misses — the traps the mapping hardware exists to spring).
    pub fn translate_pair_probed<P: Probe + ?Sized>(
        &mut self,
        seg: SegId,
        offset: Words,
        at: Stamp,
        probe: &mut P,
    ) -> Translation {
        let t = self.translate_pair(seg, offset);
        probe.emit(
            EventKind::MapLookup {
                hit: t.outcome.is_ok(),
            },
            at,
        );
        t
    }

    /// Hit ratio of the associative memory so far.
    #[must_use]
    pub fn tlb_hit_ratio(&self) -> f64 {
        self.stats.assoc_hit_ratio()
    }

    fn invalidate_segment_tlb(&mut self, seg: SegId) {
        // Global page keys of this segment share the high 32 bits; the
        // TLB is small, so a sweep over its entries is affordable.
        let prefix = u64::from(seg.0) << 32;
        let stale: Vec<u64> = self
            .tlb
            .keys()
            .filter(|k| k & 0xFFFF_FFFF_0000_0000 == prefix)
            .collect();
        for k in stale {
            self.tlb.invalidate(k);
        }
    }
}

impl AddressMap for TwoLevelMap {
    /// Translates a packed name whose most significant bits (above the
    /// per-segment extent) carry the segment number — the 360/67 and
    /// MULTICS convention of placing "a sequence of bits at the most
    /// significant end of the address representation" for the segment.
    fn translate(&mut self, name: Name) -> Translation {
        let offset_bits = self
            .max_segment_extent
            .next_power_of_two()
            .trailing_zeros()
            .max(1) as u64;
        let seg = SegId((name.value() >> offset_bits) as u32);
        let offset = name.value() & ((1u64 << offset_bits) - 1);
        self.translate_pair(seg, offset)
    }

    fn stats(&self) -> &MapStats {
        &self.stats
    }

    fn label(&self) -> &'static str {
        "two-level (seg+page)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(tlb: usize) -> TwoLevelMap {
        // 8 segments, 256-word max extent, 16-word pages.
        TwoLevelMap::new(
            8,
            256,
            4,
            tlb,
            AssocPolicy::Lru,
            MapCosts::for_core_cycle(Cycles::from_micros(1)),
        )
    }

    #[test]
    fn create_map_translate() {
        let mut m = map(4);
        m.create_segment(SegId(2), 100).unwrap();
        m.map_page(SegId(2), 0, FrameNo(5)).unwrap();
        let t = m.translate_pair(SegId(2), 7);
        assert_eq!(t.unwrap_addr(), PhysAddr(5 * 16 + 7));
    }

    #[test]
    fn unknown_segment_faults() {
        let mut m = map(4);
        let t = m.translate_pair(SegId(3), 0);
        assert!(matches!(
            t.outcome,
            Err(AccessFault::UnknownSegment { seg: SegId(3) })
        ));
    }

    #[test]
    fn bounds_are_checked_automatically() {
        let mut m = map(4);
        m.create_segment(SegId(0), 50).unwrap();
        m.map_page(SegId(0), 3, FrameNo(1)).unwrap();
        let t = m.translate_pair(SegId(0), 50);
        assert!(matches!(
            t.outcome,
            Err(AccessFault::BoundsViolation {
                offset: 50,
                limit: 50,
                ..
            })
        ));
    }

    #[test]
    fn missing_page_faults_with_global_number() {
        let mut m = map(4);
        m.create_segment(SegId(1), 64).unwrap();
        let t = m.translate_pair(SegId(1), 20); // page 1 not mapped
        match t.outcome {
            Err(AccessFault::MissingPage { page }) => {
                assert_eq!(TwoLevelMap::decode_page(page), (SegId(1), 1));
            }
            other => panic!("expected missing page, got {other:?}"),
        }
    }

    #[test]
    fn tlb_hit_skips_table_refs() {
        let mut m = map(4);
        m.create_segment(SegId(0), 64).unwrap();
        m.map_page(SegId(0), 0, FrameNo(9)).unwrap();
        let miss = m.translate_pair(SegId(0), 1);
        let hit = m.translate_pair(SegId(0), 2);
        assert!(
            hit.cost < miss.cost,
            "hit {:?} !< miss {:?}",
            hit.cost,
            miss.cost
        );
        assert_eq!(m.stats().assoc_hits, 1);
        assert_eq!(m.stats().assoc_misses, 1);
        assert_eq!(m.stats().table_refs, 2);
    }

    #[test]
    fn without_tlb_every_ref_walks_tables() {
        let mut m = map(0);
        m.create_segment(SegId(0), 64).unwrap();
        m.map_page(SegId(0), 0, FrameNo(9)).unwrap();
        m.translate_pair(SegId(0), 1);
        m.translate_pair(SegId(0), 2);
        assert_eq!(m.stats().table_refs, 4);
        assert_eq!(m.stats().assoc_hits, 0);
    }

    #[test]
    fn tlb_hit_still_enforces_bounds() {
        let mut m = map(4);
        m.create_segment(SegId(0), 40).unwrap();
        m.map_page(SegId(0), 2, FrameNo(1)).unwrap();
        assert!(m.translate_pair(SegId(0), 35).outcome.is_ok()); // loads TLB for page 2
                                                                 // Shrink below 35: page-2 TLB entry is invalidated by resize.
        m.resize_segment(SegId(0), 33).unwrap();
        let t = m.translate_pair(SegId(0), 35);
        assert!(
            matches!(t.outcome, Err(AccessFault::BoundsViolation { .. })),
            "{t:?}"
        );
    }

    #[test]
    fn unmap_invalidates_tlb() {
        let mut m = map(4);
        m.create_segment(SegId(0), 64).unwrap();
        m.map_page(SegId(0), 0, FrameNo(3)).unwrap();
        m.translate_pair(SegId(0), 0); // TLB now holds (s0,p0)->f3
        m.unmap_page(SegId(0), 0).unwrap();
        let t = m.translate_pair(SegId(0), 0);
        assert!(
            matches!(t.outcome, Err(AccessFault::MissingPage { .. })),
            "stale TLB entry used"
        );
    }

    #[test]
    fn delete_segment_invalidates_tlb() {
        let mut m = map(4);
        m.create_segment(SegId(0), 64).unwrap();
        m.map_page(SegId(0), 0, FrameNo(3)).unwrap();
        m.translate_pair(SegId(0), 0);
        m.delete_segment(SegId(0));
        let t = m.translate_pair(SegId(0), 0);
        assert!(
            matches!(t.outcome, Err(AccessFault::UnknownSegment { .. })),
            "{t:?}"
        );
    }

    #[test]
    fn resize_grows_and_shrinks_page_table() {
        let mut m = map(4);
        m.create_segment(SegId(0), 32).unwrap(); // 2 pages
        m.map_page(SegId(0), 1, FrameNo(7)).unwrap();
        m.resize_segment(SegId(0), 64).unwrap(); // 4 pages
        assert_eq!(
            m.frame_of(SegId(0), 1),
            Some(FrameNo(7)),
            "grow keeps pages"
        );
        assert!(m.map_page(SegId(0), 3, FrameNo(8)).is_ok());
        m.resize_segment(SegId(0), 16).unwrap(); // 1 page
        assert_eq!(m.frame_of(SegId(0), 1), None, "shrink drops tail");
        assert_eq!(m.segment_limit(SegId(0)), Some(16));
    }

    #[test]
    fn create_rejects_oversize_and_out_of_table() {
        let mut m = map(4);
        assert!(m.create_segment(SegId(0), 257).is_err());
        assert!(m.create_segment(SegId(8), 10).is_err());
        assert!(
            m.resize_segment(SegId(0), 10).is_err(),
            "resize of nonexistent segment"
        );
    }

    #[test]
    fn table_words_track_segments() {
        let mut m = map(4);
        assert_eq!(m.table_words(), 8);
        m.create_segment(SegId(0), 64).unwrap(); // 4 pages
        assert_eq!(m.table_words(), 12);
        m.create_segment(SegId(1), 16).unwrap(); // 1 page
        assert_eq!(m.table_words(), 13);
        m.delete_segment(SegId(0));
        assert_eq!(m.table_words(), 9);
    }

    #[test]
    fn packed_names_split_on_extent_bits() {
        let mut m = map(4);
        m.create_segment(SegId(1), 256).unwrap();
        m.map_page(SegId(1), 0, FrameNo(0)).unwrap();
        // offset_bits = 8 for a 256-word extent: name = seg<<8 | offset.
        let t = m.translate(Name((1 << 8) | 5));
        assert_eq!(t.unwrap_addr(), PhysAddr(5));
    }

    #[test]
    fn pages_for_rounds_up() {
        let m = map(0);
        assert_eq!(m.pages_for(0), 0);
        assert_eq!(m.pages_for(1), 1);
        assert_eq!(m.pages_for(16), 1);
        assert_eq!(m.pages_for(17), 2);
    }

    #[test]
    fn hit_ratio_reported() {
        let mut m = map(8);
        m.create_segment(SegId(0), 64).unwrap();
        m.map_page(SegId(0), 0, FrameNo(0)).unwrap();
        for _ in 0..10 {
            m.translate_pair(SegId(0), 3);
        }
        assert!((m.tlb_hit_ratio() - 0.9).abs() < 1e-9);
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;

    #[test]
    fn packed_name_with_out_of_table_segment_bits() {
        let mut m = TwoLevelMap::new(
            4,
            256,
            4,
            0,
            AssocPolicy::Lru,
            MapCosts::for_core_cycle(Cycles::from_micros(1)),
        );
        // offset_bits = 8; segment field = 9 exceeds the 4-entry table.
        let t = m.translate(Name((9u64 << 8) | 3));
        assert!(matches!(
            t.outcome,
            Err(AccessFault::UnknownSegment { seg: SegId(9) })
        ));
    }

    #[test]
    fn zero_length_segment_has_no_valid_offset() {
        let mut m = TwoLevelMap::new(4, 256, 4, 0, AssocPolicy::Lru, MapCosts::zero());
        m.create_segment(SegId(0), 0)
            .expect("empty segments are declarable");
        assert!(matches!(
            m.translate_pair(SegId(0), 0).outcome,
            Err(AccessFault::BoundsViolation { limit: 0, .. })
        ));
        assert_eq!(m.pages_for(0), 0);
    }
}

#[cfg(test)]
mod probe_tests {
    use super::*;
    use dsa_probe::{CountingProbe, Stamp};

    #[test]
    fn probed_pair_translation_traces_hits_and_misses() {
        let costs = MapCosts::for_core_cycle(Cycles::from_micros(1));
        let mut m = TwoLevelMap::new(4, 64, 4, 8, AssocPolicy::Lru, costs);
        m.create_segment(SegId(0), 64).expect("fits");
        m.map_page(SegId(0), 0, FrameNo(3)).expect("page");
        let mut probe = CountingProbe::new();
        let ok = m.translate_pair_probed(SegId(0), 5, Stamp::vtime(0), &mut probe);
        assert!(ok.outcome.is_ok());
        // Missing page, unknown segment, bounds violation: all misses.
        m.translate_pair_probed(SegId(0), 17, Stamp::vtime(1), &mut probe);
        m.translate_pair_probed(SegId(3), 0, Stamp::vtime(2), &mut probe);
        m.translate_pair_probed(SegId(0), 900, Stamp::vtime(3), &mut probe);
        assert_eq!(probe.map_lookups, 4);
        assert_eq!(probe.map_hits, 1);
        assert_eq!(probe.map_misses, 3);
    }
}
