//! Address mapping devices.
//!
//! "The information stored in a computer is in general accessed using
//! numerical addresses" — and everything this paper studies lives in the
//! path between a *name* and the *absolute address* it resolves to. This
//! crate implements that path for every mechanism the paper describes:
//!
//! * [`relocation::IdentityMap`] — names *are* absolute addresses (early
//!   machines; the IBM 7094's linear name space);
//! * [`relocation::RelocationLimit`] — the relocation-register /
//!   limit-register pair;
//! * [`block_map::BlockMap`] — Figure 2's "simple mapping scheme": the
//!   most significant bits of the name index a table of block addresses,
//!   giving artificial contiguity (Figure 1);
//! * [`associative::FrameAssociativeMap`] — the ATLAS scheme: one
//!   associative register per page frame performs the mapping directly;
//! * [`two_level::TwoLevelMap`] — Figure 4's segment-table → page-table
//!   scheme (MULTICS, 360/67), with an optional associative memory
//!   ([`associative::AssocMemory`]) holding recently used page locations
//!   to cut the mapping overhead (special hardware facility (vi)).
//!
//! Every device implements [`AddressMap`]: translation yields an
//! absolute address or an [`AccessFault`], *plus* the machine time the
//! translation consumed — the paper's recurring concern that mapping
//! complexity "can possibly cause a significant increase in the time
//! taken to address storage".

pub mod associative;
pub mod block_map;
pub mod cost;
pub mod relocation;
pub mod two_level;

use dsa_core::clock::Cycles;
use dsa_core::error::AccessFault;
use dsa_core::ids::{Name, PhysAddr};
use dsa_probe::{EventKind, Probe, Stamp};

pub use associative::{AssocMemory, AssocPolicy, FrameAssociativeMap};
pub use block_map::BlockMap;
pub use cost::{MapCosts, MapStats};
pub use relocation::{IdentityMap, RelocationLimit};
pub use two_level::{SegmentEntry, TwoLevelMap};

/// The result of one translation: the outcome and its cost.
#[derive(Clone, Copy, Debug)]
pub struct Translation {
    /// The absolute address, or the fault the hardware trapped.
    pub outcome: Result<PhysAddr, AccessFault>,
    /// Machine time consumed by the addressing mechanism itself
    /// (excluding the storage access the address is for).
    pub cost: Cycles,
}

impl Translation {
    /// Convenience constructor for a successful translation.
    #[must_use]
    pub fn ok(addr: PhysAddr, cost: Cycles) -> Translation {
        Translation {
            outcome: Ok(addr),
            cost,
        }
    }

    /// Convenience constructor for a trapped fault.
    #[must_use]
    pub fn fault(f: AccessFault, cost: Cycles) -> Translation {
        Translation {
            outcome: Err(f),
            cost,
        }
    }

    /// The absolute address, panicking on fault (test helper).
    ///
    /// # Panics
    ///
    /// Panics if the translation faulted.
    // Documented panicking test helper; callers wanting the fault use
    // `outcome` directly.
    #[allow(clippy::expect_used)]
    #[must_use]
    pub fn unwrap_addr(self) -> PhysAddr {
        self.outcome.expect("translation faulted")
    }
}

/// A device in the addressing path.
pub trait AddressMap {
    /// Translates `name` to an absolute address, charging the mapping
    /// cost.
    fn translate(&mut self, name: Name) -> Translation;

    /// [`AddressMap::translate`] with event emission: one `MapLookup`
    /// per lookup, `hit` iff the translation resolved to an address
    /// (a missing page or an invalid name is a miss — the deflection
    /// the paper's trapping hardware exists to catch).
    fn translate_probed<P: Probe + ?Sized>(
        &mut self,
        name: Name,
        at: Stamp,
        probe: &mut P,
    ) -> Translation
    where
        Self: Sized,
    {
        let t = self.translate(name);
        probe.emit(
            EventKind::MapLookup {
                hit: t.outcome.is_ok(),
            },
            at,
        );
        t
    }

    /// Cumulative statistics for the device.
    fn stats(&self) -> &MapStats;

    /// A short label for experiment tables.
    fn label(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn translation_helpers() {
        let t = Translation::ok(PhysAddr(9), Cycles::from_nanos(100));
        assert_eq!(t.unwrap_addr(), PhysAddr(9));
        let f = Translation::fault(
            AccessFault::MissingPage {
                page: dsa_core::ids::PageNo(1),
            },
            Cycles::ZERO,
        );
        assert!(f.outcome.is_err());
    }

    #[test]
    #[should_panic(expected = "translation faulted")]
    fn unwrap_addr_panics_on_fault() {
        let _ = Translation::fault(
            AccessFault::MissingPage {
                page: dsa_core::ids::PageNo(1),
            },
            Cycles::ZERO,
        )
        .unwrap_addr();
    }
}
