//! Identity addressing and the relocation/limit register pair.
//!
//! "The next level in sophistication is obtained in many systems by
//! providing a relocation register, limit register pair. All name
//! representations are checked against the contents of the limit
//! register and then have the contents of the relocation register added
//! to them" — §Storage Addressing.

use dsa_core::error::AccessFault;
use dsa_core::ids::{Name, PhysAddr, Words};

use crate::cost::{MapCosts, MapStats};
use crate::{AddressMap, Translation};

/// Names are used directly as absolute addresses, checked only against
/// the physical extent.
#[derive(Clone, Debug)]
pub struct IdentityMap {
    extent: Words,
    costs: MapCosts,
    stats: MapStats,
}

impl IdentityMap {
    /// Creates an identity map over `extent` words of storage.
    #[must_use]
    pub fn new(extent: Words, costs: MapCosts) -> IdentityMap {
        IdentityMap {
            extent,
            costs,
            stats: MapStats::default(),
        }
    }
}

impl AddressMap for IdentityMap {
    fn translate(&mut self, name: Name) -> Translation {
        self.stats.translations += 1;
        let cost = self.costs.register_op; // the bounds check
        self.stats.cycles += cost;
        if name.value() < self.extent {
            Translation::ok(PhysAddr(name.value()), cost)
        } else {
            self.stats.faults += 1;
            Translation::fault(
                AccessFault::InvalidName {
                    name,
                    extent: self.extent,
                },
                cost,
            )
        }
    }

    fn stats(&self) -> &MapStats {
        &self.stats
    }

    fn label(&self) -> &'static str {
        "identity"
    }
}

/// The relocation-register / limit-register pair: a linear name space of
/// `limit` names starting at an arbitrary base address.
#[derive(Clone, Debug)]
pub struct RelocationLimit {
    base: PhysAddr,
    limit: Words,
    costs: MapCosts,
    stats: MapStats,
}

impl RelocationLimit {
    /// Creates a pair mapping names `0..limit` onto addresses
    /// `base..base+limit`.
    #[must_use]
    pub fn new(base: PhysAddr, limit: Words, costs: MapCosts) -> RelocationLimit {
        RelocationLimit {
            base,
            limit,
            costs,
            stats: MapStats::default(),
        }
    }

    /// Moves the mapped region: the program's names are unchanged — this
    /// is exactly the relocatability the paper says motivates keeping
    /// absolute addresses out of programs.
    pub fn relocate(&mut self, new_base: PhysAddr) {
        self.base = new_base;
    }

    /// The current base address.
    #[must_use]
    pub fn base(&self) -> PhysAddr {
        self.base
    }

    /// The limit (extent of the name space).
    #[must_use]
    pub fn limit(&self) -> Words {
        self.limit
    }
}

impl AddressMap for RelocationLimit {
    fn translate(&mut self, name: Name) -> Translation {
        self.stats.translations += 1;
        // Limit check plus relocation add: two register operations.
        let cost = self.costs.register_op * 2;
        self.stats.cycles += cost;
        if name.value() < self.limit {
            Translation::ok(self.base.offset(name.value()), cost)
        } else {
            self.stats.faults += 1;
            Translation::fault(
                AccessFault::InvalidName {
                    name,
                    extent: self.limit,
                },
                cost,
            )
        }
    }

    fn stats(&self) -> &MapStats {
        &self.stats
    }

    fn label(&self) -> &'static str {
        "relocation+limit"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsa_core::clock::Cycles;

    fn costs() -> MapCosts {
        MapCosts::for_core_cycle(Cycles::from_micros(1))
    }

    #[test]
    fn identity_passes_names_through() {
        let mut m = IdentityMap::new(100, costs());
        assert_eq!(m.translate(Name(42)).unwrap_addr(), PhysAddr(42));
        assert!(m.translate(Name(100)).outcome.is_err());
        assert_eq!(m.stats().translations, 2);
        assert_eq!(m.stats().faults, 1);
    }

    #[test]
    fn relocation_adds_base_after_limit_check() {
        let mut m = RelocationLimit::new(PhysAddr(1000), 50, costs());
        assert_eq!(m.translate(Name(0)).unwrap_addr(), PhysAddr(1000));
        assert_eq!(m.translate(Name(49)).unwrap_addr(), PhysAddr(1049));
        let t = m.translate(Name(50));
        assert!(matches!(
            t.outcome,
            Err(AccessFault::InvalidName { extent: 50, .. })
        ));
    }

    #[test]
    fn relocation_is_transparent_to_names() {
        let mut m = RelocationLimit::new(PhysAddr(0), 10, costs());
        let before = m.translate(Name(3)).unwrap_addr();
        m.relocate(PhysAddr(500));
        let after = m.translate(Name(3)).unwrap_addr();
        assert_eq!(before, PhysAddr(3));
        assert_eq!(after, PhysAddr(503));
        assert_eq!(m.base(), PhysAddr(500));
        assert_eq!(m.limit(), 10);
    }

    #[test]
    fn costs_are_charged() {
        let mut m = RelocationLimit::new(PhysAddr(0), 10, costs());
        let t = m.translate(Name(1));
        assert_eq!(t.cost, Cycles::from_nanos(200));
        assert_eq!(m.stats().cycles, Cycles::from_nanos(200));
        let mut id = IdentityMap::new(10, costs());
        assert!(id.translate(Name(1)).cost < t.cost);
    }

    #[test]
    fn labels() {
        assert_eq!(IdentityMap::new(1, costs()).label(), "identity");
        assert_eq!(
            RelocationLimit::new(PhysAddr(0), 1, costs()).label(),
            "relocation+limit"
        );
    }
}
