//! The single-level block map of Figure 2.
//!
//! "The mapping is usually based on the use of a group of the most
//! significant bits of the name. A set of separate blocks of locations,
//! whose absolute addresses are contiguous, can then be made to
//! correspond to a single set of contiguous names" — §Artificial
//! Contiguity, Figures 1 and 2.
//!
//! A [`BlockMap`] divides the name space into power-of-two blocks; the
//! high bits of a name index a *table of block addresses*, the low bits
//! are the offset within the block. An unmapped entry traps (special
//! hardware facility (v)) — this single device therefore provides both
//! artificial contiguity and the hook demand paging hangs on.

use dsa_core::error::AccessFault;
use dsa_core::ids::{Name, PageNo, PhysAddr, Words};

use crate::cost::{MapCosts, MapStats};
use crate::{AddressMap, Translation};

/// Figure 2's table-of-block-addresses mapping device.
#[derive(Clone, Debug)]
pub struct BlockMap {
    block_bits: u32,
    table: Vec<Option<PhysAddr>>,
    costs: MapCosts,
    stats: MapStats,
}

impl BlockMap {
    /// Creates a map over a name space of `blocks << block_bits` names,
    /// with all entries unmapped.
    ///
    /// # Panics
    ///
    /// Panics if `block_bits` is not in `1..=32` or `blocks` is zero.
    #[must_use]
    pub fn new(blocks: usize, block_bits: u32, costs: MapCosts) -> BlockMap {
        assert!((1..=32).contains(&block_bits), "block_bits out of range");
        assert!(blocks > 0, "need at least one block");
        BlockMap {
            block_bits,
            table: vec![None; blocks],
            costs,
            stats: MapStats::default(),
        }
    }

    /// The block size in words.
    #[must_use]
    pub fn block_size(&self) -> Words {
        1u64 << self.block_bits
    }

    /// The extent of the name space this map provides.
    #[must_use]
    pub fn name_extent(&self) -> Words {
        self.table.len() as u64 * self.block_size()
    }

    /// Splits a name into `(block index, offset)`.
    #[must_use]
    pub fn split(&self, name: Name) -> (u64, u64) {
        (
            name.value() >> self.block_bits,
            name.value() & (self.block_size() - 1),
        )
    }

    /// Maps block `index` to the physical block starting at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of table range (a configuration error,
    /// not a program fault).
    pub fn map_block(&mut self, index: u64, base: PhysAddr) {
        self.table[index as usize] = Some(base);
    }

    /// Unmaps block `index`; subsequent references trap.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of table range.
    pub fn unmap_block(&mut self, index: u64) {
        self.table[index as usize] = None;
    }

    /// Current mapping of block `index`, if any.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of table range.
    #[must_use]
    pub fn block_base(&self, index: u64) -> Option<PhysAddr> {
        self.table[index as usize]
    }

    /// Number of currently mapped blocks.
    #[must_use]
    pub fn mapped_blocks(&self) -> usize {
        self.table.iter().filter(|e| e.is_some()).count()
    }
}

impl AddressMap for BlockMap {
    fn translate(&mut self, name: Name) -> Translation {
        self.stats.translations += 1;
        // One reference to the table of block addresses.
        let cost = self.costs.table_ref;
        self.stats.table_refs += 1;
        self.stats.cycles += cost;
        let (block, offset) = self.split(name);
        match self.table.get(block as usize) {
            Some(Some(base)) => Translation::ok(base.offset(offset), cost),
            Some(None) => {
                self.stats.faults += 1;
                Translation::fault(
                    AccessFault::MissingPage {
                        page: PageNo(block),
                    },
                    cost,
                )
            }
            None => {
                self.stats.faults += 1;
                Translation::fault(
                    AccessFault::InvalidName {
                        name,
                        extent: self.name_extent(),
                    },
                    cost,
                )
            }
        }
    }

    fn stats(&self) -> &MapStats {
        &self.stats
    }

    fn label(&self) -> &'static str {
        "block map"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsa_core::clock::Cycles;

    fn map() -> BlockMap {
        // 4 blocks of 16 words: names 0..64.
        BlockMap::new(4, 4, MapCosts::for_core_cycle(Cycles::from_micros(1)))
    }

    #[test]
    fn split_uses_high_bits() {
        let m = map();
        assert_eq!(m.split(Name(0)), (0, 0));
        assert_eq!(m.split(Name(15)), (0, 15));
        assert_eq!(m.split(Name(16)), (1, 0));
        assert_eq!(m.split(Name(63)), (3, 15));
        assert_eq!(m.block_size(), 16);
        assert_eq!(m.name_extent(), 64);
    }

    #[test]
    fn scattered_blocks_form_contiguous_names() {
        let mut m = map();
        // Physically scattered, even out of order.
        m.map_block(0, PhysAddr(400));
        m.map_block(1, PhysAddr(112));
        m.map_block(2, PhysAddr(256));
        m.map_block(3, PhysAddr(0));
        // Names 15 and 16 are contiguous, though addresses are not.
        let a15 = m.translate(Name(15)).unwrap_addr();
        let a16 = m.translate(Name(16)).unwrap_addr();
        assert_eq!(a15, PhysAddr(415));
        assert_eq!(a16, PhysAddr(112));
        assert_eq!(m.translate(Name(63)).unwrap_addr(), PhysAddr(15));
    }

    #[test]
    fn unmapped_block_traps_missing_page() {
        let mut m = map();
        m.map_block(0, PhysAddr(0));
        let t = m.translate(Name(20));
        assert!(matches!(
            t.outcome,
            Err(AccessFault::MissingPage { page: PageNo(1) })
        ));
        assert_eq!(m.stats().faults, 1);
    }

    #[test]
    fn out_of_extent_name_is_invalid() {
        let mut m = map();
        let t = m.translate(Name(64));
        assert!(matches!(
            t.outcome,
            Err(AccessFault::InvalidName { extent: 64, .. })
        ));
    }

    #[test]
    fn remap_moves_the_block_invisibly() {
        let mut m = map();
        m.map_block(2, PhysAddr(100));
        assert_eq!(m.translate(Name(33)).unwrap_addr(), PhysAddr(101));
        m.map_block(2, PhysAddr(500)); // page moved to a different frame
        assert_eq!(m.translate(Name(33)).unwrap_addr(), PhysAddr(501));
    }

    #[test]
    fn unmap_and_count() {
        let mut m = map();
        m.map_block(0, PhysAddr(0));
        m.map_block(1, PhysAddr(16));
        assert_eq!(m.mapped_blocks(), 2);
        m.unmap_block(0);
        assert_eq!(m.mapped_blocks(), 1);
        assert_eq!(m.block_base(0), None);
        assert_eq!(m.block_base(1), Some(PhysAddr(16)));
    }

    #[test]
    fn every_translation_costs_one_table_ref() {
        let mut m = map();
        m.map_block(0, PhysAddr(0));
        for i in 0..10 {
            m.translate(Name(i % 16));
        }
        assert_eq!(m.stats().table_refs, 10);
        assert_eq!(m.stats().cycles, Cycles::from_micros(10));
    }
}
