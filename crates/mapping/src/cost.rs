//! Mapping cost parameters and statistics.

use core::fmt;

use dsa_core::clock::Cycles;

/// Timing parameters of the addressing hardware.
///
/// Every mapping device is built from two primitive operations: a
/// reference to mapping information held in (fast) storage, and a
/// parallel search of an associative memory. The paper's worry — "the
/// cost in extra addressing time caused by the provision of, say,
/// segmentation and artificial name contiguity, would often be
/// unacceptable" were it not for associative memories — is a statement
/// about the ratio of these two numbers to the core cycle time.
#[derive(Clone, Copy, Debug)]
pub struct MapCosts {
    /// One reference to a mapping table held in core (or a dedicated
    /// mapping store).
    pub table_ref: Cycles,
    /// One search of the associative memory, regardless of size (the
    /// match is parallel).
    pub assoc_search: Cycles,
    /// Register-only work (adding a relocation register, checking a
    /// limit): charged per translation that uses it.
    pub register_op: Cycles,
}

impl MapCosts {
    /// Costs scaled to a machine whose core cycle time is `cycle`:
    /// table references cost a full cycle, associative search a fifth of
    /// one, register operations a tenth.
    #[must_use]
    pub fn for_core_cycle(cycle: Cycles) -> MapCosts {
        MapCosts {
            table_ref: cycle,
            assoc_search: Cycles::from_nanos((cycle.as_nanos() / 5).max(1)),
            register_op: Cycles::from_nanos((cycle.as_nanos() / 10).max(1)),
        }
    }

    /// Free addressing (useful as an experimental control).
    #[must_use]
    pub fn zero() -> MapCosts {
        MapCosts {
            table_ref: Cycles::ZERO,
            assoc_search: Cycles::ZERO,
            register_op: Cycles::ZERO,
        }
    }
}

impl Default for MapCosts {
    fn default() -> Self {
        MapCosts::for_core_cycle(Cycles::from_micros(1))
    }
}

/// Cumulative statistics for a mapping device.
#[derive(Clone, Copy, Debug, Default)]
pub struct MapStats {
    /// Translations attempted.
    pub translations: u64,
    /// Translations that trapped a fault.
    pub faults: u64,
    /// Total machine time spent in the addressing mechanism.
    pub cycles: Cycles,
    /// Associative-memory hits (zero for devices without one).
    pub assoc_hits: u64,
    /// Associative-memory misses.
    pub assoc_misses: u64,
    /// References made to mapping tables in storage.
    pub table_refs: u64,
}

impl MapStats {
    /// Mean addressing overhead per translation, in nanoseconds.
    #[must_use]
    pub fn mean_overhead_nanos(&self) -> f64 {
        if self.translations == 0 {
            0.0
        } else {
            self.cycles.as_nanos() as f64 / self.translations as f64
        }
    }

    /// Associative-memory hit ratio, or 0 when it was never consulted.
    #[must_use]
    pub fn assoc_hit_ratio(&self) -> f64 {
        let total = self.assoc_hits + self.assoc_misses;
        if total == 0 {
            0.0
        } else {
            self.assoc_hits as f64 / total as f64
        }
    }
}

impl fmt::Display for MapStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} translations, {} faults, {:.0}ns/ref overhead, assoc hit {:.1}%",
            self.translations,
            self.faults,
            self.mean_overhead_nanos(),
            self.assoc_hit_ratio() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_costs_preserve_ratios() {
        let c = MapCosts::for_core_cycle(Cycles::from_micros(2));
        assert_eq!(c.table_ref, Cycles::from_micros(2));
        assert_eq!(c.assoc_search, Cycles::from_nanos(400));
        assert_eq!(c.register_op, Cycles::from_nanos(200));
    }

    #[test]
    fn tiny_cycles_never_round_to_zero() {
        let c = MapCosts::for_core_cycle(Cycles::from_nanos(3));
        assert!(c.assoc_search.as_nanos() >= 1);
        assert!(c.register_op.as_nanos() >= 1);
    }

    #[test]
    fn stats_ratios() {
        let mut s = MapStats::default();
        assert_eq!(s.mean_overhead_nanos(), 0.0);
        assert_eq!(s.assoc_hit_ratio(), 0.0);
        s.translations = 4;
        s.cycles = Cycles::from_nanos(400);
        s.assoc_hits = 3;
        s.assoc_misses = 1;
        assert_eq!(s.mean_overhead_nanos(), 100.0);
        assert_eq!(s.assoc_hit_ratio(), 0.75);
    }

    #[test]
    fn display_is_compact() {
        let s = MapStats {
            translations: 10,
            faults: 1,
            cycles: Cycles::from_nanos(1000),
            assoc_hits: 5,
            assoc_misses: 5,
            table_refs: 7,
        };
        let txt = s.to_string();
        assert!(txt.contains("10 translations"), "{txt}");
        assert!(txt.contains("50.0%"), "{txt}");
    }
}
