//! Property-based tests on the addressing mechanisms.

use dsa::core::clock::Cycles;
use dsa::core::error::AccessFault;
use dsa::core::ids::{FrameNo, Name, PhysAddr, SegId};
use dsa::mapping::associative::AssocPolicy;
use dsa::mapping::{
    AddressMap, AssocMemory, BlockMap, FrameAssociativeMap, MapCosts, RelocationLimit, TwoLevelMap,
};
use proptest::prelude::*;
use std::collections::HashMap;

fn costs() -> MapCosts {
    MapCosts::for_core_cycle(Cycles::from_micros(1))
}

proptest! {
    /// A block map is injective over mapped names when its blocks are
    /// disjoint: two different names never translate to the same
    /// address.
    #[test]
    fn block_map_is_injective(perm in prop::sample::subsequence((0u64..16).collect::<Vec<_>>(), 4..16)) {
        // Map blocks to disjoint physical slots given by a permutation
        // sample.
        let mut m = BlockMap::new(16, 4, costs());
        for (i, &slot) in perm.iter().enumerate() {
            m.map_block(i as u64, PhysAddr(slot * 16));
        }
        let mut seen: HashMap<u64, u64> = HashMap::new();
        for name in 0..(perm.len() as u64 * 16) {
            let t = m.translate(Name(name));
            let addr = t.outcome.expect("mapped").value();
            if let Some(prev) = seen.insert(addr, name) {
                prop_assert!(false, "names {prev} and {name} alias address {addr}");
            }
        }
    }

    /// Consecutive names inside one block map to consecutive addresses
    /// (name contiguity within the block is real).
    #[test]
    fn block_map_preserves_in_block_contiguity(base in 0u64..1000) {
        let mut m = BlockMap::new(4, 6, costs());
        for b in 0..4 {
            m.map_block(b, PhysAddr(base + b * 1000));
        }
        for name in 0..(4 * 64 - 1) {
            let a = m.translate(Name(name)).outcome.expect("mapped");
            let b = m.translate(Name(name + 1)).outcome.expect("mapped");
            if (name + 1) % 64 != 0 {
                prop_assert_eq!(b.value(), a.value() + 1);
            }
        }
    }

    /// The frame-associative map and a shadow table always agree.
    #[test]
    fn frame_associative_matches_shadow(loads in prop::collection::vec((0u64..8, 0u64..32), 1..40)) {
        let mut m = FrameAssociativeMap::new(8, 4, 32 * 16, costs());
        let mut shadow: HashMap<u64, u64> = HashMap::new(); // page -> frame
        for &(frame, page) in &loads {
            // Unload whatever the frame held, and any other frame
            // holding this page (a page lives in at most one frame).
            shadow.retain(|_, &mut f| f != frame);
            if let Some(old_frame) = shadow.get(&page).copied() {
                m.unload(FrameNo(old_frame));
                shadow.remove(&page);
            }
            m.load(FrameNo(frame), dsa::core::ids::PageNo(page));
            shadow.insert(page, frame);
        }
        for page in 0..32u64 {
            let name = Name(page * 16 + 3);
            let t = m.translate(name);
            match shadow.get(&page) {
                Some(&frame) => {
                    prop_assert_eq!(t.outcome.expect("resident"), PhysAddr(frame * 16 + 3));
                }
                None => {
                    let missing = matches!(t.outcome, Err(AccessFault::MissingPage { .. }));
                    prop_assert!(missing, "expected a page trap for page {}", page);
                }
            }
        }
    }

    /// The TLB is invisible to correctness: a two-level map with and
    /// without an associative memory translates every access to the
    /// same outcome (only the cost differs).
    #[test]
    fn tlb_never_changes_outcomes(
        accesses in prop::collection::vec((0u32..6, 0u64..300), 1..300),
        tlb in 1usize..16,
    ) {
        let build = |tlb: usize| {
            let mut m = TwoLevelMap::new(6, 256, 4, tlb, AssocPolicy::Lru, costs());
            for s in 0..6u32 {
                let limit = 64 + u64::from(s) * 32; // varied limits
                m.create_segment(SegId(s), limit).expect("fits");
                for p in 0..limit.div_ceil(16) {
                    if (p + u64::from(s)) % 3 != 0 {
                        m.map_page(SegId(s), p, FrameNo(u64::from(s) * 16 + p)).expect("page");
                    }
                }
            }
            m
        };
        let mut with = build(tlb);
        let mut without = build(0);
        for &(seg, off) in &accesses {
            let a = with.translate_pair(SegId(seg), off);
            let b = without.translate_pair(SegId(seg), off);
            match (a.outcome, b.outcome) {
                (Ok(x), Ok(y)) => prop_assert_eq!(x, y),
                (Err(x), Err(y)) => prop_assert_eq!(format!("{x:?}"), format!("{y:?}")),
                (x, y) => prop_assert!(false, "diverged: {x:?} vs {y:?}"),
            }
            prop_assert!(a.cost <= b.cost, "the TLB may only make access cheaper");
        }
    }

    /// Relocation is transparent: moving the base changes every address
    /// by exactly the base delta and faults identically.
    #[test]
    fn relocation_is_uniform_shift(base1 in 0u64..5000, base2 in 0u64..5000, limit in 1u64..500) {
        let mut m1 = RelocationLimit::new(PhysAddr(base1), limit, costs());
        let mut m2 = RelocationLimit::new(PhysAddr(base2), limit, costs());
        for name in 0..(limit + 10) {
            let a = m1.translate(Name(name));
            let b = m2.translate(Name(name));
            match (a.outcome, b.outcome) {
                (Ok(x), Ok(y)) => {
                    prop_assert_eq!(x.value() as i128 - base1 as i128,
                                    y.value() as i128 - base2 as i128);
                }
                (Err(_), Err(_)) => {}
                (x, y) => prop_assert!(false, "fault behaviour diverged: {x:?} vs {y:?}"),
            }
        }
    }

    /// An LRU associative memory behaves like a textbook LRU cache.
    #[test]
    fn assoc_memory_is_lru(keys in prop::collection::vec(0u64..12, 1..200), cap in 1usize..8) {
        let mut mem = AssocMemory::new(cap, AssocPolicy::Lru);
        // Shadow model: recency list, most recent last.
        let mut shadow: Vec<u64> = Vec::new();
        for &k in &keys {
            let hit = mem.lookup(k).is_some();
            let shadow_hit = shadow.contains(&k);
            prop_assert_eq!(hit, shadow_hit, "hit state diverged on key {}", k);
            shadow.retain(|&x| x != k);
            shadow.push(k);
            if !hit {
                mem.insert(k, k * 10);
                if shadow.len() > cap {
                    shadow.remove(0);
                }
            }
        }
    }
}
