//! Parity between the one-pass stack-distance engine and the
//! `PagedMemory` simulator: for the stack policies (LRU and MIN), the
//! success function's fault count at **every** frame count must equal a
//! per-size simulation, fault for fault, on every reference-string
//! regime the experiments use. This is the license for experiments
//! E4/E6/E12 to draw whole Belady curves from a single traversal.

use dsa::core::ids::PageNo;
use dsa::paging::paged::PagedMemory;
use dsa::paging::{LruRepl, MinRepl};
use dsa::stackdist::{lru_distances, opt_distances, StackDistances};
use dsa::trace::refstring::{distinct_pages, RefStringCfg};
use dsa::trace::rng::Rng64;
use proptest::prelude::*;

const LEN: usize = 3_000;

/// Every regime experiment E4 sweeps, parameterized the same way.
fn regime(index: usize) -> RefStringCfg {
    match index {
        0 => RefStringCfg::Uniform { pages: 24 },
        1 => RefStringCfg::LruStack {
            pages: 24,
            theta: 0.9,
        },
        2 => RefStringCfg::WorkingSetPhases {
            pages: 24,
            set: 6,
            phase_len: 150,
        },
        3 => RefStringCfg::SequentialSweep { pages: 18 },
        4 => RefStringCfg::LoopNest {
            inner: 4,
            outer: 12,
            period: 4,
        },
        _ => RefStringCfg::HotCold {
            hot: 4,
            cold: 20,
            p_hot: 0.9,
        },
    }
}

fn simulated_faults(trace: &[PageNo], frames: usize, min: bool) -> u64 {
    let policy: Box<dyn dsa::paging::Replacer> = if min {
        Box::new(MinRepl::new(trace))
    } else {
        Box::new(LruRepl::new())
    };
    let mut mem = PagedMemory::new(frames, policy);
    mem.run_pages(trace).expect("no pinning").faults
}

/// Frame counts probed for a trace: every size up to one past the
/// distinct-page count (beyond which only compulsory faults remain).
fn frame_counts(trace: &[PageNo]) -> Vec<usize> {
    (1..=distinct_pages(trace) + 1).collect()
}

proptest! {
    #[test]
    fn lru_success_function_matches_per_size_simulation(
        regime_idx in 0usize..6,
        seed in 0u64..200,
    ) {
        let trace = regime(regime_idx).generate_pages(LEN, &mut Rng64::new(seed));
        let success = lru_distances(&trace).success();
        for frames in frame_counts(&trace) {
            prop_assert_eq!(
                success.faults(frames),
                simulated_faults(&trace, frames, false),
                "LRU regime {} seed {} at {} frames",
                regime_idx,
                seed,
                frames
            );
        }
    }

    #[test]
    fn min_success_function_matches_per_size_simulation(
        regime_idx in 0usize..6,
        seed in 0u64..200,
    ) {
        let trace = regime(regime_idx).generate_pages(LEN, &mut Rng64::new(seed));
        let success = opt_distances(&trace).success();
        for frames in frame_counts(&trace) {
            prop_assert_eq!(
                success.faults(frames),
                simulated_faults(&trace, frames, true),
                "MIN regime {} seed {} at {} frames",
                regime_idx,
                seed,
                frames
            );
        }
    }

    #[test]
    fn fault_positions_match_the_simulator_fault_stream(
        regime_idx in 0usize..6,
        frames in 2usize..20,
        seed in 0u64..100,
    ) {
        // Positions, not just counts: the probed latency column of E4
        // replays these into the same probe the simulator feeds.
        let trace = regime(regime_idx).generate_pages(LEN, &mut Rng64::new(seed));
        for min in [false, true] {
            let distances: StackDistances = if min {
                opt_distances(&trace)
            } else {
                lru_distances(&trace)
            };
            let policy: Box<dyn dsa::paging::Replacer> = if min {
                Box::new(MinRepl::new(&trace))
            } else {
                Box::new(LruRepl::new())
            };
            let mut mem = PagedMemory::new(frames, policy);
            let mut sim_faults = Vec::new();
            for (i, &page) in trace.iter().enumerate() {
                let out = mem.touch(page, false, i as u64).expect("no pinning");
                if out.is_fault() {
                    sim_faults.push(i as u64);
                }
            }
            let one_pass: Vec<u64> = distances.fault_times(frames).collect();
            prop_assert_eq!(
                one_pass,
                sim_faults,
                "policy {} regime {} seed {} at {} frames",
                if min { "MIN" } else { "LRU" },
                regime_idx,
                seed,
                frames
            );
        }
    }

    #[test]
    fn random_traces_also_agree(
        raw in prop::collection::vec(0u64..30, 1..800),
        frames in 1usize..32,
    ) {
        let trace: Vec<PageNo> = raw.into_iter().map(PageNo).collect();
        prop_assert_eq!(
            lru_distances(&trace).success().faults(frames),
            simulated_faults(&trace, frames, false)
        );
        prop_assert_eq!(
            opt_distances(&trace).success().faults(frames),
            simulated_faults(&trace, frames, true)
        );
    }
}
