//! Property-based tests on the operational allocator's magazine
//! accounting: whatever the op stream and thread count, no byte is
//! lost or handed out twice across thread-local caches, the per-class
//! depots, and the shared slabs.
//!
//! The load-bearing oracle is [`DsaHeap::check_reconciliation`]: the
//! telemetry ledger (backend ops only) must equal backend-live words
//! exactly, with magazine- and depot-parked blocks counted as live.
//! These tests drive that identity through randomized churn at 1, 2,
//! and 8 threads, through cross-thread hand-offs, and through
//! flush-on-thread-exit.

use std::alloc::Layout;
use std::collections::HashSet;

use dsa::alloc::{DsaHeap, HeapConfig, ThreadCache};
use proptest::prelude::*;

/// Ladder sizes the random streams draw from — spanning several
/// classes so magazines, depots, and slabs all see traffic — plus one
/// large-path size to keep the routing honest.
const SIZES: [usize; 7] = [16, 48, 64, 256, 1024, 2048, 5000];

/// One step of a churn stream.
#[derive(Clone, Copy, Debug)]
enum Op {
    /// Allocate `SIZES[i]` bytes.
    Alloc(usize),
    /// Free the `n % live`-th live block, if any.
    FreeNth(usize),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0usize..SIZES.len()).prop_map(Op::Alloc),
            (0usize..64).prop_map(Op::FreeNth),
        ],
        1..120,
    )
}

fn layout_for(i: usize) -> Layout {
    Layout::from_size_align(SIZES[i], 8).expect("valid layout")
}

/// Runs one op stream through a cache, freeing everything before the
/// cache drops (and flushes).
fn churn_to_empty(heap: &DsaHeap, ops: &[Op]) {
    let mut cache = ThreadCache::new(heap);
    let mut live: Vec<(*mut u8, Layout)> = Vec::new();
    for op in ops {
        match *op {
            Op::Alloc(i) => {
                let l = layout_for(i);
                let p = cache.alloc(l);
                assert!(!p.is_null());
                live.push((p, l));
            }
            Op::FreeNth(n) => {
                if !live.is_empty() {
                    let (p, l) = live.swap_remove(n % live.len());
                    // SAFETY: `p` is live from this heap with layout `l`.
                    unsafe { cache.dealloc(p, l) };
                }
            }
        }
    }
    for (p, l) in live {
        // SAFETY: remaining blocks are live with their layouts.
        unsafe { cache.dealloc(p, l) };
    }
}

/// A pointer+layout parcel made `Send` so blocks can change threads;
/// ownership moves with it.
struct Parcel(*mut u8, Layout);

// SAFETY: a parcel is the unique handle to a live block of a `Sync`
// heap; sending it transfers ownership.
unsafe impl Send for Parcel {}

proptest! {
    /// Conservation at 1, 2, and 8 threads: every thread churns the
    /// same random stream through its own cache and frees everything;
    /// after caches flush on exit and the depots drain, live words are
    /// exactly the baseline carves and the ledger balances.
    #[test]
    fn allocated_bytes_conserve_across_caches(ops in arb_ops(), t in 0usize..3) {
        let threads = [1usize, 2, 8][t];
        let heap = DsaHeap::new(HeapConfig::small());
        let baseline = heap.live_words();
        std::thread::scope(|s| {
            for _ in 0..threads {
                let (heap, ops) = (&heap, &ops);
                s.spawn(move || churn_to_empty(heap, ops));
            }
        });
        // Mid-state sanity: parked blocks count as live, so the books
        // balance even before the depots are drained.
        heap.check_reconciliation();
        heap.flush_depots();
        heap.check_reconciliation();
        prop_assert_eq!(heap.live_words(), baseline);
        prop_assert_eq!(heap.stats().bad_frees, 0);
    }

    /// No double hand-out: two threads allocating from the same class
    /// ladder never receive the same pointer while both blocks are
    /// live, even with magazines refilled through the shared depot.
    #[test]
    fn no_block_handed_out_twice(count in 1usize..200, size in 0usize..SIZES.len()) {
        let heap = DsaHeap::new(HeapConfig::small());
        let l = layout_for(size);
        let (tx, rx) = std::sync::mpsc::channel::<Parcel>();
        std::thread::scope(|s| {
            for _ in 0..2 {
                let (heap, tx) = (&heap, tx.clone());
                s.spawn(move || {
                    let mut cache = ThreadCache::new(heap);
                    for _ in 0..count {
                        let p = cache.alloc(l);
                        assert!(!p.is_null());
                        tx.send(Parcel(p, l)).expect("receiver alive");
                    }
                });
            }
            drop(tx);
        });
        let parcels: Vec<Parcel> = rx.into_iter().collect();
        let distinct: HashSet<*mut u8> = parcels.iter().map(|p| p.0).collect();
        prop_assert_eq!(distinct.len(), parcels.len());
        prop_assert_eq!(parcels.len(), 2 * count);
        for Parcel(p, l) in parcels {
            // SAFETY: each parcel owns a live block with layout `l`.
            unsafe { heap.dealloc_direct(p, l) };
        }
        heap.flush_depots();
        heap.check_reconciliation();
        prop_assert_eq!(heap.stats().bad_frees, 0);
    }

    /// Flush-on-thread-exit reconciles: a thread allocates, frees a
    /// random subset through its cache (parking blocks in magazines),
    /// ships the survivors out, and exits — the drop-flush plus a
    /// depot drain must leave zero parked blocks and balanced books,
    /// with exactly the survivors still live.
    #[test]
    fn thread_exit_flush_reconciles(ops in arb_ops()) {
        let heap = DsaHeap::new(HeapConfig::small());
        let baseline = heap.live_words();
        let (tx, rx) = std::sync::mpsc::channel::<Parcel>();
        std::thread::scope(|s| {
            let heap = &heap;
            s.spawn(move || {
                let mut cache = ThreadCache::new(heap);
                let mut live: Vec<(*mut u8, Layout)> = Vec::new();
                for op in &ops {
                    match *op {
                        Op::Alloc(i) => {
                            let l = layout_for(i);
                            let p = cache.alloc(l);
                            assert!(!p.is_null());
                            live.push((p, l));
                        }
                        Op::FreeNth(n) => {
                            if !live.is_empty() {
                                let (p, l) = live.swap_remove(n % live.len());
                                // SAFETY: `p` is live with layout `l`.
                                unsafe { cache.dealloc(p, l) };
                            }
                        }
                    }
                }
                for (p, l) in live {
                    tx.send(Parcel(p, l)).expect("receiver alive");
                }
                // `cache` drops here: flush-on-thread-exit.
            });
        });
        heap.check_reconciliation();
        heap.flush_depots();
        prop_assert_eq!(heap.depot_parked(), 0);
        heap.check_reconciliation();
        let survivors: Vec<Parcel> = rx.into_iter().collect();
        prop_assert!(heap.live_words() >= baseline);
        for Parcel(p, l) in survivors {
            // SAFETY: each parcel owns a live block with layout `l`.
            unsafe { heap.dealloc_direct(p, l) };
        }
        heap.flush_depots();
        heap.check_reconciliation();
        prop_assert_eq!(heap.live_words(), baseline);
        prop_assert_eq!(heap.stats().bad_frees, 0);
    }
}
