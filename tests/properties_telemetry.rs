//! Property-based tests on the `dsa-telemetry` flight recorder and
//! atomic histograms.
//!
//! Three claims, each load-bearing for the always-on telemetry's
//! contract:
//!
//! * **Lossless chronology under capacity** — a single handle that
//!   emits at most `capacity` events drains back the exact emitted
//!   sequence, in order, payloads intact.
//! * **Last-N retention over capacity** — once a ring wraps, the drain
//!   is exactly the most recent `capacity` events, still in order.
//! * **Merged chronology** — with one ring per thread, the merged
//!   drain preserves every thread's program order (the global sequence
//!   the merge sorts by is consistent with each thread's emission
//!   order), and after the threads join it is lossless up to each
//!   ring's capacity.
//! * **Atomic/sequential histogram agreement** — the same samples
//!   recorded through 1, 2, or 8 `AtomicHistogram`s, merged, freeze
//!   into exactly the `Histogram` a single thread would have built:
//!   same count, sum, max, overflow, and quantiles.

use dsa::metrics::{BucketSpec, Histogram};
use dsa::probe::{EventKind, Probe, Stamp};
use dsa::telemetry::{AtomicHistogram, FlightRecorder};
use proptest::prelude::*;

/// The emitted payload for index `i`: distinguishable and exact, so a
/// drained event identifies which emission it was.
fn kind_at(i: u64) -> EventKind {
    EventKind::Alloc {
        words: i,
        searched: i.wrapping_mul(3),
    }
}

/// Extracts the emission index a drained event carries, checking the
/// full payload round-tripped.
fn index_of(e: &dsa::probe::Event) -> u64 {
    match e.kind {
        EventKind::Alloc { words, searched } => {
            assert_eq!(searched, words.wrapping_mul(3), "payload torn");
            assert_eq!(e.vtime, words, "vtime torn");
            words
        }
        other => panic!("unexpected event kind {other:?}"),
    }
}

proptest! {
    /// Emitting `n <= capacity` events through one handle drains back
    /// exactly those events, oldest first, payloads intact.
    #[test]
    fn drain_is_lossless_and_ordered_under_capacity(
        n in 0usize..128,
        extra in 0usize..64,
    ) {
        let rec = FlightRecorder::new(n + extra + 1);
        let mut h = rec.handle();
        for i in 0..n as u64 {
            h.emit(kind_at(i), Stamp::vtime(i));
        }
        let drained = rec.drain();
        prop_assert_eq!(drained.len(), n);
        for (want, got) in drained.iter().enumerate() {
            prop_assert_eq!(index_of(got), want as u64);
        }
        prop_assert_eq!(rec.events_seen(), n as u64);
    }

    /// Emitting more events than the ring holds retains exactly the
    /// most recent `capacity`, still in emission order.
    #[test]
    fn drain_keeps_the_newest_capacity_events(
        capacity in 1usize..64,
        overflow in 1usize..128,
    ) {
        let rec = FlightRecorder::new(capacity);
        let mut h = rec.handle();
        let total = (capacity + overflow) as u64;
        for i in 0..total {
            h.emit(kind_at(i), Stamp::vtime(i));
        }
        let drained = rec.drain();
        prop_assert_eq!(drained.len(), capacity);
        let first = total - capacity as u64;
        for (k, got) in drained.iter().enumerate() {
            prop_assert_eq!(index_of(got), first + k as u64);
        }
        prop_assert_eq!(rec.events_seen(), total);
    }

    /// With one handle (one ring) per thread, the post-join merged
    /// drain is lossless up to capacity and keeps every thread's
    /// events in that thread's emission order.
    #[test]
    fn merged_drain_preserves_per_thread_order(
        threads in (0usize..2).prop_map(|i| if i == 0 { 2usize } else { 8 }),
        per_thread in 1usize..200,
    ) {
        let rec = FlightRecorder::new(256);
        std::thread::scope(|scope| {
            for t in 0..threads as u64 {
                let mut h = rec.handle();
                scope.spawn(move || {
                    for i in 0..per_thread as u64 {
                        // words identifies the thread, searched the step.
                        h.emit(
                            EventKind::Alloc { words: t, searched: i },
                            Stamp::vtime(i),
                        );
                    }
                });
            }
        });
        let drained = rec.drain();
        prop_assert_eq!(drained.len(), threads * per_thread.min(256));
        for t in 0..threads as u64 {
            let steps: Vec<u64> = drained
                .iter()
                .filter_map(|e| match e.kind {
                    EventKind::Alloc { words, searched } if words == t => Some(searched),
                    _ => None,
                })
                .collect();
            let first = per_thread as u64 - per_thread.min(256) as u64;
            let want: Vec<u64> = (first..per_thread as u64).collect();
            prop_assert_eq!(steps, want, "thread {} out of order or lossy", t);
        }
    }

    /// Samples recorded through per-thread `AtomicHistogram`s and
    /// merged equal the single-threaded sequential `Histogram` over
    /// the same values, for 1, 2, and 8 threads.
    #[test]
    fn merged_atomic_histograms_equal_sequential(
        samples in prop::collection::vec(0u64..100_000, 1..300),
    ) {
        let spec = BucketSpec::Log2 { buckets: 14 };
        let mut reference = Histogram::with_spec(spec);
        for &v in &samples {
            reference.record(v);
        }
        for threads in [1usize, 2, 8] {
            let shards: Vec<AtomicHistogram> =
                (0..threads).map(|_| AtomicHistogram::new(spec)).collect();
            std::thread::scope(|scope| {
                for (t, shard) in shards.iter().enumerate() {
                    let chunk: Vec<u64> = samples
                        .iter()
                        .copied()
                        .skip(t)
                        .step_by(threads)
                        .collect();
                    scope.spawn(move || {
                        for v in chunk {
                            shard.record(v);
                        }
                    });
                }
            });
            let merged = AtomicHistogram::new(spec);
            for shard in &shards {
                merged.merge(shard);
            }
            let snap = merged.snapshot();
            prop_assert_eq!(snap.count(), reference.count(), "count, {} threads", threads);
            prop_assert_eq!(snap.sum(), reference.sum(), "sum, {} threads", threads);
            prop_assert_eq!(snap.max(), reference.max(), "max, {} threads", threads);
            prop_assert_eq!(snap.overflow(), reference.overflow(), "overflow, {} threads", threads);
            for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
                prop_assert_eq!(snap.quantile(q), reference.quantile(q), "q={}, {} threads", q, threads);
            }
        }
    }
}
