//! Property-based tests on the storage substrate.

use dsa::core::clock::Cycles;
use dsa::core::ids::PhysAddr;
use dsa::storage::drum::{DrumDiscipline, SectorDrum};
use dsa::storage::CoreMemory;
use proptest::prelude::*;

proptest! {
    /// SLTF never has a longer makespan than FIFO on the same batch, and
    /// both disciplines complete every request within (requests + 1)
    /// revolutions.
    #[test]
    fn sltf_dominates_fifo(
        reqs in prop::collection::vec(0u64..16, 1..24),
        start_ns in 0u64..24_000_000,
    ) {
        let drum = SectorDrum::atlas();
        let start = Cycles::from_nanos(start_ns);
        let (fifo_done, fifo_span) = drum.service(&reqs, start, DrumDiscipline::Fifo);
        let (sltf_done, sltf_span) = drum.service(&reqs, start, DrumDiscipline::Sltf);
        prop_assert!(sltf_span <= fifo_span);
        prop_assert_eq!(fifo_done.len(), reqs.len());
        prop_assert_eq!(sltf_done.len(), reqs.len());
        // Worst case: each request waits at most one full revolution
        // plus its transfer.
        let bound = Cycles::from_nanos(
            (reqs.len() as u64) * (Cycles::from_millis(12) + drum.sector_time()).as_nanos(),
        );
        prop_assert!(fifo_span <= bound, "fifo {} > bound {}", fifo_span, bound);
    }

    /// Rotational delay is always less than one revolution, and waiting
    /// that delay really does align the head with the sector.
    #[test]
    fn rotational_delay_is_consistent(
        now_ns in 0u64..100_000_000,
        sector in 0u64..16,
    ) {
        let drum = SectorDrum::atlas();
        let now = Cycles::from_nanos(now_ns);
        let delay = drum.rotational_delay(now, sector);
        prop_assert!(delay < Cycles::from_millis(12));
        let arrival = now + delay;
        prop_assert_eq!(drum.position(arrival), sector);
    }

    /// SLTF completions are a permutation of a one-at-a-time greedy
    /// schedule: every request is served exactly once (no starvation in
    /// a closed batch).
    #[test]
    fn sltf_serves_every_request_once(reqs in prop::collection::vec(0u64..16, 1..20)) {
        let drum = SectorDrum::atlas();
        let (done, span) = drum.service(&reqs, Cycles::ZERO, DrumDiscipline::Sltf);
        let mut sorted: Vec<u64> = done.iter().map(|c| c.as_nanos()).collect();
        sorted.sort_unstable();
        // Completions are distinct (one transfer at a time) and the last
        // one equals the makespan.
        for w in sorted.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        prop_assert_eq!(*sorted.last().unwrap(), span.as_nanos());
    }

    /// CoreMemory move_block behaves exactly like a slice copy_within,
    /// for any in-range move (including overlapping ones).
    #[test]
    fn move_block_is_memmove(
        fill in prop::collection::vec(0u64..1000, 32..64),
        src in 0u64..32,
        dst in 0u64..32,
        len in 0u64..32,
    ) {
        let cap = fill.len() as u64;
        prop_assume!(src + len <= cap && dst + len <= cap);
        let mut mem = CoreMemory::new(cap);
        for (i, &v) in fill.iter().enumerate() {
            mem.write(PhysAddr(i as u64), v).expect("in range");
        }
        let mut model = fill.clone();
        mem.move_block(PhysAddr(src), PhysAddr(dst), len).expect("in range");
        model.copy_within(src as usize..(src + len) as usize, dst as usize);
        for (i, &v) in model.iter().enumerate() {
            prop_assert_eq!(mem.read(PhysAddr(i as u64)).expect("in range"), v);
        }
    }
}
