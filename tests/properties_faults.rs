//! Properties of the fault-injection and recovery subsystem.
//!
//! Three guarantees, checked across machines and fault schedules:
//! no storage is lost or duplicated by recovery (every machine's
//! internal invariants hold after a faulty run and every transfer
//! completes), runs are bit-identical given the same seed, and the
//! probe-reconciliation contract of the tracing layer survives the
//! injector being armed.

use dsa::core::access::ProgramOp;
use dsa::core::clock::Cycles;
use dsa::faults::FaultConfig;
use dsa::machines::presets::{atlas, b5000, multics};
use dsa::machines::MachineReport;
use dsa::probe::CountingProbe;
use dsa::trace::allocstream::SizeDist;
use dsa::trace::program::ProgramCfg;
use dsa::trace::rng::Rng64;
use proptest::prelude::*;

/// A workload heavy enough to overflow every preset's working storage:
/// faults (and therefore transfers, the injector's hazard sites) must
/// actually occur for these properties to bite.
fn workload() -> Vec<ProgramOp> {
    let mut rng = Rng64::new(7);
    let cfg = ProgramCfg {
        segments: 48,
        seg_sizes: SizeDist::Exponential {
            mean: 700.0,
            cap: 4000,
        },
        touches: 10_000,
        phase_set: 6,
        phase_len: 500,
        advice_accuracy: Some(1.0),
        wild_touch_prob: 0.02,
        ..ProgramCfg::default()
    };
    cfg.generate(&mut rng).ops
}

/// Fault schedules from quiet to hostile; recovery must hold under all.
fn schedules() -> Vec<FaultConfig> {
    vec![
        FaultConfig::off(),
        FaultConfig::transfer_errors(0.01),
        FaultConfig::transfer_errors(0.05).with_burst(3),
        FaultConfig::transfer_errors(0.02)
            .with_bad_frames(0.02)
            .with_channel_delays(0.05, Cycles::from_micros(20)),
        FaultConfig::transfer_errors(0.05)
            .with_bad_frames(0.01)
            .with_channel_delays(0.02, Cycles::from_micros(5))
            .with_alloc_failures(0.02),
    ]
}

fn assert_same_report(a: &MachineReport, b: &MachineReport, ctx: &str) {
    assert_eq!(a.touches, b.touches, "{ctx}: touches");
    assert_eq!(a.faults, b.faults, "{ctx}: faults");
    assert_eq!(a.fetched_words, b.fetched_words, "{ctx}: fetched words");
    assert_eq!(
        a.writeback_words, b.writeback_words,
        "{ctx}: writeback words"
    );
    assert_eq!(a.fetch_time, b.fetch_time, "{ctx}: fetch time");
    assert_eq!(a.map_time, b.map_time, "{ctx}: map time");
    assert_eq!(a.bounds_caught, b.bounds_caught, "{ctx}: bounds");
    assert_eq!(a.wild_undetected, b.wild_undetected, "{ctx}: wild");
    assert_eq!(a.advice_ops, b.advice_ops, "{ctx}: advice");
    assert_eq!(a.prefetches, b.prefetches, "{ctx}: prefetches");
    assert_eq!(a.alloc_failures, b.alloc_failures, "{ctx}: alloc failures");
    assert_eq!(a.recovery, b.recovery, "{ctx}: recovery report");
}

/// Runs every preset under `config` with `seed`, returning
/// (name, report, probe totals) per machine and asserting the
/// machine's internal invariants afterwards.
fn run_all(
    seed: u64,
    config: FaultConfig,
    ops: &[ProgramOp],
) -> Vec<(&'static str, MachineReport, CountingProbe)> {
    let mut out = Vec::new();

    let mut m = atlas().with_fault_injection(seed, config);
    let mut probe = CountingProbe::new();
    let r = m.run_with(ops, &mut probe).expect("atlas survives faults");
    m.check_invariants();
    out.push(("ATLAS", r, probe));

    let mut m = b5000().with_fault_injection(seed, config);
    let mut probe = CountingProbe::new();
    let r = m.run_with(ops, &mut probe).expect("b5000 survives faults");
    m.check_invariants();
    out.push(("B5000", r, probe));

    let mut m = multics().with_fault_injection(seed, config);
    let mut probe = CountingProbe::new();
    let r = m
        .run_with(ops, &mut probe)
        .expect("multics survives faults");
    m.check_invariants();
    out.push(("MULTICS", r, probe));

    out
}

#[test]
fn no_storage_lost_or_duplicated_under_any_fault_schedule() {
    let ops = workload();
    for (i, config) in schedules().into_iter().enumerate() {
        // run_all asserts each machine's internal invariants: frame
        // partitions (resident + free + quarantined == all), segment
        // residency, and allocator bookkeeping all still balance.
        for (name, report, probe) in run_all(41 + i as u64, config, &ops) {
            // Every transfer that started completed — retries re-wait
            // but never abandon a fetch half-done.
            assert_eq!(
                probe.fetch_starts, probe.fetches,
                "schedule {i}, {name}: FetchStart/FetchDone pairing"
            );
            // Words entered working storage exactly as often as the
            // report claims; none vanished into a failed transfer.
            assert_eq!(
                probe.fetched_words, report.fetched_words,
                "schedule {i}, {name}: fetched words"
            );
            assert_eq!(
                probe.writeback_words, report.writeback_words,
                "schedule {i}, {name}: writeback words"
            );
            assert_eq!(
                probe.touches, report.touches,
                "schedule {i}, {name}: every touch serviced"
            );
        }
    }
}

#[test]
fn runs_are_bit_identical_given_the_same_seed() {
    let ops = workload();
    for (i, config) in schedules().into_iter().enumerate() {
        let first = run_all(97, config, &ops);
        let second = run_all(97, config, &ops);
        for ((name, a, _), (_, b, _)) in first.iter().zip(second.iter()) {
            assert_same_report(a, b, &format!("schedule {i}, {name}"));
        }
    }
}

#[test]
fn different_seeds_draw_different_fault_schedules() {
    let ops = workload();
    let config = FaultConfig::transfer_errors(0.05).with_bad_frames(0.02);
    let a = run_all(1, config, &ops);
    let b = run_all(2, config, &ops);
    let differs = a
        .iter()
        .zip(b.iter())
        .any(|((_, ra, _), (_, rb, _))| ra.recovery != rb.recovery);
    assert!(differs, "two seeds injected identical fault schedules");
}

#[test]
fn probe_reconciliation_holds_with_the_injector_attached() {
    let ops = workload();
    for (i, config) in schedules().into_iter().enumerate() {
        for (name, report, probe) in run_all(7 + i as u64, config, &ops) {
            let ctx = format!("schedule {i}, {name}");
            // The tracing layer's original contract.
            assert_eq!(probe.touches, report.touches, "{ctx}: touches");
            assert_eq!(probe.faults, report.faults, "{ctx}: faults");
            assert_eq!(
                probe.bounds_traps, report.bounds_caught,
                "{ctx}: bounds traps"
            );
            assert_eq!(probe.advice, report.advice_ops, "{ctx}: advice ops");
            assert_eq!(probe.prefetches, report.prefetches, "{ctx}: prefetches");
            // The recovery extension: every fault, retry, quarantine,
            // and degradation the report counts was traced, and vice
            // versa.
            let rec = &report.recovery;
            assert_eq!(
                probe.faults_injected, rec.faults_injected,
                "{ctx}: faults injected"
            );
            assert_eq!(
                probe.transfer_errors_injected, rec.transfer_errors,
                "{ctx}: transfer errors"
            );
            assert_eq!(
                probe.bad_frames_injected, rec.bad_frames,
                "{ctx}: bad frames"
            );
            assert_eq!(
                probe.channel_delays_injected, rec.channel_delays,
                "{ctx}: channel delays"
            );
            assert_eq!(
                probe.alloc_failures_injected, rec.forced_alloc_failures,
                "{ctx}: forced alloc failures"
            );
            assert_eq!(
                probe.retry_attempts, rec.retry_attempts,
                "{ctx}: retry attempts"
            );
            assert_eq!(
                probe.frames_quarantined, rec.frames_quarantined,
                "{ctx}: quarantined frames"
            );
            assert_eq!(
                probe.degradation_steps, rec.degradation_steps,
                "{ctx}: degradation steps"
            );
            assert_eq!(probe.shed_loads, rec.shed_loads, "{ctx}: shed loads");
        }
    }
}

#[test]
fn hostile_schedules_actually_exercise_the_recovery_paths() {
    let ops = workload();
    let config = FaultConfig::transfer_errors(0.05)
        .with_bad_frames(0.02)
        .with_channel_delays(0.05, Cycles::from_micros(20))
        .with_alloc_failures(0.02);
    let results = run_all(13, config, &ops);
    let total: u64 = results
        .iter()
        .map(|(_, r, _)| r.recovery.faults_injected)
        .sum();
    assert!(total > 0, "the hostile schedule injected nothing");
    let retried: u64 = results
        .iter()
        .map(|(_, r, _)| r.recovery.retry_attempts)
        .sum();
    assert!(retried > 0, "no transfer was ever retried");
    // The paged machines saw bad frames at 2% of ~hundreds of fetches.
    let quarantined: u64 = results
        .iter()
        .map(|(_, r, _)| r.recovery.frames_quarantined)
        .sum();
    assert!(quarantined > 0, "no frame was ever quarantined");
}

/// One stream's full decision schedule, byte-encoded: every roll the
/// worker makes, in call order. Two runs with the same (seed, stream)
/// must produce identical bytes no matter how streams are packed onto
/// threads.
fn stream_schedule(worker: &mut dsa::faults::WorkerInjector<'_>, rolls: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(rolls * 5);
    for _ in 0..rolls {
        out.push(u8::from(worker.transfer_error()));
        out.push(u8::from(worker.frame_bad()));
        out.push(match worker.channel_delay() {
            Some(_) => 1,
            None => 0,
        });
        out.push(u8::from(worker.alloc_failure()));
        if worker.shard_corruption() {
            out.push(1);
            out.push(worker.corruption_target(8) as u8);
        } else {
            out.push(0);
        }
    }
    out
}

proptest! {
    /// The thread-safe injector is deterministic *per stream*: running
    /// the same 8 streams on 1, 2, or 8 worker threads yields
    /// byte-identical fault schedules for every stream and an identical
    /// end-of-run `RecoveryReport`, for any seed.
    #[test]
    fn sync_injector_schedule_is_identical_at_1_2_and_8_threads(seed in any::<u64>()) {
        use std::sync::Mutex;
        use dsa::faults::SyncFaultInjector;
        const STREAMS: usize = 8;
        const ROLLS: usize = 200;
        let config = FaultConfig::transfer_errors(0.03)
            .with_bad_frames(0.02)
            .with_channel_delays(0.04, Cycles::from_micros(10))
            .with_alloc_failures(0.05);
        let mut baseline: Option<(Vec<Vec<u8>>, dsa::faults::RecoveryReport)> = None;
        for threads in [1usize, 2, 8] {
            let inj = SyncFaultInjector::new(seed, config);
            let schedules: Vec<Mutex<Vec<u8>>> =
                (0..STREAMS).map(|_| Mutex::new(Vec::new())).collect();
            std::thread::scope(|scope| {
                for t in 0..threads {
                    let inj = &inj;
                    let schedules = &schedules;
                    scope.spawn(move || {
                        // Streams are packed round-robin onto threads:
                        // every width covers the same stream set.
                        for s in (t..STREAMS).step_by(threads) {
                            let mut worker = inj.worker(s as u64);
                            *schedules[s].lock().unwrap() =
                                stream_schedule(&mut worker, ROLLS);
                        }
                    });
                }
            });
            let got: Vec<Vec<u8>> = schedules
                .into_iter()
                .map(|m| m.into_inner().unwrap())
                .collect();
            let report = inj.report();
            match &baseline {
                None => baseline = Some((got, report)),
                Some((want_sched, want_report)) => {
                    prop_assert_eq!(
                        &got, want_sched,
                        "fault schedule changed with thread count {}", threads
                    );
                    prop_assert_eq!(
                        &report, want_report,
                        "RecoveryReport changed with thread count {}", threads
                    );
                }
            }
        }
    }
}
