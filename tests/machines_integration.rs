//! Cross-crate integration tests: the seven machines end-to-end.

use dsa::core::access::{AccessKind, ProgramOp};
use dsa::core::ids::SegId;
use dsa::machines::{all_machines, atlas, b5000, m44_44x, multics, rice, Machine};
use dsa::trace::allocstream::SizeDist;
use dsa::trace::{ProgramCfg, Rng64};

fn survey_cfg() -> ProgramCfg {
    ProgramCfg {
        segments: 32,
        seg_sizes: SizeDist::Exponential {
            mean: 600.0,
            cap: 3000,
        },
        touches: 10_000,
        phase_set: 5,
        phase_len: 400,
        write_fraction: 0.3,
        resize_prob: 0.05,
        advice_accuracy: None,
        wild_touch_prob: 0.001,
        compute_between: 2,
    }
}

#[test]
fn runs_are_deterministic_per_machine() {
    let program = survey_cfg().generate(&mut Rng64::new(77));
    for factory in [atlas, m44_44x] {
        let r1 = {
            let mut m = factory();
            m.run(&program.ops).unwrap()
        };
        let r2 = {
            let mut m = factory();
            m.run(&program.ops).unwrap()
        };
        assert_eq!(r1.faults, r2.faults, "{}", r1.machine);
        assert_eq!(r1.fetched_words, r2.fetched_words);
        assert_eq!(r1.map_time, r2.map_time);
        assert_eq!(r1.bounds_caught, r2.bounds_caught);
    }
}

#[test]
fn every_wild_touch_is_accounted_for_exactly_once() {
    let mut cfg = survey_cfg();
    cfg.wild_touch_prob = 0.01;
    cfg.resize_prob = 0.0; // keep declared sizes stable for the count
    let program = cfg.generate(&mut Rng64::new(78));
    // Count the wild touches in the stream itself.
    let mut sizes = std::collections::HashMap::new();
    let mut wild = 0u64;
    for op in &program.ops {
        match *op {
            ProgramOp::Define { seg, size } => {
                sizes.insert(seg, size);
            }
            ProgramOp::Touch { seg, offset, .. } if offset >= sizes[&seg] => {
                wild += 1;
            }
            _ => {}
        }
    }
    assert!(wild > 0, "workload must contain wild touches");
    for mut m in all_machines() {
        let r = m.run(&program.ops).unwrap();
        assert_eq!(
            r.bounds_caught + r.wild_undetected,
            wild,
            "{}: wild touches must be either caught or counted as missed",
            m.name()
        );
    }
}

#[test]
fn fetch_traffic_is_conserved() {
    // Words fetched must be at least the words of distinct information
    // touched, and writebacks can never exceed what was fetched plus
    // what was written in place.
    let program = survey_cfg().generate(&mut Rng64::new(79));
    for mut m in all_machines() {
        let r = m.run(&program.ops).unwrap();
        assert!(r.fetched_words > 0, "{}", m.name());
        assert!(
            r.writeback_words <= r.fetched_words,
            "{}: wrote back {} but fetched only {}",
            m.name(),
            r.writeback_words,
            r.fetched_words
        );
        assert!(r.faults <= r.touches, "{}", m.name());
    }
}

#[test]
fn segmented_machines_honour_dynamic_segments() {
    // Define, grow, touch the grown region, shrink, watch the bounds
    // check move.
    let ops = vec![
        ProgramOp::Define {
            seg: SegId(0),
            size: 100,
        },
        ProgramOp::Touch {
            seg: SegId(0),
            offset: 99,
            kind: AccessKind::Write,
        },
        ProgramOp::Resize {
            seg: SegId(0),
            size: 300,
        },
        ProgramOp::Touch {
            seg: SegId(0),
            offset: 299,
            kind: AccessKind::Read,
        },
        ProgramOp::Resize {
            seg: SegId(0),
            size: 50,
        },
        ProgramOp::Touch {
            seg: SegId(0),
            offset: 299,
            kind: AccessKind::Read,
        }, // now wild
        ProgramOp::Delete { seg: SegId(0) },
    ];
    for mut m in [
        Box::new(b5000()) as Box<dyn Machine>,
        Box::new(rice()),
        Box::new(multics()),
    ] {
        let r = m.run(&ops).unwrap();
        assert_eq!(r.touches, 3, "{}", m.name());
        assert_eq!(
            r.bounds_caught,
            1,
            "{}: shrink must move the limit",
            m.name()
        );
    }
}

#[test]
fn repeated_touches_of_one_segment_fault_once() {
    let mut ops = vec![ProgramOp::Define {
        seg: SegId(0),
        size: 400,
    }];
    for i in 0..100 {
        ops.push(ProgramOp::Touch {
            seg: SegId(0),
            offset: i * 4 % 400,
            kind: AccessKind::Read,
        });
    }
    for mut m in all_machines() {
        let r = m.run(&ops).unwrap();
        // One segment fetch (segmented) or one fault per touched page
        // (paged, 400 words <= 1 or 2 pages); never more than 2.
        assert!(r.faults <= 2, "{}: {} faults", m.name(), r.faults);
    }
}

#[test]
fn characteristics_are_all_distinct_points() {
    // The seven machines occupy distinct points of the design space —
    // that is the appendix's reason to exist.
    let machines = all_machines();
    for i in 0..machines.len() {
        for j in (i + 1)..machines.len() {
            let a = machines[i].characteristics();
            let b = machines[j].characteristics();
            // B5000 and B8500 share a classification (the B8500 differs
            // in hardware, not in the four axes); everyone else differs.
            let same_ok = (machines[i].name().contains("B5000")
                && machines[j].name().contains("B8500"))
                || (machines[i].name().contains("B8500") && machines[j].name().contains("B5000"));
            if !same_ok {
                // The full description includes extents and page sizes,
                // which separate e.g. the B5000 (1024-word segments)
                // from the Rice machine (core-sized segments).
                assert_ne!(
                    a.describe(),
                    b.describe(),
                    "{} vs {}",
                    machines[i].name(),
                    machines[j].name()
                );
            }
        }
    }
}

#[test]
fn advice_changes_m44_but_not_atlas() {
    let mut cfg = survey_cfg();
    cfg.segments = 48;
    cfg.seg_sizes = SizeDist::Exponential {
        mean: 9_000.0,
        cap: 30_000,
    };
    cfg.advice_accuracy = Some(1.0);
    let advised = cfg.generate(&mut Rng64::new(80));
    cfg.advice_accuracy = None;
    let silent = cfg.generate(&mut Rng64::new(80));

    let with = m44_44x().run(&advised.ops).unwrap();
    let without = m44_44x().run(&silent.ops).unwrap();
    assert!(with.advice_ops > 0);
    assert!(
        with.fetched_words != without.fetched_words || with.faults != without.faults,
        "advice must change the M44's behaviour"
    );

    let a_with = atlas().run(&advised.ops).unwrap();
    assert_eq!(a_with.advice_ops, 0, "ATLAS must ignore advice");
}
