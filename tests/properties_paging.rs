//! Property-based tests on the paging engine and replacement policies.

use dsa::core::ids::PageNo;
use dsa::paging::paged::PagedMemory;
use dsa::paging::replacement::ws::working_set_sim;
use dsa::paging::{
    AtlasLearning, ClassRandomRepl, ClockRepl, FifoRepl, LruRepl, MinRepl, RandomRepl, Replacer,
};
use proptest::prelude::*;

fn arb_trace() -> impl Strategy<Value = Vec<PageNo>> {
    prop::collection::vec(0u64..24, 1..600).prop_map(|v| v.into_iter().map(PageNo).collect())
}

fn all_policies(frames: usize, trace: &[PageNo]) -> Vec<Box<dyn Replacer>> {
    vec![
        Box::new(LruRepl::new()),
        Box::new(FifoRepl::new()),
        Box::new(ClockRepl::new(frames)),
        Box::new(ClockRepl::cyclic(frames)),
        Box::new(RandomRepl::new(9)),
        Box::new(ClassRandomRepl::new(9, 4)),
        Box::new(AtlasLearning::new()),
        Box::new(MinRepl::new(trace)),
    ]
}

fn faults(frames: usize, trace: &[PageNo], policy: Box<dyn Replacer>) -> u64 {
    let mut mem = PagedMemory::new(frames, policy);
    let stats = mem.run_pages(trace).expect("no pinning");
    mem.check_invariants();
    stats.faults
}

fn distinct(trace: &[PageNo]) -> u64 {
    let mut v: Vec<u64> = trace.iter().map(|p| p.0).collect();
    v.sort_unstable();
    v.dedup();
    v.len() as u64
}

proptest! {
    /// MIN is a lower bound for every realizable policy on every trace
    /// — the defining property of Belady's optimum.
    #[test]
    fn min_is_optimal(trace in arb_trace(), frames in 1usize..16) {
        let min_faults = faults(frames, &trace, Box::new(MinRepl::new(&trace)));
        for policy in all_policies(frames, &trace) {
            if policy.name() == "MIN (Belady)" {
                continue;
            }
            let name = policy.name();
            let f = faults(frames, &trace, policy);
            prop_assert!(
                f >= min_faults,
                "{name} took {f} faults, below MIN's {min_faults}"
            );
        }
    }

    /// Every policy faults at least once per distinct page (cold
    /// misses), and never more than once per reference.
    #[test]
    fn fault_counts_are_bounded(trace in arb_trace(), frames in 1usize..16) {
        let d = distinct(&trace);
        for policy in all_policies(frames, &trace) {
            let name = policy.name();
            let f = faults(frames, &trace, policy);
            prop_assert!(f >= d, "{name}: {f} faults < {d} distinct pages");
            prop_assert!(f <= trace.len() as u64, "{name}");
        }
    }

    /// LRU has the stack (inclusion) property: more frames never means
    /// more faults. (FIFO famously lacks this — Belady's anomaly.)
    #[test]
    fn lru_inclusion_property(trace in arb_trace(), frames in 1usize..12) {
        let small = faults(frames, &trace, Box::new(LruRepl::new()));
        let large = faults(frames + 1, &trace, Box::new(LruRepl::new()));
        prop_assert!(large <= small, "LRU faulted more with more frames: {large} > {small}");
    }

    /// MIN also has the inclusion property.
    #[test]
    fn min_inclusion_property(trace in arb_trace(), frames in 1usize..12) {
        let small = faults(frames, &trace, Box::new(MinRepl::new(&trace)));
        let large = faults(frames + 1, &trace, Box::new(MinRepl::new(&trace)));
        prop_assert!(large <= small);
    }

    /// When the whole page universe fits in core, every policy takes
    /// exactly the cold misses.
    #[test]
    fn ample_storage_means_cold_misses_only(trace in arb_trace()) {
        let d = distinct(&trace);
        for policy in all_policies(24, &trace) {
            let name = policy.name();
            let f = faults(24, &trace, policy);
            prop_assert_eq!(f, d, "{} with ample frames", name);
        }
    }

    /// The working-set simulator agrees with a direct recomputation of
    /// residency, and its fault count is monotone in the window.
    #[test]
    fn working_set_window_monotone(trace in arb_trace(), tau in 1u64..50) {
        let small = working_set_sim(&trace, tau);
        let large = working_set_sim(&trace, tau + 10);
        prop_assert!(large.faults <= small.faults);
        prop_assert!(small.references == trace.len() as u64);
        prop_assert!(small.mean_resident <= small.peak_resident as f64 + 1e-9);
    }

    /// The vacant-reserve variant keeps a frame free after every touch
    /// and never beats the plain variant by more than the cold-miss
    /// bound allows (sanity of the ATLAS discipline).
    #[test]
    fn vacant_reserve_invariant(trace in arb_trace()) {
        let frames = 8;
        let mut mem = PagedMemory::new(frames, Box::new(AtlasLearning::new()))
            .with_vacant_reserve();
        for (i, &p) in trace.iter().enumerate() {
            mem.touch(p, false, i as u64).expect("no pinning");
            prop_assert!(mem.resident_count() < frames, "a frame must stay vacant");
        }
        mem.check_invariants();
    }
}
