//! Property-based tests on the paging engine and replacement policies.

use dsa::core::ids::PageNo;
use dsa::paging::paged::PagedMemory;
use dsa::paging::replacement::ws::working_set_sim;
use dsa::paging::{
    AtlasLearning, ClassRandomRepl, ClockRepl, FifoRepl, LruRepl, MinRepl, RandomRepl, Replacer,
};
use proptest::prelude::*;

fn arb_trace() -> impl Strategy<Value = Vec<PageNo>> {
    prop::collection::vec(0u64..24, 1..600).prop_map(|v| v.into_iter().map(PageNo).collect())
}

fn all_policies(frames: usize, trace: &[PageNo]) -> Vec<Box<dyn Replacer>> {
    vec![
        Box::new(LruRepl::new()),
        Box::new(FifoRepl::new()),
        Box::new(ClockRepl::new(frames)),
        Box::new(ClockRepl::cyclic(frames)),
        Box::new(RandomRepl::new(9)),
        Box::new(ClassRandomRepl::new(9, 4)),
        Box::new(AtlasLearning::new()),
        Box::new(MinRepl::new(trace)),
    ]
}

fn faults(frames: usize, trace: &[PageNo], policy: Box<dyn Replacer>) -> u64 {
    let mut mem = PagedMemory::new(frames, policy);
    let stats = mem.run_pages(trace).expect("no pinning");
    mem.check_invariants();
    stats.faults
}

fn distinct(trace: &[PageNo]) -> u64 {
    let mut v: Vec<u64> = trace.iter().map(|p| p.0).collect();
    v.sort_unstable();
    v.dedup();
    v.len() as u64
}

proptest! {
    /// MIN is a lower bound for every realizable policy on every trace
    /// — the defining property of Belady's optimum.
    #[test]
    fn min_is_optimal(trace in arb_trace(), frames in 1usize..16) {
        let min_faults = faults(frames, &trace, Box::new(MinRepl::new(&trace)));
        for policy in all_policies(frames, &trace) {
            if policy.name() == "MIN (Belady)" {
                continue;
            }
            let name = policy.name();
            let f = faults(frames, &trace, policy);
            prop_assert!(
                f >= min_faults,
                "{name} took {f} faults, below MIN's {min_faults}"
            );
        }
    }

    /// Every policy faults at least once per distinct page (cold
    /// misses), and never more than once per reference.
    #[test]
    fn fault_counts_are_bounded(trace in arb_trace(), frames in 1usize..16) {
        let d = distinct(&trace);
        for policy in all_policies(frames, &trace) {
            let name = policy.name();
            let f = faults(frames, &trace, policy);
            prop_assert!(f >= d, "{name}: {f} faults < {d} distinct pages");
            prop_assert!(f <= trace.len() as u64, "{name}");
        }
    }

    /// LRU has the stack (inclusion) property: more frames never means
    /// more faults. (FIFO famously lacks this — Belady's anomaly.)
    #[test]
    fn lru_inclusion_property(trace in arb_trace(), frames in 1usize..12) {
        let small = faults(frames, &trace, Box::new(LruRepl::new()));
        let large = faults(frames + 1, &trace, Box::new(LruRepl::new()));
        prop_assert!(large <= small, "LRU faulted more with more frames: {large} > {small}");
    }

    /// MIN also has the inclusion property.
    #[test]
    fn min_inclusion_property(trace in arb_trace(), frames in 1usize..12) {
        let small = faults(frames, &trace, Box::new(MinRepl::new(&trace)));
        let large = faults(frames + 1, &trace, Box::new(MinRepl::new(&trace)));
        prop_assert!(large <= small);
    }

    /// When the whole page universe fits in core, every policy takes
    /// exactly the cold misses.
    #[test]
    fn ample_storage_means_cold_misses_only(trace in arb_trace()) {
        let d = distinct(&trace);
        for policy in all_policies(24, &trace) {
            let name = policy.name();
            let f = faults(24, &trace, policy);
            prop_assert_eq!(f, d, "{} with ample frames", name);
        }
    }

    /// The working-set simulator agrees with a direct recomputation of
    /// residency, and its fault count is monotone in the window.
    #[test]
    fn working_set_window_monotone(trace in arb_trace(), tau in 1u64..50) {
        let small = working_set_sim(&trace, tau);
        let large = working_set_sim(&trace, tau + 10);
        prop_assert!(large.faults <= small.faults);
        prop_assert!(small.references == trace.len() as u64);
        prop_assert!(small.mean_resident <= small.peak_resident as f64 + 1e-9);
    }

    /// The vacant-reserve variant keeps a frame free after every touch
    /// and never beats the plain variant by more than the cold-miss
    /// bound allows (sanity of the ATLAS discipline).
    #[test]
    fn vacant_reserve_invariant(trace in arb_trace()) {
        let frames = 8;
        let mut mem = PagedMemory::new(frames, Box::new(AtlasLearning::new()))
            .with_vacant_reserve();
        for (i, &p) in trace.iter().enumerate() {
            mem.touch(p, false, i as u64).expect("no pinning");
            prop_assert!(mem.resident_count() < frames, "a frame must stay vacant");
        }
        mem.check_invariants();
    }
}

mod victim_parity {
    use super::*;
    use dsa::core::clock::VirtualTime;
    use dsa::core::ids::FrameNo;
    use dsa::paging::sensors::Sensors;
    use std::collections::HashMap;
    use std::sync::{Arc, Mutex};

    /// Wraps a policy and records every victim it chooses, so two
    /// policies' full eviction sequences can be compared.
    struct Recording {
        inner: Box<dyn Replacer>,
        victims: Arc<Mutex<Vec<FrameNo>>>,
    }

    impl Replacer for Recording {
        fn loaded(&mut self, frame: FrameNo, page: PageNo, now: VirtualTime) {
            self.inner.loaded(frame, page, now);
        }

        fn touched(&mut self, frame: FrameNo, page: PageNo, now: VirtualTime, write: bool) {
            self.inner.touched(frame, page, now, write);
        }

        fn victim(
            &mut self,
            eligible: &[FrameNo],
            sensors: &mut Sensors,
            now: VirtualTime,
        ) -> FrameNo {
            let v = self.inner.victim(eligible, sensors, now);
            self.victims.lock().unwrap().push(v);
            v
        }

        fn evicted(&mut self, frame: FrameNo) {
            self.inner.evicted(frame);
        }

        fn hint_idle(&mut self, frame: FrameNo) {
            self.inner.hint_idle(frame);
        }

        fn name(&self) -> &'static str {
            self.inner.name()
        }
    }

    /// The pre-index LRU: a plain scan for the minimum stamp (first
    /// minimum wins, `min_by_key` semantics).
    #[derive(Default)]
    struct ScanLru {
        last_use: HashMap<FrameNo, VirtualTime>,
    }

    impl Replacer for ScanLru {
        fn loaded(&mut self, frame: FrameNo, _page: PageNo, now: VirtualTime) {
            self.last_use.insert(frame, now);
        }

        fn touched(&mut self, frame: FrameNo, _page: PageNo, now: VirtualTime, _write: bool) {
            self.last_use.insert(frame, now);
        }

        fn victim(
            &mut self,
            eligible: &[FrameNo],
            _sensors: &mut Sensors,
            _now: VirtualTime,
        ) -> FrameNo {
            *eligible
                .iter()
                .min_by_key(|f| self.last_use.get(f).copied().unwrap_or(0))
                .expect("eligible is never empty")
        }

        fn evicted(&mut self, frame: FrameNo) {
            self.last_use.remove(&frame);
        }

        fn name(&self) -> &'static str {
            "scan-LRU"
        }
    }

    /// The pre-index MIN: recompute every eligible frame's next use at
    /// victim time (last maximum wins, `max_by_key` semantics).
    struct ScanMin {
        uses: HashMap<PageNo, Vec<VirtualTime>>,
        resident: HashMap<FrameNo, PageNo>,
    }

    impl ScanMin {
        fn new(trace: &[PageNo]) -> ScanMin {
            let mut uses: HashMap<PageNo, Vec<VirtualTime>> = HashMap::new();
            for (i, &p) in trace.iter().enumerate() {
                uses.entry(p).or_default().push(i as VirtualTime);
            }
            ScanMin {
                uses,
                resident: HashMap::new(),
            }
        }

        fn next_use(&self, page: PageNo, now: VirtualTime) -> Option<VirtualTime> {
            let positions = self.uses.get(&page)?;
            let idx = positions.partition_point(|&t| t <= now);
            positions.get(idx).copied()
        }
    }

    impl Replacer for ScanMin {
        fn loaded(&mut self, frame: FrameNo, page: PageNo, _now: VirtualTime) {
            self.resident.insert(frame, page);
        }

        fn victim(
            &mut self,
            eligible: &[FrameNo],
            _sensors: &mut Sensors,
            now: VirtualTime,
        ) -> FrameNo {
            *eligible
                .iter()
                .max_by_key(|f| {
                    let page = self.resident.get(f).copied().unwrap_or(PageNo(u64::MAX));
                    self.next_use(page, now).unwrap_or(VirtualTime::MAX)
                })
                .expect("eligible is never empty")
        }

        fn evicted(&mut self, frame: FrameNo) {
            self.resident.remove(&frame);
        }

        fn name(&self) -> &'static str {
            "scan-MIN"
        }
    }

    /// Runs `trace` under `policy` with victim recording; returns
    /// (faults, victim sequence).
    fn recorded_run(
        frames: usize,
        trace: &[PageNo],
        policy: Box<dyn Replacer>,
    ) -> (u64, Vec<FrameNo>) {
        let victims = Arc::new(Mutex::new(Vec::new()));
        let recorder = Recording {
            inner: policy,
            victims: Arc::clone(&victims),
        };
        let mut mem = PagedMemory::new(frames, Box::new(recorder));
        let stats = mem.run_pages(trace).expect("no pinning");
        let seq = victims.lock().unwrap().clone();
        (stats.faults, seq)
    }

    proptest! {
        /// The indexed LRU chooses the same victim at every eviction as
        /// the plain scan it replaced.
        #[test]
        fn indexed_lru_matches_scan(trace in arb_trace(), frames in 1usize..12) {
            let (f_idx, v_idx) =
                recorded_run(frames, &trace, Box::new(LruRepl::new()));
            let (f_scan, v_scan) =
                recorded_run(frames, &trace, Box::new(ScanLru::default()));
            prop_assert_eq!(f_idx, f_scan);
            prop_assert_eq!(v_idx, v_scan);
        }

        /// The indexed MIN (cached next uses) chooses the same victim
        /// at every eviction as the recompute-on-demand scan.
        #[test]
        fn indexed_min_matches_scan(trace in arb_trace(), frames in 1usize..12) {
            let (f_idx, v_idx) =
                recorded_run(frames, &trace, Box::new(MinRepl::new(&trace)));
            let (f_scan, v_scan) =
                recorded_run(frames, &trace, Box::new(ScanMin::new(&trace)));
            prop_assert_eq!(f_idx, f_scan);
            prop_assert_eq!(v_idx, v_scan);
        }
    }
}
