//! The probe stream and the machine report are two views of one
//! execution: for every appendix machine, the `CountingProbe` totals
//! must equal the corresponding `MachineReport` fields exactly.

use dsa::machines::presets::{all_machines, favoured};
use dsa::machines::Machine;
use dsa::probe::CountingProbe;
use dsa::trace::program::ProgramCfg;
use dsa::trace::rng::Rng64;

fn workload() -> Vec<dsa::core::access::ProgramOp> {
    let mut rng = Rng64::new(7);
    let mut cfg = ProgramCfg {
        segments: 12,
        touches: 3000,
        advice_accuracy: Some(1.0),
        ..ProgramCfg::default()
    };
    cfg.wild_touch_prob = 0.02;
    cfg.generate(&mut rng).ops
}

fn machines() -> Vec<Box<dyn Machine>> {
    let mut v = all_machines();
    v.push(Box::new(favoured()));
    v
}

#[test]
fn counting_probe_reconciles_with_every_machine_report() {
    let ops = workload();
    for mut m in machines() {
        let mut probe = CountingProbe::new();
        let report = m
            .run_probed(&ops, &mut probe)
            .unwrap_or_else(|_| panic!("{}", m.name()));
        let name = m.name();
        assert_eq!(probe.touches, report.touches, "{name}: touches");
        assert_eq!(probe.faults, report.faults, "{name}: faults");
        assert_eq!(
            probe.fetched_words, report.fetched_words,
            "{name}: fetched words"
        );
        assert_eq!(
            probe.writeback_words, report.writeback_words,
            "{name}: writeback words"
        );
        assert_eq!(probe.advice, report.advice_ops, "{name}: advice ops");
        assert_eq!(
            probe.bounds_traps, report.bounds_caught,
            "{name}: bounds traps"
        );
        assert_eq!(probe.prefetches, report.prefetches, "{name}: prefetches");
        assert_eq!(
            probe.fetch_starts, probe.fetches,
            "{name}: every FetchStart pairs with a FetchDone"
        );
        assert!(probe.map_lookups > 0, "{name}: map lookups were traced");
    }
}

#[test]
fn probing_does_not_perturb_any_machine() {
    let ops = workload();
    for (mut plain, mut probed) in machines().into_iter().zip(machines()) {
        let a = plain.run(&ops).unwrap();
        let mut probe = CountingProbe::new();
        let b = probed.run_probed(&ops, &mut probe).unwrap();
        let name = plain.name();
        assert_eq!(a.touches, b.touches, "{name}");
        assert_eq!(a.faults, b.faults, "{name}");
        assert_eq!(a.fetched_words, b.fetched_words, "{name}");
        assert_eq!(a.writeback_words, b.writeback_words, "{name}");
        assert_eq!(a.bounds_caught, b.bounds_caught, "{name}");
        assert_eq!(a.wild_undetected, b.wild_undetected, "{name}");
        assert_eq!(a.advice_ops, b.advice_ops, "{name}");
        assert_eq!(a.prefetches, b.prefetches, "{name}");
        assert_eq!(a.map_time, b.map_time, "{name}");
        assert_eq!(a.fetch_time, b.fetch_time, "{name}");
    }
}
