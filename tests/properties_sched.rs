//! Property-based tests pinning the event-driven population simulator
//! to its reference implementations.
//!
//! Three contracts:
//!
//! * [`dsa::sched::EventSim`] in `AdmissionPolicy::Fixed` mode with
//!   full per-tenant paging engines is *report-identical* to
//!   [`dsa::sched::MultiprogramSim`] — same references, faults,
//!   completion times, CPU busy time, and makespan — across every
//!   registry replacement policy and every fetch-channel configuration.
//!   The event queue is an optimization of the stepper, not a
//!   different machine.
//! * [`dsa::paging::CompactLru`] (the compact resident-set summary the
//!   population mode runs on) faults exactly like
//!   [`dsa::paging::paged::PagedMemory`] under [`dsa::paging::LruRepl`].
//! * [`dsa::sched::sweep::tenant_sweep`] — admission decisions
//!   included — is a pure function of its grid: byte-identical reports
//!   at any worker count.

use dsa::core::clock::Cycles;
use dsa::core::ids::{JobId, PageNo};
use dsa::paging::paged::PagedMemory;
use dsa::paging::replacement::registry::{policy_by_index, policy_count, policy_label};
use dsa::paging::{CompactLru, LruRepl};
use dsa::probe::NullProbe;
use dsa::sched::sweep::{tenant_sweep, SweepCell, SweepPoint};
use dsa::sched::{
    AdmissionPolicy, EventSim, JobSpec, LoadControlCfg, MultiprogramSim, SimConfig, TenantSpec,
    TraceSpec,
};
use dsa::trace::refstring::RefStringCfg;
use proptest::prelude::*;

fn arb_traces() -> impl Strategy<Value = Vec<Vec<PageNo>>> {
    prop::collection::vec(
        prop::collection::vec(0u64..16, 0..120).prop_map(|v| v.into_iter().map(PageNo).collect()),
        1..5,
    )
}

fn sim_cfg(quantum: u32, channels: Option<usize>) -> SimConfig {
    SimConfig {
        instr_time: Cycles::from_micros(10),
        fetch_time: Cycles::from_millis(3),
        page_size: 512,
        quantum_refs: quantum,
        fetch_channels: channels,
    }
}

/// Runs the same mix through the reference stepper and the event-driven
/// simulator in parity mode and asserts report identity.
fn assert_parity(
    traces: &[Vec<PageNo>],
    frames: usize,
    policy: usize,
    quantum: u32,
    channels: Option<usize>,
) -> Result<(), String> {
    let cfg = sim_cfg(quantum, channels);
    let specs: Vec<JobSpec> = traces
        .iter()
        .enumerate()
        .map(|(i, t)| JobSpec {
            id: JobId(i as u32),
            trace: t.clone(),
            frames,
            replacer: policy_by_index(policy, frames, t),
        })
        .collect();
    let reference = MultiprogramSim::new(cfg, specs).run().expect("no pinning");

    let tenants: Vec<TenantSpec> = traces
        .iter()
        .enumerate()
        .map(|(i, t)| TenantSpec::new(i as u32, TraceSpec::Pages(t.clone()), frames))
        .collect();
    let event = EventSim::with_full_memory(
        cfg,
        frames * traces.len().max(1),
        AdmissionPolicy::Fixed,
        LoadControlCfg::default(),
        tenants,
        |spec| match &spec.trace {
            TraceSpec::Pages(t) => policy_by_index(policy, frames, t),
            TraceSpec::Stream { .. } => unreachable!("parity mixes are materialized"),
        },
    )
    .run(&mut NullProbe)
    .expect("no pinning");

    let label = policy_label(policy);
    prop_assert_eq!(
        event.tenants.len(),
        reference.jobs.len(),
        "{} population size",
        label
    );
    for (t, j) in event.tenants.iter().zip(reference.jobs.iter()) {
        prop_assert_eq!(t.references, j.references, "{} references", label);
        prop_assert_eq!(t.faults, j.faults, "{} faults", label);
        prop_assert_eq!(t.finished_at, j.finished_at, "{} finished_at", label);
    }
    prop_assert_eq!(event.cpu_busy, reference.cpu_busy, "{} cpu_busy", label);
    prop_assert_eq!(event.makespan, reference.makespan, "{} makespan", label);
    prop_assert_eq!(
        event.faults,
        reference.jobs.iter().map(|j| j.faults).sum::<u64>(),
        "{} total faults",
        label
    );
    Ok(())
}

proptest! {
    /// The event-driven simulator is report-identical to the reference
    /// per-cycle stepper for every replacement policy in the registry,
    /// with ample fetch capacity.
    #[test]
    fn event_sim_matches_reference_all_policies(
        traces in arb_traces(),
        frames in 1usize..6,
        qi in 0usize..3,
    ) {
        let quantum = [1u32, 7, 50][qi];
        for policy in 0..policy_count() {
            assert_parity(&traces, frames, policy, quantum, None)?;
        }
    }

    /// The same identity holds when fetches contend for finite transfer
    /// channels — the queueing delays land on the same instants.
    #[test]
    fn event_sim_matches_reference_under_channel_contention(
        traces in arb_traces(),
        frames in 1usize..6,
        qi in 0usize..3,
        channels in 1usize..4,
    ) {
        let quantum = [1u32, 13, 50][qi];
        for policy in [0usize, 1, 3] {
            assert_parity(&traces, frames, policy, quantum, Some(channels))?;
        }
    }

    /// The compact LRU resident-set summary faults exactly like the
    /// full paging engine under LRU replacement.
    #[test]
    fn compact_lru_matches_paged_memory(
        trace in prop::collection::vec(0u64..24, 0..400),
        capacity in 1usize..12,
    ) {
        let trace: Vec<PageNo> = trace.into_iter().map(PageNo).collect();
        let mut compact = CompactLru::new(capacity);
        let mut full = PagedMemory::new(capacity, Box::new(LruRepl::new()));
        for (vt, &p) in trace.iter().enumerate() {
            let cf = compact.touch(p);
            let ff = full
                .touch(p, false, vt as u64)
                .expect("no pinning")
                .is_fault();
            prop_assert_eq!(cf, ff, "fault disagreement at reference {}", vt);
            prop_assert_eq!(compact.resident_count(), full.resident_count());
        }
    }
}

fn sweep_points() -> Vec<SweepPoint> {
    let mut points = Vec::new();
    for &tenants in &[4usize, 12] {
        for &frames in &[8usize, 48] {
            for &policy in &[AdmissionPolicy::Open, AdmissionPolicy::WorkingSet] {
                points.push(SweepPoint {
                    tenants,
                    frames,
                    policy,
                });
            }
        }
    }
    points
}

fn run_sweep(jobs: usize) -> Vec<SweepCell> {
    let cfg = sim_cfg(20, Some(2));
    tenant_sweep(jobs, sweep_points(), cfg, LoadControlCfg::default(), |p| {
        (0..p.tenants as u32)
            .map(|i| {
                TenantSpec::new(
                    i,
                    TraceSpec::Stream {
                        cfg: RefStringCfg::WorkingSetPhases {
                            pages: 16,
                            set: 6,
                            phase_len: 120,
                        },
                        write_fraction: 0.0,
                        seed: u64::from(i) + 1,
                        len: 400,
                    },
                    16,
                )
            })
            .collect()
    })
    .into_iter()
    .map(|r| r.expect("compact sets cannot fail"))
    .collect()
}

/// The tenant sweep — admission decisions, deactivations, and all — is
/// identical no matter how many workers execute it.
#[test]
fn tenant_sweep_is_deterministic_across_worker_counts() {
    let serial = run_sweep(1);
    let parallel = run_sweep(4);
    assert_eq!(serial.len(), parallel.len());
    for (a, b) in serial.iter().zip(parallel.iter()) {
        assert_eq!(a.point, b.point);
        assert_eq!(a.report.makespan, b.report.makespan);
        assert_eq!(a.report.cpu_busy, b.report.cpu_busy);
        assert_eq!(a.report.references, b.report.references);
        assert_eq!(a.report.faults, b.report.faults);
        assert_eq!(a.report.peak_active, b.report.peak_active);
        assert_eq!(a.report.admissions, b.report.admissions);
        assert_eq!(a.report.admission_rejects, b.report.admission_rejects);
        assert_eq!(a.report.deactivations, b.report.deactivations);
        assert_eq!(a.report.ladder_steps, b.report.ladder_steps);
        assert_eq!(
            a.report.mean_ws_estimate.to_bits(),
            b.report.mean_ws_estimate.to_bits()
        );
        for (ta, tb) in a.report.tenants.iter().zip(b.report.tenants.iter()) {
            assert_eq!(ta.id, tb.id);
            assert_eq!(ta.references, tb.references);
            assert_eq!(ta.faults, tb.faults);
            assert_eq!(ta.finished_at, tb.finished_at);
        }
    }
}
