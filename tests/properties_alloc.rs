//! Property-based tests on the variable-unit allocators.

use dsa::freelist::compaction::compact;
use dsa::freelist::freelist::{FreeListAllocator, Placement};
use dsa::freelist::{BuddyAllocator, RiceAllocator};
use proptest::prelude::*;
use std::collections::HashMap;

/// A random operation stream: sizes for allocs, indices for frees.
#[derive(Clone, Debug)]
enum Op {
    Alloc(u64),
    FreeNth(usize),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (1u64..200).prop_map(Op::Alloc),
            (0usize..64).prop_map(Op::FreeNth),
        ],
        1..200,
    )
}

fn placements() -> Vec<Placement> {
    vec![
        Placement::FirstFit,
        Placement::NextFit,
        Placement::BestFit,
        Placement::WorstFit,
        Placement::TwoEnds { threshold: 64 },
    ]
}

proptest! {
    /// Under any op stream and any placement, the free list never
    /// overlaps blocks, never leaks words, and keeps coalescing maximal
    /// (`check_invariants` asserts all three).
    #[test]
    fn freelist_invariants_hold(ops in arb_ops()) {
        for policy in placements() {
            let mut a = FreeListAllocator::new(4096, policy);
            let mut live: Vec<u64> = Vec::new();
            let mut next = 0u64;
            for op in &ops {
                match *op {
                    Op::Alloc(size) => {
                        if a.alloc(next, size).is_ok() {
                            live.push(next);
                        }
                        next += 1;
                    }
                    Op::FreeNth(i) => {
                        if !live.is_empty() {
                            let id = live.swap_remove(i % live.len());
                            a.free(id).expect("live id");
                        }
                    }
                }
                a.check_invariants();
            }
            // Free everything: storage must return to one hole.
            for id in live {
                a.free(id).expect("live id");
            }
            a.check_invariants();
            prop_assert_eq!(a.free_words(), 4096);
            prop_assert_eq!(a.hole_count(), 1);
        }
    }

    /// Allocated blocks never change address or size until freed, and
    /// distinct blocks never alias.
    #[test]
    fn freelist_blocks_are_stable_and_disjoint(ops in arb_ops()) {
        let mut a = FreeListAllocator::new(4096, Placement::FirstFit);
        let mut expected: HashMap<u64, (u64, u64)> = HashMap::new();
        let mut next = 0u64;
        for op in &ops {
            match *op {
                Op::Alloc(size) => {
                    if let Ok(addr) = a.alloc(next, size) {
                        expected.insert(next, (addr.value(), size));
                    }
                    next += 1;
                }
                Op::FreeNth(i) => {
                    let keys: Vec<u64> = {
                        let mut k: Vec<u64> = expected.keys().copied().collect();
                        k.sort_unstable();
                        k
                    };
                    if !keys.is_empty() {
                        let id = keys[i % keys.len()];
                        expected.remove(&id);
                        a.free(id).expect("live id");
                    }
                }
            }
            for (&id, &(addr, size)) in &expected {
                let (got_addr, got_size) = a.lookup(id).expect("still live");
                prop_assert_eq!(got_addr.value(), addr);
                prop_assert_eq!(got_size, size);
            }
        }
    }

    /// Compaction preserves every live block's identity and size,
    /// preserves address order, and leaves exactly one hole.
    #[test]
    fn compaction_preserves_blocks(ops in arb_ops()) {
        let mut a = FreeListAllocator::new(4096, Placement::BestFit);
        let mut live: Vec<u64> = Vec::new();
        let mut next = 0u64;
        for op in &ops {
            match *op {
                Op::Alloc(size) => {
                    if a.alloc(next, size).is_ok() {
                        live.push(next);
                    }
                    next += 1;
                }
                Op::FreeNth(i) => {
                    if !live.is_empty() {
                        let id = live.swap_remove(i % live.len());
                        a.free(id).expect("live id");
                    }
                }
            }
        }
        let before = a.allocations_by_address();
        let free_before = a.free_words();
        let mut moves: Vec<(u64, u64)> = Vec::new();
        let _report = compact(&mut a, |_, old, new, _| {
            moves.push((old.value(), new.value()));
        });
        for &(old, new) in &moves {
            prop_assert!(new < old, "compaction only slides downward");
        }
        a.check_invariants();
        let after = a.allocations_by_address();
        prop_assert_eq!(a.free_words(), free_before, "no words created or lost");
        prop_assert!(a.hole_count() <= 1);
        // Same ids, same sizes, same relative order.
        let ids_before: Vec<(u64, u64)> = before.iter().map(|&(id, _, s)| (id, s)).collect();
        let ids_after: Vec<(u64, u64)> = after.iter().map(|&(id, _, s)| (id, s)).collect();
        prop_assert_eq!(ids_before, ids_after);
        // Packed: blocks start at 0 and are contiguous.
        let mut cursor = 0;
        for &(_, addr, size) in &after {
            prop_assert_eq!(addr, cursor);
            cursor += size;
        }
    }

    /// The Rice allocator's invariants hold under churn, and combining
    /// never loses words.
    #[test]
    fn rice_invariants_hold(ops in arb_ops()) {
        let mut a = RiceAllocator::new(4096);
        let mut live: Vec<u64> = Vec::new();
        let mut next = 0u64;
        for op in &ops {
            match *op {
                Op::Alloc(size) => {
                    if a.alloc(next, size, next).is_ok() {
                        live.push(next);
                    }
                    next += 1;
                }
                Op::FreeNth(i) => {
                    if !live.is_empty() {
                        let id = live.swap_remove(i % live.len());
                        a.free(id).expect("live id");
                    }
                }
            }
            a.check_invariants();
        }
        let free_before = a.free_words();
        a.combine_adjacent();
        a.check_invariants();
        prop_assert_eq!(a.free_words(), free_before, "combining conserves words");
    }

    /// Buddy invariants hold under churn; blocks stay aligned and the
    /// arena reassembles fully after freeing everything.
    #[test]
    fn buddy_invariants_hold(ops in arb_ops()) {
        let mut a = BuddyAllocator::new(12); // 4096 words
        let mut live: Vec<u64> = Vec::new();
        let mut next = 0u64;
        for op in &ops {
            match *op {
                Op::Alloc(size) => {
                    if a.alloc(next, size).is_ok() {
                        live.push(next);
                    }
                    next += 1;
                }
                Op::FreeNth(i) => {
                    if !live.is_empty() {
                        let id = live.swap_remove(i % live.len());
                        a.free(id).expect("live id");
                    }
                }
            }
            a.check_invariants();
        }
        for id in live {
            a.free(id).expect("live id");
        }
        a.check_invariants();
        prop_assert_eq!(a.free_words(), 4096);
    }

    /// Metamorphic: for the same op stream, best-fit never ends with a
    /// larger hole count than worst-fit after full free-down (both
    /// coalesce to one hole), and both conserve words throughout.
    #[test]
    fn placements_agree_on_conservation(ops in arb_ops()) {
        let mut results = Vec::new();
        for policy in placements() {
            let mut a = FreeListAllocator::new(4096, policy);
            let mut live: Vec<u64> = Vec::new();
            let mut next = 0u64;
            let mut served_words = 0u64;
            for op in &ops {
                match *op {
                    Op::Alloc(size) => {
                        if a.alloc(next, size).is_ok() {
                            live.push(next);
                            served_words += size;
                        }
                        next += 1;
                    }
                    Op::FreeNth(i) => {
                        if !live.is_empty() {
                            let id = live.swap_remove(i % live.len());
                            let (_, size) = a.lookup(id).expect("live");
                            served_words -= size;
                            a.free(id).expect("live id");
                        }
                    }
                }
                prop_assert_eq!(a.allocated_words(), served_words);
            }
            results.push(a.allocated_words());
        }
    }
}

/// Reference linear-scan best fit over `holes` (address order): the
/// smallest adequate hole, lowest address on ties, with the classic
/// exact-fit early exit. Returns the chosen address and the modeled
/// search length (holes examined).
fn best_fit_scan(holes: &[(u64, u64)], size: u64) -> (Option<u64>, u64) {
    let mut best: Option<(u64, u64)> = None; // (size, addr)
    for (i, &(addr, hsize)) in holes.iter().enumerate() {
        if hsize == size {
            return (Some(addr), i as u64 + 1);
        }
        if hsize > size && best.is_none_or(|(bsize, _)| hsize < bsize) {
            best = Some((hsize, addr));
        }
    }
    (best.map(|(_, addr)| addr), holes.len() as u64)
}

/// Reference linear-scan worst fit: the first strict maximum in
/// address order (largest hole, lowest address on ties), no early
/// exit — the whole list is always examined.
fn worst_fit_scan(holes: &[(u64, u64)], size: u64) -> (Option<u64>, u64) {
    let mut best: Option<(u64, u64)> = None;
    for &(addr, hsize) in holes {
        if best.is_none_or(|(bsize, _)| hsize > bsize) {
            best = Some((hsize, addr));
        }
    }
    (
        best.filter(|&(bsize, _)| bsize >= size)
            .map(|(_, addr)| addr),
        holes.len() as u64,
    )
}

/// Reference linear-scan first fit: the first adequate hole in
/// address order. The scan stops at the chosen hole, so the modeled
/// search length is its rank; on failure the whole list was examined.
fn first_fit_scan(holes: &[(u64, u64)], size: u64) -> (Option<u64>, u64) {
    for (i, &(addr, hsize)) in holes.iter().enumerate() {
        if hsize >= size {
            return (Some(addr), i as u64 + 1);
        }
    }
    (None, holes.len() as u64)
}

proptest! {
    /// The size-indexed best-fit/worst-fit lookups and the segregated
    /// first-fit bins pick the same hole and report the same modeled
    /// search length as the linear scans they replaced, under any op
    /// stream.
    #[test]
    fn size_index_matches_linear_scan(ops in arb_ops()) {
        for (policy, scan) in [
            (
                Placement::BestFit,
                best_fit_scan as fn(&[(u64, u64)], u64) -> (Option<u64>, u64),
            ),
            (Placement::WorstFit, worst_fit_scan),
            (Placement::FirstFit, first_fit_scan),
        ] {
            let mut a = FreeListAllocator::new(4096, policy);
            let mut live: Vec<u64> = Vec::new();
            let mut next = 0u64;
            for op in &ops {
                match *op {
                    Op::Alloc(size) => {
                        let holes: Vec<(u64, u64)> = a.holes().collect();
                        let (want_addr, want_probes) = scan(&holes, size);
                        let before = a.stats().probes;
                        let got = a.alloc(next, size);
                        prop_assert_eq!(
                            got.ok().map(|p| p.value()),
                            want_addr,
                            "{:?}: choice diverged from the scan",
                            policy
                        );
                        prop_assert_eq!(
                            a.stats().probes - before,
                            want_probes,
                            "{:?}: modeled search length diverged",
                            policy
                        );
                        if want_addr.is_some() {
                            live.push(next);
                        }
                        next += 1;
                    }
                    Op::FreeNth(i) => {
                        if !live.is_empty() {
                            let id = live.swap_remove(i % live.len());
                            a.free(id).expect("live id");
                        }
                    }
                }
                a.check_invariants();
            }
        }
    }

    /// Quick lists (deferred coalescing) never change *accounting*:
    /// under any op stream, an allocator with quick lists enabled
    /// reports the same allocated and free words as a twin without
    /// them, every parked word is counted free, and after flushing and
    /// freeing everything the storage coalesces back to one hole.
    #[test]
    fn quick_lists_preserve_accounting(ops in arb_ops()) {
        let mut plain = FreeListAllocator::new(4096, Placement::FirstFit);
        let mut quick = FreeListAllocator::new(4096, Placement::FirstFit);
        quick.enable_quick_lists(64, 8);
        let mut live: Vec<u64> = Vec::new();
        let mut next = 0u64;
        for op in &ops {
            match *op {
                Op::Alloc(size) => {
                    // Placement may differ (that is the point of the
                    // fast path); success/failure may too, so keep the
                    // twins in step by driving both and only tracking
                    // ids live in both.
                    let a = plain.alloc(next, size).is_ok();
                    let b = quick.alloc(next, size).is_ok();
                    if a && b {
                        live.push(next);
                    } else {
                        if a {
                            plain.free(next).expect("just allocated");
                        }
                        if b {
                            quick.free(next).expect("just allocated");
                        }
                    }
                    next += 1;
                }
                Op::FreeNth(i) => {
                    if !live.is_empty() {
                        let id = live.swap_remove(i % live.len());
                        plain.free(id).expect("live id");
                        quick.free(id).expect("live id");
                    }
                }
            }
            prop_assert_eq!(plain.allocated_words(), quick.allocated_words());
            prop_assert_eq!(plain.free_words(), quick.free_words());
            prop_assert!(quick.quick_parked_words() <= quick.free_words());
            quick.check_invariants();
        }
        for id in live {
            quick.free(id).expect("live id");
        }
        quick.flush_quick_lists();
        quick.check_invariants();
        prop_assert_eq!(quick.free_words(), 4096);
        prop_assert_eq!(quick.hole_count(), 1);
    }

    /// The incrementally maintained `largest_free` and the lazily
    /// rebuilt sorted-allocations view agree with recomputation from
    /// scratch at every step, for every placement policy.
    #[test]
    fn cached_views_match_recomputation(ops in arb_ops()) {
        for policy in placements() {
            let mut a = FreeListAllocator::new(4096, policy);
            let mut live: Vec<u64> = Vec::new();
            let mut next = 0u64;
            for op in &ops {
                match *op {
                    Op::Alloc(size) => {
                        if a.alloc(next, size).is_ok() {
                            live.push(next);
                        }
                        next += 1;
                    }
                    Op::FreeNth(i) => {
                        if !live.is_empty() {
                            let id = live.swap_remove(i % live.len());
                            a.free(id).expect("live id");
                        }
                    }
                }
                let holes: Vec<(u64, u64)> = a.holes().collect();
                let largest = holes.iter().map(|&(_, s)| s).max().unwrap_or(0);
                prop_assert_eq!(a.largest_free(), largest);
                // Query twice: the second hits the cache and must agree.
                let view = a.allocations_by_address();
                let mut expect: Vec<(u64, u64)> = live
                    .iter()
                    .map(|&id| {
                        let (addr, size) = a.lookup(id).expect("live");
                        (addr.value(), size)
                    })
                    .collect();
                expect.sort_unstable();
                let got: Vec<(u64, u64)> =
                    view.iter().map(|&(_, addr, size)| (addr, size)).collect();
                prop_assert_eq!(&got, &expect);
                prop_assert_eq!(a.allocations_by_address(), view);
            }
        }
    }
}
