//! The golden-output gauntlet: six fast experiment binaries, pinned
//! stdout, byte-for-byte.
//!
//! Two invariants at once:
//!
//! * **Determinism across parallelism** — `--jobs 1` and `--jobs 4`
//!   must produce identical bytes. The engine merges grid cells in grid
//!   order, so the jobs width is not allowed to leak into the output.
//! * **Determinism across commits** — the output must match the file
//!   under `tests/golden/`, so a behavioural drift in any machine,
//!   policy, or trace generator fails CI with a diff instead of
//!   silently rewriting the numbers the paper reproduction reports.
//!
//! Changing an experiment's output on purpose is fine — regenerate the
//! file (`./target/debug/<bin> --jobs 1 <extra args from GAUNTLET> >
//! tests/golden/<bin>.txt`) and commit it so the diff is reviewable.
//!
//! The binaries live in `dsa-bench`, a different package, so
//! `CARGO_BIN_EXE_*` is not available here; we locate them in the
//! build tree relative to this test executable and fail loudly (not
//! skip) if they are missing — CI builds them first.

use std::path::PathBuf;
use std::process::Command;

/// The gauntlet: fast (all under ~1 s in a debug build) and fully
/// deterministic, including every printed column. Each entry carries
/// the extra arguments its golden file was generated with (most need
/// none; `exp_22` pins a small population so the gauntlet stays fast).
const GAUNTLET: [(&str, &[&str]); 7] = [
    ("exp_01_artificial_contiguity", &[]),
    ("exp_06_faults", &[]),
    ("exp_11_multics_dual", &[]),
    ("exp_14_promotion", &[]),
    ("exp_17_drum_queueing", &[]),
    ("exp_19_overload", &[]),
    ("exp_22_tenant_sweep", &["--tenants", "1000"]),
];

/// `target/<profile>/` for the build running this test: the test
/// executable sits in `target/<profile>/deps/`, one level down.
fn bin_dir() -> PathBuf {
    let mut dir = std::env::current_exe().expect("test has a path");
    dir.pop(); // the test executable itself
    if dir.ends_with("deps") {
        dir.pop();
    }
    dir
}

fn run(bin: &str, jobs: &str, extra: &[&str]) -> String {
    let path = bin_dir().join(bin);
    assert!(
        path.exists(),
        "{} not built — run `cargo build -p dsa-bench --bins` first (CI's golden job does)",
        path.display()
    );
    let out = Command::new(&path)
        .args(["--jobs", jobs])
        .args(extra)
        .output()
        .unwrap_or_else(|e| panic!("spawning {bin}: {e}"));
    assert!(
        out.status.success(),
        "{bin} --jobs {jobs} exited with {:?}; stderr:\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("experiment output is UTF-8")
}

/// First differing line, for a readable failure message.
fn first_diff(a: &str, b: &str) -> String {
    for (i, (la, lb)) in a.lines().zip(b.lines()).enumerate() {
        if la != lb {
            return format!(
                "first difference at line {}:\n  got:  {la}\n  want: {lb}",
                i + 1
            );
        }
    }
    format!(
        "line counts differ: got {} lines, want {}",
        a.lines().count(),
        b.lines().count()
    )
}

#[test]
fn golden_outputs_match_at_every_jobs_width() {
    let golden_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    for (bin, extra) in GAUNTLET {
        let golden_path = golden_dir.join(format!("{bin}.txt"));
        let golden = std::fs::read_to_string(&golden_path)
            .unwrap_or_else(|e| panic!("reading {}: {e}", golden_path.display()));
        let seq = run(bin, "1", extra);
        assert!(
            seq == golden,
            "{bin} --jobs 1 drifted from tests/golden/{bin}.txt — {}\n\
             (if the change is intentional, regenerate the golden file)",
            first_diff(&seq, &golden)
        );
        let par = run(bin, "4", extra);
        assert!(
            par == seq,
            "{bin}: --jobs 4 output differs from --jobs 1 — parallel merge \
             leaked scheduling into the output; {}",
            first_diff(&par, &seq)
        );
    }
}
