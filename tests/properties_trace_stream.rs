//! Property-based tests pinning the streaming trace layer's
//! exact-replay contract: a stream is a drop-in replacement for the
//! materializing generator — same configuration, same seed, same
//! references — and any clone or fast-forward resumes the identical
//! tail.

use dsa::trace::allocstream::{AllocStreamCfg, SizeDist};
use dsa::trace::refstring::RefStringCfg;
use dsa::trace::rng::Rng64;
use dsa::trace::RefStream;
use proptest::prelude::*;

/// Every reference-string regime, with parameters drawn from the
/// ranges the experiments actually use.
fn arb_cfg() -> impl Strategy<Value = RefStringCfg> {
    prop_oneof![
        (1u64..200).prop_map(|pages| RefStringCfg::Uniform { pages }),
        (1u64..100, 0.2f64..1.4).prop_map(|(pages, theta)| RefStringCfg::LruStack { pages, theta }),
        (2u64..100, 1u64..40, 1u64..50).prop_map(|(pages, set, phase_len)| {
            RefStringCfg::WorkingSetPhases {
                pages,
                set: set.min(pages),
                phase_len,
            }
        }),
        (1u64..200).prop_map(|pages| RefStringCfg::SequentialSweep { pages }),
        (1u64..20, 0u64..40, 1u64..10).prop_map(|(inner, outer, period)| {
            RefStringCfg::LoopNest {
                inner,
                outer,
                period,
            }
        }),
        (1u64..50, 1u64..200, 0.0f64..1.0)
            .prop_map(|(hot, cold, p_hot)| { RefStringCfg::HotCold { hot, cold, p_hot } }),
    ]
}

proptest! {
    /// Collecting a stream reproduces the legacy `Vec` generator
    /// byte-for-byte, for every regime: same pages, same access kinds,
    /// same order.
    #[test]
    fn stream_collects_to_the_generator(
        cfg in arb_cfg(),
        seed in any::<u64>(),
        len in 0usize..600,
        wf in 0.0f64..1.0,
    ) {
        let legacy = cfg.generate(len, wf, &mut Rng64::new(seed));
        let streamed: Vec<_> = cfg.stream(wf, seed).take(len).collect();
        prop_assert_eq!(streamed, legacy);
    }

    /// Same seed ⇒ byte-identical sequence across any resume point:
    /// a clone taken mid-stream and a `stream_at` fast-forwarded to the
    /// same position both continue with exactly the suffix the
    /// uninterrupted stream produces.
    #[test]
    fn stream_resumes_identically(
        cfg in arb_cfg(),
        seed in any::<u64>(),
        len in 1usize..400,
        split_frac in 0.0f64..1.0,
        wf in 0.0f64..1.0,
    ) {
        let split = ((len as f64 * split_frac) as usize).min(len - 1);
        let full: Vec<_> = cfg.stream(wf, seed).take(len).collect();

        // Checkpoint by cloning: O(1), resumes the exact tail.
        let mut s = cfg.stream(wf, seed);
        for _ in 0..split {
            s.next();
        }
        let checkpoint = s.clone();
        prop_assert_eq!(checkpoint.position(), split as u64);
        let tail: Vec<_> = checkpoint.take(len - split).collect();
        prop_assert_eq!(&tail, &full[split..]);

        // Checkpoint by fast-forward: `stream_at` lands on the same
        // suffix from nothing but (cfg, wf, seed, position).
        let resumed: Vec<_> = cfg
            .stream_at(wf, seed, split as u64)
            .take(len - split)
            .collect();
        prop_assert_eq!(&resumed, &full[split..]);
    }

    /// The allocation-event stream obeys the same contract: collect
    /// equals the legacy generator, and fast-forward resumes exactly.
    #[test]
    fn alloc_stream_collects_and_resumes(
        mean in 1.0f64..80.0,
        cap in 1u64..500,
        lifetime in 1.0f64..2000.0,
        target in 100u64..20_000,
        seed in any::<u64>(),
        len in 1usize..400,
        split_frac in 0.0f64..1.0,
    ) {
        let cfg = AllocStreamCfg {
            sizes: SizeDist::Exponential { mean, cap },
            mean_lifetime: lifetime,
            target_live_words: target,
        };
        let legacy = cfg.generate(len, &mut Rng64::new(seed));
        let streamed: Vec<_> = cfg.stream(seed).take(len).collect();
        prop_assert_eq!(&streamed, &legacy);

        let split = ((len as f64 * split_frac) as usize).min(len - 1);
        let resumed: Vec<_> = cfg
            .stream_at(seed, split as u64)
            .take(len - split)
            .collect();
        prop_assert_eq!(&resumed, &legacy[split..]);
    }
}
