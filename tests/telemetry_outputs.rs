//! The telemetry exporter gauntlet: pinned Prometheus bytes, jobs-width
//! determinism for the JSON export, and the universal-flags contract.
//!
//! Three invariants:
//!
//! * **Pinned rendering** — `exp_01 --jobs 1 --metrics-out x.prom`
//!   must reproduce `tests/golden/exp_01_metrics.prom` byte for byte,
//!   so neither the experiment's numbers nor the exposition-format
//!   renderer can drift silently. Regenerate on purpose with
//!   `./target/debug/exp_01_artificial_contiguity --jobs 1
//!   --metrics-out tests/golden/exp_01_metrics.prom` and commit the
//!   diff.
//! * **Jobs-width determinism** — the JSON export at `--jobs 1` and
//!   `--jobs 4` must be identical bytes: the metrics ride the same
//!   grid-ordered merge as stdout, so parallelism may not leak in.
//! * **Universal flags** — every experiment binary's `--help` must
//!   mention `--metrics-out` and `--flight-recorder`; the registry in
//!   `dsa_exec::cli::standard_flags` is only honest if every binary
//!   actually routes through it.
//!
//! Like the golden-output gauntlet, binaries are located in the build
//! tree relative to this test executable and missing ones fail loudly —
//! CI builds `-p dsa-bench --bins` first.

use std::path::PathBuf;
use std::process::Command;

/// Every experiment binary in `dsa-bench` — kept in sync by the loud
/// failure below if one is missing, and by code review if one is added
/// without being listed here.
const ALL_BINARIES: [&str; 20] = [
    "exp_01_artificial_contiguity",
    "exp_02_space_time",
    "exp_03_mapping_overhead",
    "exp_04_replacement",
    "exp_05_placement",
    "exp_06_faults",
    "exp_06_page_size",
    "exp_07_compaction",
    "exp_08_advice",
    "exp_09_machine_survey",
    "exp_10_name_spaces",
    "exp_11_multics_dual",
    "exp_12_atlas_learning",
    "exp_13_bounds",
    "exp_14_promotion",
    "exp_15_sharing",
    "exp_16_load_control",
    "exp_17_drum_queueing",
    "exp_18_concurrency",
    "exp_19_overload",
];

/// `target/<profile>/` for the build running this test: the test
/// executable sits in `target/<profile>/deps/`, one level down.
fn bin_dir() -> PathBuf {
    let mut dir = std::env::current_exe().expect("test has a path");
    dir.pop(); // the test executable itself
    if dir.ends_with("deps") {
        dir.pop();
    }
    dir
}

fn bin_path(bin: &str) -> PathBuf {
    let path = bin_dir().join(bin);
    assert!(
        path.exists(),
        "{} not built — run `cargo build -p dsa-bench --bins` first (CI's golden job does)",
        path.display()
    );
    path
}

/// Runs `bin` with `args`, asserts success, returns nothing — the
/// interesting output is whatever `--metrics-out` wrote.
fn run(bin: &str, args: &[&str]) {
    let out = Command::new(bin_path(bin))
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("spawning {bin}: {e}"));
    assert!(
        out.status.success(),
        "{bin} {args:?} exited with {:?}; stderr:\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
}

/// A scratch path under the target dir (kept out of the source tree),
/// unique per test so parallel tests don't collide.
fn scratch(name: &str) -> PathBuf {
    let dir = bin_dir().join("telemetry-test-scratch");
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir.join(name)
}

/// First differing line, for a readable failure message.
fn first_diff(a: &str, b: &str) -> String {
    for (i, (la, lb)) in a.lines().zip(b.lines()).enumerate() {
        if la != lb {
            return format!(
                "first difference at line {}:\n  got:  {la}\n  want: {lb}",
                i + 1
            );
        }
    }
    format!(
        "line counts differ: got {} lines, want {}",
        a.lines().count(),
        b.lines().count()
    )
}

#[test]
fn exp_01_prometheus_export_matches_golden() {
    let golden_path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/exp_01_metrics.prom");
    let golden = std::fs::read_to_string(&golden_path)
        .unwrap_or_else(|e| panic!("reading {}: {e}", golden_path.display()));
    let out = scratch("exp_01.prom");
    run(
        "exp_01_artificial_contiguity",
        &[
            "--jobs",
            "1",
            "--metrics-out",
            out.to_str().expect("utf-8 path"),
        ],
    );
    let got = std::fs::read_to_string(&out).expect("metrics file written");
    assert!(
        got == golden,
        "exp_01 Prometheus export drifted from tests/golden/exp_01_metrics.prom — {}\n\
         (if the change is intentional, regenerate the golden file)",
        first_diff(&got, &golden)
    );
}

#[test]
fn exp_01_json_export_is_identical_across_jobs_widths() {
    let seq = scratch("exp_01_j1.json");
    let par = scratch("exp_01_j4.json");
    run(
        "exp_01_artificial_contiguity",
        &[
            "--jobs",
            "1",
            "--metrics-out",
            seq.to_str().expect("utf-8 path"),
        ],
    );
    run(
        "exp_01_artificial_contiguity",
        &[
            "--jobs",
            "4",
            "--metrics-out",
            par.to_str().expect("utf-8 path"),
        ],
    );
    let a = std::fs::read_to_string(&seq).expect("jobs-1 metrics written");
    let b = std::fs::read_to_string(&par).expect("jobs-4 metrics written");
    assert!(
        !a.is_empty() && a.trim_start().starts_with('{'),
        "expected a JSON document, got:\n{a}"
    );
    assert!(
        a == b,
        "exp_01 --metrics-out JSON differs between --jobs 1 and --jobs 4 — \
         parallel merge leaked scheduling into the metrics; {}",
        first_diff(&a, &b)
    );
}

/// The overload experiment's export carries the multi-tenant series —
/// per-tenant quota/occupancy gauges, shed and quota-denial counters,
/// the per-shard quarantine gauge, and the guard's admission/shed
/// totals — in pinned tenant order. A drift in any of them (or in the
/// exposition renderer) fails here with a diff.
#[test]
fn exp_19_tenant_series_match_golden() {
    let golden_path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/exp_19_metrics.prom");
    let golden = std::fs::read_to_string(&golden_path)
        .unwrap_or_else(|e| panic!("reading {}: {e}", golden_path.display()));
    for series in [
        "tenant_quota_words",
        "tenant_in_use_words",
        "tenant_shed_total",
        "tenant_quota_denials_total",
        "shard_quarantined",
        "admission_rejects_total",
        "tenant_sheds_granted_total",
    ] {
        assert!(
            golden.contains(series),
            "tests/golden/exp_19_metrics.prom lost the {series} series — \
             the multi-tenant export contract broke"
        );
    }
    let out = scratch("exp_19.prom");
    run(
        "exp_19_overload",
        &[
            "--jobs",
            "1",
            "--metrics-out",
            out.to_str().expect("utf-8 path"),
        ],
    );
    let got = std::fs::read_to_string(&out).expect("metrics file written");
    assert!(
        got == golden,
        "exp_19 Prometheus export drifted from tests/golden/exp_19_metrics.prom — {}\n\
         (if the change is intentional, regenerate the golden file)",
        first_diff(&got, &golden)
    );
}

#[test]
fn every_binary_advertises_the_universal_telemetry_flags() {
    for bin in ALL_BINARIES {
        let out = Command::new(bin_path(bin))
            .arg("--help")
            .output()
            .unwrap_or_else(|e| panic!("spawning {bin}: {e}"));
        assert!(
            out.status.success(),
            "{bin} --help exited with {:?}",
            out.status.code()
        );
        let help = String::from_utf8(out.stdout).expect("usage is UTF-8");
        for flag in ["--metrics-out", "--flight-recorder", "--jobs"] {
            assert!(
                help.contains(flag),
                "{bin} --help does not mention {flag} — it must route through \
                 dsa_exec::cli::enforce_standard_flags; help was:\n{help}"
            );
        }
    }
}
