//! Property-based and concurrency tests on the `dsa-arena` allocation
//! service.
//!
//! Three claims, each load-bearing for the service's contract:
//!
//! * **Conservation** — allocated words plus free words equal capacity
//!   at every step, under any op stream (no leak, no mint).
//! * **No double hand-out** — under concurrent churn from 1, 2, and 8
//!   threads, no word of storage is ever inside two live allocations,
//!   observed from outside via a shared claim bitmap.
//! * **Sequential equivalence** — a 1-shard arena is the bare
//!   [`FreeListAllocator`]: same placement decisions, same addresses,
//!   same failures, same modeled search counts, under any op stream.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use dsa::arena::{ArenaService, Request, Response};
use dsa::freelist::freelist::{FreeListAllocator, Placement};
use dsa::trace::Rng64;
use proptest::prelude::*;

/// A random operation stream: sizes for allocs, indices for frees.
#[derive(Clone, Debug)]
enum Op {
    Alloc(u64),
    FreeNth(usize),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (1u64..200).prop_map(Op::Alloc),
            (0usize..64).prop_map(Op::FreeNth),
        ],
        1..200,
    )
}

proptest! {
    /// Words are conserved across every shard at every step: the
    /// snapshot's allocated + free always equals total capacity, and
    /// the arena's own invariant checker (per-shard free-list checks,
    /// ownership consistency, homed == owned) stays green.
    #[test]
    fn arena_conserves_words(ops in arb_ops()) {
        let svc = ArenaService::striped(4, 1024, Placement::FirstFit);
        let arena = svc.arena().expect("striped");
        let mut live: Vec<u64> = Vec::new();
        let mut next = 0u64;
        for op in &ops {
            let req = match *op {
                Op::Alloc(words) => {
                    next += 1;
                    Request::alloc(next - 1, words)
                }
                Op::FreeNth(i) => {
                    if live.is_empty() {
                        continue;
                    }
                    Request::free(live.swap_remove(i % live.len()))
                }
            };
            match (req, &svc.submit(&[req])[0]) {
                (Request::Alloc { id, .. }, Response::Allocated { .. }) => live.push(id),
                (_, Response::Freed { .. } | Response::Failed { .. }) => {}
                (req, resp) => prop_assert!(false, "{req:?} answered by {resp:?}"),
            }
            arena.check_invariants();
            let snap = arena.snapshot();
            prop_assert_eq!(
                snap.allocated_words() + snap.free_words(),
                snap.capacity(),
                "allocated + free must equal capacity"
            );
        }
    }

    /// A 1-shard arena behind the service makes byte-identical
    /// placement decisions to the bare sequential allocator: same
    /// success/failure on every request, same address on every success,
    /// and the same modeled search count at the end.
    #[test]
    fn one_shard_matches_bare_allocator(ops in arb_ops()) {
        for policy in [Placement::FirstFit, Placement::BestFit, Placement::WorstFit] {
            let svc = ArenaService::striped(1, 2048, policy);
            let mut bare = FreeListAllocator::new(2048, policy);
            let mut live: Vec<u64> = Vec::new();
            let mut next = 0u64;
            for op in &ops {
                match *op {
                    Op::Alloc(words) => {
                        let id = next;
                        next += 1;
                        let got = &svc.submit(&[Request::alloc(id, words)])[0];
                        match (got, bare.alloc(id, words)) {
                            (Response::Allocated { addr, .. }, Ok(want)) => {
                                prop_assert_eq!(
                                    addr.value(),
                                    want.value(),
                                    "{:?}: placement diverged",
                                    policy
                                );
                                live.push(id);
                            }
                            (Response::Failed { .. }, Err(_)) => {}
                            (got, want) => prop_assert!(
                                false,
                                "{policy:?}: arena said {got:?}, bare said {want:?}"
                            ),
                        }
                    }
                    Op::FreeNth(i) => {
                        if live.is_empty() {
                            continue;
                        }
                        let id = live.swap_remove(i % live.len());
                        prop_assert!(svc.submit(&[Request::free(id)])[0].is_ok());
                        bare.free(id).expect("live id");
                    }
                }
            }
            let snap = &svc.arena().expect("striped").snapshot().shards[0];
            prop_assert_eq!(snap.alloc.stats.probes, bare.stats().probes,
                "modeled search count diverged");
            prop_assert_eq!(snap.alloc.free_words, bare.free_words());
            prop_assert_eq!(snap.alloc.largest_free, bare.largest_free());
            prop_assert_eq!(snap.alloc.hole_count, bare.hole_count());
        }
    }
}

/// Claim bitmap covering the arena's global address space: each
/// successful allocation claims its word range, each free releases it.
/// Two live allocations sharing a word — a double hand-out — trips the
/// claim assert in whichever thread arrives second.
struct ClaimMap {
    words: Vec<AtomicBool>,
}

impl ClaimMap {
    fn new(capacity: u64) -> ClaimMap {
        ClaimMap {
            words: (0..capacity).map(|_| AtomicBool::new(false)).collect(),
        }
    }

    fn claim(&self, addr: u64, len: u64) -> bool {
        (addr..addr + len).all(|w| !self.words[w as usize].swap(true, Ordering::AcqRel))
    }

    fn release(&self, addr: u64, len: u64) {
        for w in addr..addr + len {
            assert!(
                self.words[w as usize].swap(false, Ordering::AcqRel),
                "released a word that was never claimed"
            );
        }
    }
}

/// Churns the striped service from `threads` workers, each owning an id
/// namespace, while a shared [`ClaimMap`] checks from outside that no
/// word is ever inside two live allocations.
fn churn_no_double_handout(threads: u64) {
    const SHARDS: u32 = 4;
    const SHARD_WORDS: u64 = 4096;
    const OPS: usize = 3_000;
    let svc = ArenaService::striped(SHARDS, SHARD_WORDS, Placement::FirstFit);
    let claims = ClaimMap::new(u64::from(SHARDS) * SHARD_WORDS);
    let overlaps = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for t in 0..threads {
            let svc = &svc;
            let claims = &claims;
            let overlaps = &overlaps;
            scope.spawn(move || {
                let mut rng = Rng64::new(900 + t);
                // id -> (global addr, words) for this worker's live set.
                let mut live: Vec<(u64, u64, u64)> = Vec::new();
                let mut next = 0u64;
                for _ in 0..OPS {
                    let grow = live.is_empty() || rng.next_u64() % 100 < 55;
                    if grow {
                        let id = (t << 40) | next;
                        next += 1;
                        let words = 1 + rng.next_u64() % 96;
                        if let Response::Allocated { addr, .. } =
                            &svc.submit(&[Request::alloc(id, words)])[0]
                        {
                            if !claims.claim(addr.value(), words) {
                                overlaps.fetch_add(1, Ordering::Relaxed);
                            }
                            live.push((id, addr.value(), words));
                        }
                    } else {
                        let i = (rng.next_u64() as usize) % live.len();
                        let (id, addr, words) = live.swap_remove(i);
                        // Release BEFORE the service frees: otherwise a
                        // racing re-allocation of the words would trip
                        // the map spuriously.
                        claims.release(addr, words);
                        assert!(svc.submit(&[Request::free(id)])[0].is_ok());
                    }
                }
                for (id, addr, words) in live {
                    claims.release(addr, words);
                    assert!(svc.submit(&[Request::free(id)])[0].is_ok());
                }
            });
        }
    });
    assert_eq!(
        overlaps.load(Ordering::Relaxed),
        0,
        "a word of storage was handed to two live allocations"
    );
    let arena = svc.arena().expect("striped");
    arena.check_invariants();
    let snap = arena.snapshot();
    assert_eq!(snap.allocated_words(), 0, "everything was freed");
    assert_eq!(snap.free_words(), snap.capacity());
}

#[test]
fn no_double_handout_1_thread() {
    churn_no_double_handout(1);
}

#[test]
fn no_double_handout_2_threads() {
    churn_no_double_handout(2);
}

#[test]
fn no_double_handout_8_threads() {
    churn_no_double_handout(8);
}
