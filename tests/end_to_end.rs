//! End-to-end data-integrity and accounting tests across crates.

use dsa::core::clock::Cycles;
use dsa::core::ids::{JobId, Name, PhysAddr};
use dsa::freelist::compaction::compact;
use dsa::freelist::freelist::{FreeListAllocator, Placement};
use dsa::mapping::{AddressMap, BlockMap, MapCosts};
use dsa::paging::LruRepl;
use dsa::sched::{JobSpec, MultiprogramSim, SimConfig};
use dsa::seg::store::{SegReplacement, SegmentStore, StoreBackend};
use dsa::storage::CoreMemory;
use dsa::trace::refstring::RefStringCfg;
use dsa::trace::Rng64;

/// Compaction with a real memory and a block map on top: programs keep
/// addressing their data through stable names while the bytes move —
/// the paper's relocatability argument made concrete.
#[test]
fn compaction_moves_data_without_breaking_names() {
    let mut mem = CoreMemory::new(4096);
    let mut alloc = FreeListAllocator::new(4096, Placement::FirstFit);

    // Allocate blocks and fill each with a signature.
    let sizes = [300u64, 200, 400, 100, 250, 350];
    for (id, &size) in sizes.iter().enumerate() {
        let addr = alloc.alloc(id as u64, size).expect("fits");
        for k in 0..size {
            mem.write(addr.offset(k), (id as u64) << 32 | k)
                .expect("in range");
        }
    }
    // Free alternating blocks to fragment.
    for id in [1u64, 3] {
        alloc.free(id).expect("live");
    }

    // Compact, applying every move to the memory (in ascending order —
    // safe even when ranges overlap).
    compact(&mut alloc, |_, old, new, len| {
        mem.move_block(old, new, len).expect("valid move");
    });
    alloc.check_invariants();

    // Survivors read back intact through their (new) addresses.
    for &id in &[0u64, 2, 4, 5] {
        let (addr, size) = alloc.lookup(id).expect("live");
        for k in 0..size {
            assert_eq!(
                mem.read(addr.offset(k)).expect("in range"),
                id << 32 | k,
                "block {id} corrupted at offset {k}"
            );
        }
    }
}

/// The same, one level up: a block map rewired after compaction keeps
/// *names* stable while addresses move.
#[test]
fn names_survive_block_relocation() {
    let costs = MapCosts::for_core_cycle(Cycles::from_micros(1));
    let mut map = BlockMap::new(4, 4, costs); // 4 blocks of 16 words
    let mut mem = CoreMemory::new(256);
    // Blocks initially scattered high.
    for (i, base) in [(0u64, 160u64), (1, 96), (2, 208), (3, 48)] {
        map.map_block(i, PhysAddr(base));
    }
    for n in 0..64u64 {
        let addr = map.translate(Name(n)).outcome.expect("mapped");
        mem.write(addr, n + 500).expect("in range");
    }
    // "Compact": move all blocks to the bottom, updating only the map.
    for (i, new_base) in [(0u64, 0u64), (1, 16), (2, 32), (3, 48)] {
        let old = map.block_base(i).expect("mapped");
        if old.value() != new_base {
            mem.move_block(old, PhysAddr(new_base), 16)
                .expect("valid move");
            map.map_block(i, PhysAddr(new_base));
        }
    }
    for n in 0..64u64 {
        let addr = map.translate(Name(n)).outcome.expect("mapped");
        assert_eq!(mem.read(addr).expect("in range"), n + 500);
        assert!(addr.value() < 64, "data now packed at the bottom");
    }
}

/// Scheduler accounting: CPU-busy time equals executed references times
/// the instruction time, and every job executes its whole trace.
#[test]
fn scheduler_conserves_work() {
    let cfg = SimConfig {
        instr_time: Cycles::from_micros(7),
        fetch_time: Cycles::from_millis(2),
        page_size: 256,
        quantum_refs: 13,
        fetch_channels: None,
    };
    let lens = [500usize, 1200, 333];
    let specs: Vec<JobSpec> = lens
        .iter()
        .enumerate()
        .map(|(i, &len)| JobSpec {
            id: JobId(i as u32),
            trace: RefStringCfg::LruStack {
                pages: 20,
                theta: 1.0,
            }
            .generate_pages(len, &mut Rng64::new(i as u64)),
            frames: 8,
            replacer: Box::new(LruRepl::new()),
        })
        .collect();
    let r = MultiprogramSim::new(cfg, specs).run().expect("no pinning");
    let total_refs: u64 = lens.iter().map(|&l| l as u64).sum();
    for (i, job) in r.jobs.iter().enumerate() {
        assert_eq!(
            job.references, lens[i] as u64,
            "job {i} must finish its trace"
        );
        assert!(job.finished_at <= r.makespan);
    }
    assert_eq!(r.cpu_busy, cfg.instr_time * total_refs);
    assert!(r.cpu_utilization() <= 1.0 + 1e-12);
}

/// Segment store + backing traffic: every fetched word is either still
/// resident or was written back / discarded; resident words never
/// exceed capacity.
#[test]
fn segment_store_traffic_accounting() {
    let mut store = SegmentStore::new(
        StoreBackend::FreeList(FreeListAllocator::new(2000, Placement::BestFit)),
        SegReplacement::Cyclic,
        1024,
    );
    let mut rng = Rng64::new(99);
    for s in 0..12u32 {
        store
            .define(dsa::core::ids::SegId(s), 100 + u64::from(s) * 50)
            .expect("declared");
    }
    for i in 0..2000u64 {
        let seg = dsa::core::ids::SegId((rng.below(12)) as u32);
        let offset = rng.below(100);
        let write = i % 3 == 0;
        store
            .touch(seg, offset, write)
            .expect("within bounds and evictable");
        assert!(store.resident_words() <= store.capacity());
        if i % 100 == 0 {
            store.check_invariants();
        }
    }
    let stats = store.stats();
    assert!(stats.seg_faults > 0);
    assert!(stats.writeback_words <= stats.fetched_words);
    assert_eq!(stats.bounds_violations, 0);
}

/// Knuth's fifty-percent rule: at first-fit equilibrium with rare exact
/// fits, the hole count settles near half the number of live blocks.
/// The rule postdates the paper by one year (Knuth 1968) but describes
/// exactly the steady state the paper's placement discussion assumes.
#[test]
fn fifty_percent_rule_holds_at_equilibrium() {
    use dsa::trace::allocstream::{AllocStreamCfg, SizeDist};
    use dsa::trace::Rng64;

    let cfg = AllocStreamCfg {
        // Continuous sizes make exact fits rare, as the rule requires.
        sizes: SizeDist::Uniform { lo: 40, hi: 160 },
        mean_lifetime: 400.0,
        target_live_words: 45_000, // ~69% load: comfortably allocatable
    };
    let events = cfg.generate(60_000, &mut Rng64::new(50));
    let mut a = FreeListAllocator::new(65_536, Placement::FirstFit);
    let mut live = 0i64;
    let mut ratio_samples: Vec<f64> = Vec::new();
    for (i, e) in events.iter().enumerate() {
        match *e {
            dsa::core::access::AllocEvent::Alloc(r) => {
                if a.alloc(r.id, r.size).is_ok() {
                    live += 1;
                }
            }
            dsa::core::access::AllocEvent::Free { id } => {
                if a.free(id).is_ok() {
                    live -= 1;
                }
            }
        }
        // Sample after warm-up.
        if i > 20_000 && i % 128 == 0 && live > 0 {
            ratio_samples.push(a.hole_count() as f64 / live as f64);
        }
    }
    let mean = ratio_samples.iter().sum::<f64>() / ratio_samples.len() as f64;
    assert!(
        (0.3..0.7).contains(&mean),
        "hole/block ratio {mean:.3} strays far from Knuth's 1/2"
    );
}

/// Multi-level fetch: a three-level hierarchy's break-even analysis is
/// internally consistent — promoting through an intermediate level never
/// beats the direct cost model it is built from.
#[test]
fn hierarchy_break_even_consistency() {
    use dsa::storage::{Hierarchy, LevelKind, LevelSpec};
    let mk = |name: &str, ns: u64, cap: u64| LevelSpec {
        name: name.into(),
        kind: LevelKind::Core,
        capacity: cap,
        latency: Cycles::from_nanos(ns),
        word_time: Cycles::from_nanos(ns),
    };
    let h = Hierarchy::new(vec![
        mk("scratch", 200, 1 << 10),
        mk("main", 2_000, 1 << 17),
        mk("slow", 8_000, 1 << 20),
    ])
    .expect("ordered");
    for words in [8u64, 64, 512] {
        let direct = h.break_even_uses(2, 0, words).expect("faster");
        let hop1 = h.break_even_uses(2, 1, words).expect("faster");
        let hop2 = h.break_even_uses(1, 0, words).expect("faster");
        // The wider the speed gap, the fewer uses needed.
        assert!(
            direct <= hop1,
            "{words} words: direct {direct} > partial {hop1}"
        );
        assert!(direct <= hop2 + hop1, "triangle sanity for {words} words");
    }
}

/// §Storage Addressing: "The ability to relocate (i.e. move) information
/// requires knowledge of the whereabouts of any actual physical storage
/// addresses ... The most convenient solution is to insure that there
/// are no such stored absolute addresses." This test shows both sides:
/// a linked structure holding *absolute* addresses is silently corrupted
/// by compaction, while the same structure holding *names* (resolved
/// through a base register) survives the move untouched.
#[test]
fn stored_absolute_addresses_break_under_relocation() {
    use dsa::mapping::RelocationLimit;

    let mut mem = CoreMemory::new(512);
    let mut alloc = FreeListAllocator::new(512, Placement::FirstFit);

    // A filler block, then a 5-node list; each node: [payload, link].
    alloc.alloc(0, 100).expect("fits");
    let list = alloc.alloc(1, 10).expect("fits");
    let base = list.value();
    for node in 0..5u64 {
        let at = base + node * 2;
        mem.write(PhysAddr(at), 700 + node).expect("in range");
        // Version A interpretation: absolute address of the next node.
        // Version B interpretation: name (offset) of the next node.
        let next_abs = if node < 4 { at + 2 } else { 0 };
        mem.write(PhysAddr(at + 1), next_abs).expect("in range");
    }

    // Free the filler and compact: the list slides from 100 to 0.
    alloc.free(0).expect("live");
    compact(&mut alloc, |_, old, new, len| {
        mem.move_block(old, new, len).expect("valid move");
    });
    let (new_base, _) = alloc.lookup(1).expect("live");
    assert_eq!(new_base.value(), 0, "the list moved");

    // Version A: chase the stored absolute addresses. The first node is
    // found via the allocator, but its link still points at 102 — now
    // free storage, promptly reused by the next allocation.
    let stale_link = mem.read(new_base.offset(1)).expect("in range");
    assert_eq!(stale_link, 102, "the stored absolute address did not move");
    let reused = alloc.alloc(2, 300).expect("compaction freed one big hole");
    mem.fill(reused, 300, 0xDEAD).expect("in range");
    let misread = mem.read(PhysAddr(stale_link)).expect("in range");
    assert_eq!(
        misread, 0xDEAD,
        "the stale pointer now reads another block's words"
    );

    // Version B: the same words interpreted as *names*, resolved through
    // a relocation register the allocator updated. Every hop lands.
    let mut reg = RelocationLimit::new(new_base, 10, dsa::mapping::MapCosts::zero());
    let mut name = 0u64;
    for node in 0..5u64 {
        let payload_addr = reg.translate(Name(name)).outcome.expect("in bounds");
        assert_eq!(mem.read(payload_addr).expect("in range"), 700 + node);
        let link_addr = reg.translate(Name(name + 1)).outcome.expect("in bounds");
        // Reinterpret the link as a name: offset within the block.
        let stored = mem.read(link_addr).expect("in range");
        name = stored.saturating_sub(100); // names were offsets + old base
        if node == 4 {
            break;
        }
    }
}
