//! Property-based tests on the segment store and sharing layer.

use dsa::core::error::{AccessFault, CoreError};
use dsa::core::ids::SegId;
use dsa::freelist::freelist::{FreeListAllocator, Placement};
use dsa::freelist::RiceAllocator;
use dsa::seg::sharing::{AccessMode, AccessType, SharedSegments};
use dsa::seg::store::{SegReplacement, SegmentStore, StoreBackend};
use proptest::prelude::*;

/// Random segment-store operations.
#[derive(Clone, Debug)]
enum Op {
    Define(u32, u64),
    Touch(u32, u64, bool),
    Resize(u32, u64),
    Delete(u32),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0u32..12, 1u64..400).prop_map(|(s, z)| Op::Define(s, z)),
            (0u32..12, 0u64..500, any::<bool>()).prop_map(|(s, o, w)| Op::Touch(s, o, w)),
            (0u32..12, 1u64..400).prop_map(|(s, z)| Op::Resize(s, z)),
            (0u32..12).prop_map(Op::Delete),
        ],
        1..150,
    )
}

fn drive(store: &mut SegmentStore, ops: &[Op]) {
    for op in ops {
        // Every outcome is legal; what must never happen is a panic or
        // an invariant break.
        match *op {
            Op::Define(s, z) => {
                let _ = store.define(SegId(s), z);
            }
            Op::Touch(s, o, w) => {
                let _ = store.touch(SegId(s), o, w);
            }
            Op::Resize(s, z) => {
                let _ = store.resize(SegId(s), z);
            }
            Op::Delete(s) => {
                let _ = store.delete(SegId(s));
            }
        }
        store.check_invariants();
    }
}

proptest! {
    /// The segment store's residency bookkeeping survives any operation
    /// stream, on both allocator backends.
    #[test]
    fn store_invariants_hold(ops in arb_ops()) {
        let mut freelist_store = SegmentStore::new(
            StoreBackend::FreeList(FreeListAllocator::new(1500, Placement::BestFit)),
            SegReplacement::Cyclic,
            1024,
        );
        drive(&mut freelist_store, &ops);
        prop_assert!(freelist_store.resident_words() <= freelist_store.capacity());

        let mut rice_store = SegmentStore::new(
            StoreBackend::Rice(RiceAllocator::new(1500)),
            SegReplacement::RiceIterative,
            1024,
        );
        drive(&mut rice_store, &ops);
        prop_assert!(rice_store.resident_words() <= rice_store.capacity());
    }

    /// Bounds checking is exact: a touch faults with BoundsViolation iff
    /// the offset is at or beyond the segment's current size.
    #[test]
    fn bounds_check_is_exact(size in 1u64..300, offset in 0u64..600) {
        let mut store = SegmentStore::new(
            StoreBackend::FreeList(FreeListAllocator::new(4096, Placement::FirstFit)),
            SegReplacement::Cyclic,
            1024,
        );
        store.define(SegId(0), size).expect("fits");
        let result = store.touch(SegId(0), offset, false);
        if offset < size {
            prop_assert!(result.is_ok());
        } else {
            let is_bounds = matches!(
                result,
                Err(CoreError::Access(AccessFault::BoundsViolation { .. }))
            );
            prop_assert!(is_bounds, "expected bounds violation, got {:?}", result);
        }
    }

    /// In the sharing layer, access succeeds iff a covering capability
    /// exists — never otherwise, regardless of operation order.
    #[test]
    fn capability_semantics_are_exact(
        grants in prop::collection::vec((1u32..5, any::<bool>(), any::<bool>(), any::<bool>()), 0..8),
        probes in prop::collection::vec((0u32..5, 0u8..3), 1..40),
    ) {
        let mut s = SharedSegments::new(SegmentStore::new(
            StoreBackend::FreeList(FreeListAllocator::new(4096, Placement::BestFit)),
            SegReplacement::Cyclic,
            1024,
        ));
        let owner_mode = AccessMode { read: true, write: true, execute: true };
        s.publish(0, SegId(0), 200, owner_mode).expect("fits");
        let mut expected: std::collections::HashMap<u32, AccessMode> =
            std::collections::HashMap::new();
        expected.insert(0, owner_mode);
        for &(to, r, w, x) in &grants {
            let mode = AccessMode { read: r, write: w, execute: x };
            s.grant(0, to, SegId(0), mode).expect("owner holds all rights");
            expected.insert(to, mode);
        }
        for &(prog, kind) in &probes {
            let kind = match kind {
                0 => AccessType::Read,
                1 => AccessType::Write,
                _ => AccessType::Execute,
            };
            let allowed = expected.get(&prog).is_some_and(|m| match kind {
                AccessType::Read => m.read,
                AccessType::Write => m.write,
                AccessType::Execute => m.execute,
            });
            let got = s.access(prog, SegId(0), 10, kind);
            prop_assert_eq!(got.is_ok(), allowed, "prog {} kind {:?}", prog, kind);
        }
    }

    /// Sharing savings accounting: words saved equals (sharers - 1) ×
    /// size, for any grant/revoke sequence.
    #[test]
    fn sharing_savings_track_sharers(events in prop::collection::vec((1u32..6, any::<bool>()), 0..30)) {
        let mut s = SharedSegments::new(SegmentStore::new(
            StoreBackend::FreeList(FreeListAllocator::new(4096, Placement::BestFit)),
            SegReplacement::Cyclic,
            1024,
        ));
        s.publish(0, SegId(0), 150, AccessMode::RX).expect("fits");
        let mut holders: std::collections::HashSet<u32> = std::collections::HashSet::new();
        for &(prog, grant) in &events {
            if grant {
                s.grant(0, prog, SegId(0), AccessMode::RX).expect("owner grants");
                holders.insert(prog);
            } else {
                s.revoke(prog, SegId(0));
                holders.remove(&prog);
            }
            prop_assert_eq!(
                s.stats().words_saved_by_sharing,
                holders.len() as u64 * 150
            );
            prop_assert_eq!(s.sharers(SegId(0)), holders.len() + 1);
        }
    }
}
