//! The DSA heap as the process allocator: install [`GlobalDsa`] with
//! `#[global_allocator]` and let ordinary `Vec`/`String`/`HashMap`
//! code churn through it — size-class slabs under per-thread magazine
//! caches, with the system allocator handling reentrant frames and
//! whatever lives outside the region.
//!
//! ```text
//! cargo run --release --example global_alloc
//! ```
//!
//! The run churns standard-library collections at 1, 2, and 8 threads
//! and reconciles the heap's books after every phase: the telemetry
//! ledger (backend ops only) must equal backend-live words exactly,
//! with magazine- and depot-parked blocks counted as live — so the
//! identity holds without quiescing anything.

use std::collections::HashMap;

use dsa::alloc::{GlobalDsa, HeapConfig};
use dsa::trace::Rng64;

#[global_allocator]
static ALLOC: GlobalDsa = GlobalDsa::new(HeapConfig::DEFAULT);

/// One thread's worth of ordinary allocation traffic: growing vectors,
/// short strings, a map that rehashes, and random drops — the shapes a
/// real mutator hands a general-purpose allocator.
fn churn(seed: u64, ops: usize) -> usize {
    let mut rng = Rng64::new(seed);
    let mut vecs: Vec<Vec<u8>> = Vec::new();
    let mut map: HashMap<u64, String> = HashMap::new();
    let mut retained = 0usize;
    for i in 0..ops {
        match rng.below(4) {
            0 => {
                let n = rng.range(1, 4096) as usize;
                vecs.push(vec![0xA5; n]);
            }
            1 => {
                if !vecs.is_empty() {
                    let i = rng.below(vecs.len() as u64) as usize;
                    retained += vecs.swap_remove(i).len();
                }
            }
            2 => {
                let k = rng.next_u64();
                map.insert(k % 512, format!("object {k} at op {i}"));
            }
            _ => {
                let k = rng.next_u64() % 512;
                if let Some(s) = map.remove(&k) {
                    retained += s.len();
                }
            }
        }
    }
    retained + vecs.iter().map(Vec::len).sum::<usize>() + map.len()
}

fn phase(threads: usize, ops: usize) {
    let total: usize = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| s.spawn(move || churn(0xD5A + t as u64, ops)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("no panic"))
            .sum()
    });
    // Worker caches flushed on thread exit; park the main thread's too
    // before reading the books (reconciliation would hold either way —
    // parked blocks are backend-live — but the stats read cleaner).
    ALLOC.flush_current_thread();
    ALLOC.heap().flush_depots();
    ALLOC.heap().check_reconciliation();
    let s = ALLOC.heap().stats();
    println!(
        "{threads} thread(s) x {ops} ops (checksum {total}): books reconciled\n\
         cumulative: {} magazine allocs, {} depot exchanges, {} large allocs,\n\
         {} system-path allocs, {} bad frees",
        s.magazine_allocs, s.depot_exchanges, s.large_allocs, s.system_allocs, s.bad_frees
    );
}

fn main() {
    println!("global allocator: dsa-alloc (slab classes + per-thread magazines)\n");
    for threads in [1usize, 2, 8] {
        phase(threads, 200_000);
    }
    let s = ALLOC.heap().stats();
    assert_eq!(s.bad_frees, 0, "every free must route to its home path");
    println!("\nall phases reconciled: the ledger identity held at 1, 2, and 8 threads");
}
