//! Multiprogramming rescues demand paging (Figure 3's escape hatch).
//!
//! One faulty program on a drum-backed store leaves the processor idle
//! almost all the time; stacking programs overlaps their page waits.
//! This example sweeps the degree of multiprogramming and prints CPU
//! utilization and the per-job space-time split.
//!
//! ```text
//! cargo run --release --example multiprogramming
//! ```

use dsa::core::clock::Cycles;
use dsa::core::ids::JobId;
use dsa::metrics::Table;
use dsa::paging::LruRepl;
use dsa::sched::{JobSpec, MultiprogramSim, SimConfig};
use dsa::trace::refstring::RefStringCfg;
use dsa::trace::Rng64;

fn main() {
    let cfg = SimConfig {
        instr_time: Cycles::from_micros(10),
        fetch_time: Cycles::from_millis(8), // a drum
        page_size: 512,
        quantum_refs: 100,
        fetch_channels: None,
    };
    let mut t = Table::new(&[
        "jobs",
        "cpu utilization",
        "makespan",
        "active %",
        "waiting %",
        "ready-idle %",
    ])
    .with_title("drum-backed demand paging, 10 us/ref, 8 ms/fetch");
    for jobs in [1usize, 2, 3, 4, 6, 8, 12] {
        let specs: Vec<JobSpec> = (0..jobs)
            .map(|i| JobSpec {
                id: JobId(i as u32),
                trace: RefStringCfg::LruStack {
                    pages: 64,
                    theta: 1.2,
                }
                .generate_pages(15_000, &mut Rng64::new(500 + i as u64)),
                frames: 24,
                replacer: Box::new(LruRepl::new()),
            })
            .collect();
        let r = MultiprogramSim::new(cfg, specs).run().expect("no pinning");
        let st = r.total_space_time();
        let total = st.total().max(1) as f64;
        t.row_owned(vec![
            jobs.to_string(),
            format!("{:.1}%", r.cpu_utilization() * 100.0),
            r.makespan.to_string(),
            format!("{:.1}%", st.active_word_nanos as f64 / total * 100.0),
            format!("{:.1}%", st.waiting_word_nanos as f64 / total * 100.0),
            format!("{:.1}%", st.ready_idle_word_nanos as f64 / total * 100.0),
        ]);
    }
    println!("{t}");
    println!(
        "each job's own space-time stays wait-dominated (the drum is what\n\
         it is), but the processor's idle gaps fill in as jobs are added —\n\
         'the time spent on fetching pages can normally be overlapped with\n\
         the execution of other programs'."
    );
}
