//! A miniature ATLAS-style one-level store, assembled by hand.
//!
//! The components the paper's machines are made of, wired together at
//! the lowest level: a [`CoreMemory`] with real word contents, a
//! [`FrameAssociativeMap`] providing artificial contiguity, a
//! [`PagedMemory`] running the ATLAS learning strategy, and a simulated
//! drum. A program writes and reads a data set four times the size of
//! core, and every word comes back intact — the essence of "virtual
//! storage".
//!
//! ```text
//! cargo run --release --example one_level_store
//! ```

use dsa::core::clock::Cycles;
use dsa::core::error::AccessFault;
use dsa::core::ids::{Name, PageNo};
use dsa::mapping::{AddressMap, FrameAssociativeMap, MapCosts};
use dsa::paging::paged::{PagedMemory, TouchOutcome};
use dsa::paging::replacement::atlas::AtlasLearning;
use dsa::storage::presets;
use dsa::storage::CoreMemory;
use std::collections::HashMap;

const PAGE_BITS: u32 = 5; // 32-word pages, to keep the tour readable
const PAGE: u64 = 1 << PAGE_BITS;
const FRAMES: usize = 8; // 256 words of "core"
const NAME_EXTENT: u64 = 1024; // a 4x-core virtual space

/// The backing drum: page-sized slabs by page number.
struct Drum {
    slabs: HashMap<PageNo, Vec<u64>>,
    transfers: u64,
    busy: Cycles,
}

fn main() {
    let costs = MapCosts::for_core_cycle(Cycles::from_micros(2));
    let mut map = FrameAssociativeMap::new(FRAMES, PAGE_BITS, NAME_EXTENT, costs);
    let mut core = CoreMemory::new(FRAMES as u64 * PAGE);
    let mut mem = PagedMemory::new(FRAMES, Box::new(AtlasLearning::new())).with_vacant_reserve();
    let mut drum = Drum {
        slabs: HashMap::new(),
        transfers: 0,
        busy: Cycles::ZERO,
    };
    let drum_spec = presets::atlas_drum();

    // One access through the full machinery: translate; on a page trap,
    // write the victim back to the drum, read the wanted page in, remap,
    // retry.
    let access = |name: Name,
                  write: Option<u64>,
                  map: &mut FrameAssociativeMap,
                  core: &mut CoreMemory,
                  mem: &mut PagedMemory,
                  drum: &mut Drum,
                  now: u64|
     -> u64 {
        loop {
            let t = map.translate(name);
            match t.outcome {
                Ok(addr) => {
                    mem.touch(PageNo(name.value() >> PAGE_BITS), write.is_some(), now)
                        .expect("resident");
                    if let Some(v) = write {
                        core.write(addr, v).expect("mapped address in range");
                        return v;
                    }
                    return core.read(addr).expect("mapped address in range");
                }
                Err(AccessFault::MissingPage { page }) => {
                    let outcome = mem.touch(page, write.is_some(), now).expect("frames exist");
                    let TouchOutcome::Fault { frame, evicted } = outcome else {
                        unreachable!("map and memory agree on residency");
                    };
                    let frame_base = dsa::core::ids::PhysAddr(frame.0 * PAGE);
                    if let Some(e) = evicted {
                        // Write the victim's words out to the drum.
                        let old_base = dsa::core::ids::PhysAddr(e.frame.0 * PAGE);
                        let slab = core.snapshot(old_base, PAGE);
                        drum.slabs.insert(e.page, slab);
                        drum.transfers += 1;
                        drum.busy += drum_spec.transfer_time(PAGE);
                        map.unload(e.frame);
                    }
                    // Read the wanted page in (zero-filled if new).
                    let slab = drum
                        .slabs
                        .remove(&page)
                        .unwrap_or_else(|| vec![0; PAGE as usize]);
                    for (i, w) in slab.iter().enumerate() {
                        core.write(frame_base.offset(i as u64), *w)
                            .expect("in range");
                    }
                    drum.transfers += 1;
                    drum.busy += drum_spec.transfer_time(PAGE);
                    map.load(frame, page);
                }
                Err(f) => panic!("unexpected fault: {f}"),
            }
        }
    };

    // Fill the whole 1024-word virtual space with name*7, then read it
    // all back — through 256 words of core.
    let mut now = 0u64;
    for n in 0..NAME_EXTENT {
        access(
            Name(n),
            Some(n * 7),
            &mut map,
            &mut core,
            &mut mem,
            &mut drum,
            now,
        );
        now += 1;
    }
    let mut errors = 0;
    for n in 0..NAME_EXTENT {
        let v = access(Name(n), None, &mut map, &mut core, &mut mem, &mut drum, now);
        now += 1;
        if v != n * 7 {
            errors += 1;
        }
    }

    println!(
        "one-level store: {NAME_EXTENT} virtual words over {} core words",
        FRAMES as u64 * PAGE
    );
    println!("data integrity:  {errors} mismatches across the full read-back");
    println!(
        "paging activity: {} faults, {} drum transfers, {} of drum time",
        mem.stats().faults,
        drum.transfers,
        drum.busy
    );
    println!(
        "mapping:         {} translations, {} page traps through the associative registers",
        map.stats().translations,
        map.stats().faults
    );
    assert_eq!(errors, 0);
    println!("\nevery name behaved like a real location — the extent of physical");
    println!("working storage was successfully disguised (a 'virtual storage system').");
}
