//! Quickstart: run a synthetic segmented program on two of the paper's
//! machines and compare what happens.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dsa::machines::{atlas, b5000, Machine};
use dsa::trace::{ProgramCfg, Rng64};

fn main() {
    // A deterministic synthetic program: 24 segments, phase-structured
    // touches (see `dsa_trace::program` for the knobs).
    let mut rng = Rng64::new(42);
    let program = ProgramCfg::default().generate(&mut rng);
    println!(
        "program: {} segments, {} declared words, {} touches\n",
        program.seg_sizes.len(),
        program.total_declared_words(),
        program.touch_count()
    );

    for mut machine in [Box::new(atlas()) as Box<dyn Machine>, Box::new(b5000())] {
        println!("=== {}", machine.name());
        println!("{}\n", machine.characteristics().describe());
        let report = machine
            .run(&program.ops)
            .expect("the workload is well-formed");
        println!("{report}\n");
    }

    println!(
        "same program, two 1967 answers: ATLAS pages a linear name space\n\
         through its frame-associative map; the B5000 fetches whole\n\
         segments into best-fit holes and bounds-checks every subscript.\n\
         every component is available separately — see the dsa-paging,\n\
         dsa-freelist, dsa-seg and dsa-mapping crates."
    );
}
