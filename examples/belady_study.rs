//! A pocket Belady study: replacement policies head-to-head.
//!
//! Belady's 1966 study — the paper's reference \[1\] for everything
//! about replacement — compared realizable policies against the offline
//! optimum on abstracted reference strings. This example reruns that
//! comparison on a locality-bearing trace and prints the fault-rate
//! curve against core size.
//!
//! ```text
//! cargo run --release --example belady_study
//! ```

use dsa::metrics::Table;
use dsa::paging::paged::PagedMemory;
use dsa::paging::replacement::ws::working_set_sim;
use dsa::paging::{AtlasLearning, ClockRepl, FifoRepl, LruRepl, MinRepl, Replacer};
use dsa::trace::refstring::RefStringCfg;
use dsa::trace::Rng64;

fn main() {
    let cfg = RefStringCfg::LruStack {
        pages: 50,
        theta: 1.0,
    };
    let trace = cfg.generate_pages(40_000, &mut Rng64::new(1966));
    let frame_counts = [5usize, 10, 15, 20, 25, 30, 40];

    let mut t = Table::new(&["policy", "5", "10", "15", "20", "25", "30", "40"])
        .with_title("fault rate vs frames, 50-page program with LRU-stack locality");
    let names = ["MIN (offline)", "LRU", "Clock", "FIFO", "ATLAS learning"];
    let mut rows: Vec<Vec<String>> = names.iter().map(|n| vec![(*n).to_string()]).collect();
    for &frames in &frame_counts {
        let policies: Vec<Box<dyn Replacer>> = vec![
            Box::new(MinRepl::new(&trace)),
            Box::new(LruRepl::new()),
            Box::new(ClockRepl::new(frames)),
            Box::new(FifoRepl::new()),
            Box::new(AtlasLearning::new()),
        ];
        for (i, p) in policies.into_iter().enumerate() {
            let mut mem = PagedMemory::new(frames, p);
            let rate = mem.run_pages(&trace).expect("no pinning").fault_rate();
            rows[i].push(format!("{rate:.3}"));
        }
    }
    for row in rows {
        t.row_owned(row);
    }
    println!("{t}");

    // The working-set counterpoint: instead of fixing frames, fix the
    // window and let residency float.
    let mut t = Table::new(&["window tau", "fault rate", "mean resident", "peak"])
        .with_title("working-set policy on the same trace");
    for tau in [10u64, 30, 100, 300, 1000] {
        let r = working_set_sim(&trace, tau);
        t.row_owned(vec![
            tau.to_string(),
            format!("{:.3}", r.fault_rate()),
            format!("{:.1}", r.mean_resident),
            r.peak_resident.to_string(),
        ]);
    }
    println!("{t}");
    println!(
        "MIN is the floor no realizable policy touches; LRU and Clock sit a\n\
         steady margin above it; FIFO trails; the working-set rows show the\n\
         other way to spend storage — buy fault rate with a longer window."
    );
}
