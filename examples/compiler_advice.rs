//! The "authoritarian compiler": whole-program advice planning.
//!
//! The paper trusts compiler-supplied predictions more than user ones —
//! "but only if it is known that all programs written for the computer
//! system will use such compilers" (the ACSI-MATIC program-description
//! model). This example takes a raw program, lets the
//! [`dsa::trace::AdvicePlanner`] analyse it exactly, and runs raw vs
//! planned on the M44/44X — the machine that actually shipped advice
//! instructions nobody used.
//!
//! ```text
//! cargo run --release --example compiler_advice
//! ```

use dsa::machines::{m44_44x, Machine};
use dsa::metrics::Table;
use dsa::trace::allocstream::SizeDist;
use dsa::trace::{AdvicePlanner, PlannerCfg, ProgramCfg, Rng64};

fn main() {
    let mut rng = Rng64::new(1967);
    let raw = ProgramCfg {
        segments: 48,
        seg_sizes: SizeDist::Exponential {
            mean: 8_000.0,
            cap: 12_000,
        },
        touches: 30_000,
        phase_set: 4,
        phase_len: 500,
        write_fraction: 0.3,
        resize_prob: 0.0,
        advice_accuracy: None,
        wild_touch_prob: 0.0,
        compute_between: 0,
    }
    .generate(&mut rng);

    let mut t = Table::new(&[
        "lead (ops)",
        "faults",
        "fault rate",
        "prefetches (useful)",
        "fetched words",
    ])
    .with_title("M44/44X: raw program vs compiler-planned advice, by fetch lead time");

    let base = m44_44x().run(&raw.ops).expect("well-formed");
    t.row_owned(vec![
        "no advice".into(),
        base.faults.to_string(),
        format!("{:.4}", base.fault_rate()),
        "0 (0)".into(),
        base.fetched_words.to_string(),
    ]);
    for lead in [5usize, 40, 150, 400] {
        let planner = AdvicePlanner::new(PlannerCfg {
            lead,
            episode_gap: 300,
        });
        let planned = planner.plan(&raw.ops);
        let r = m44_44x().run(&planned).expect("well-formed");
        t.row_owned(vec![
            lead.to_string(),
            r.faults.to_string(),
            format!("{:.4}", r.fault_rate()),
            format!("{} ({})", r.prefetches, r.useful_prefetches),
            r.fetched_words.to_string(),
        ]);
    }
    println!("{t}");
    println!(
        "the planner knows the whole future, yet its value still hinges on\n\
         lead time: too short and the fetch has no head start, too long and\n\
         the prefetched pages are evicted before their episode arrives —\n\
         exactly why the paper warns that even trustworthy predictions are\n\
         'related to the overall situation as regards storage utilization'."
    );
}
