//! An ALGOL-shaped workload on the Burroughs B5000.
//!
//! The paper's B5000 discussion in miniature: "the maximum size vector
//! that an ALGOL programmer can declare is 1024 words. However by virtue
//! of the way the compiler implements multidimensional arrays, the
//! programmer can declare, for instance a 1024 x 1024 word matrix. In
//! other words, the limitation is on contiguous naming and not on
//! apparently accessible information."
//!
//! We declare a 256 x 256 matrix (the compiler splits it into 1024-word
//! row chunks), sweep it, and then make the classic off-by-one mistake —
//! which the descriptor limit check intercepts.
//!
//! ```text
//! cargo run --release --example algol_on_b5000
//! ```

use dsa::core::access::{AccessKind, ProgramOp};
use dsa::core::ids::SegId;
use dsa::machines::{b5000, Machine};

const N: u64 = 256; // matrix dimension; each row is 256 words

fn main() {
    // "The compiler" lays the matrix out as one big logical segment;
    // the machine adapter performs the B5000 split into 1024-word
    // chunks internally.
    let matrix = SegId(0);
    let vector = SegId(1);
    let mut ops = vec![
        ProgramOp::Define {
            seg: matrix,
            size: N * N,
        },
        ProgramOp::Define {
            seg: vector,
            size: N,
        },
    ];

    // y = A x: row-major sweep of the matrix with repeated vector use.
    for i in 0..N {
        for j in (0..N).step_by(8) {
            ops.push(ProgramOp::Touch {
                seg: matrix,
                offset: i * N + j,
                kind: AccessKind::Read,
            });
            ops.push(ProgramOp::Touch {
                seg: vector,
                offset: j,
                kind: AccessKind::Read,
            });
        }
    }
    // The classic mistake: x[N] on a 0..N-1 vector.
    ops.push(ProgramOp::Touch {
        seg: vector,
        offset: N,
        kind: AccessKind::Read,
    });
    // And a wilder one: A[N][0].
    ops.push(ProgramOp::Touch {
        seg: matrix,
        offset: N * N + 5,
        kind: AccessKind::Read,
    });
    ops.push(ProgramOp::Delete { seg: matrix });
    ops.push(ProgramOp::Delete { seg: vector });

    let mut machine = b5000();
    let report = machine.run(&ops).expect("well-formed program");
    println!("{report}\n");
    println!(
        "matrix words: {} — sixty-four times the 1024-word segment limit,\n\
         yet fully accessible: only contiguous *naming* is limited.",
        N * N
    );
    println!(
        "segment faults: {} (each fetched a 1024-word row chunk on first\n\
         reference; the 24K-word core cannot hold all {} chunks at once,\n\
         so the cyclic strategy recycled them).",
        report.faults,
        (N * N) / 1024
    );
    println!(
        "bounds violations intercepted: {} of 2 injected — the checking of\n\
         illegal subscripting performed automatically (advantage iii).",
        report.bounds_caught
    );
    assert_eq!(report.bounds_caught, 2);
    assert_eq!(report.wild_undetected, 0);
}
