//! A probed machine run: the ATLAS preset with a [`LatencyProbe`]
//! attached, printing the fault-latency distributions the end-of-run
//! report cannot show.
//!
//! The `MachineReport` says *how many* faults a run took; the probe's
//! event stream says how long each one stalled the program and how far
//! apart they fell in reference time — the dynamics behind the paper's
//! space-time cost of a fetch.
//!
//! ```text
//! cargo run --release --example probed_run
//! ```

use dsa::machines::presets::atlas;
use dsa::machines::Machine;
use dsa::metrics::histogram::Histogram;
use dsa::probe::LatencyProbe;
use dsa::trace::program::ProgramCfg;
use dsa::trace::rng::Rng64;

fn print_histogram(title: &str, unit: &str, h: &Histogram) {
    println!("{title} (n={}, mean={:.0}{unit})", h.count(), h.mean());
    if h.count() == 0 {
        println!("  (empty)");
        return;
    }
    let peak = h
        .nonempty_buckets()
        .map(|(_, c)| c)
        .max()
        .unwrap_or(1)
        .max(1);
    for (low, count) in h.nonempty_buckets() {
        let bar = "#".repeat((count * 40 / peak).max(1) as usize);
        println!("  >= {low:>10}{unit}  {count:>6}  {bar}");
    }
    if h.overflow() > 0 {
        println!("  (+{} beyond the last bucket)", h.overflow());
    }
    println!();
}

fn main() {
    let mut rng = Rng64::new(1967);
    let program = ProgramCfg {
        segments: 24,
        touches: 20_000,
        advice_accuracy: Some(0.7),
        ..ProgramCfg::default()
    }
    .generate(&mut rng);

    let mut machine = atlas();
    let mut probe = LatencyProbe::new();
    let report = machine
        .run_probed(&program.ops, &mut probe)
        .expect("program runs");

    println!(
        "probed run: {} on {} touches — {} faults, {} words fetched\n",
        machine.name(),
        report.touches,
        report.faults,
        report.fetched_words
    );

    print_histogram("fault service latency", "ns", probe.fault_service());
    print_histogram("inter-fault distance", " refs", probe.inter_fault());

    println!("digest: {}", probe.summary());
}
