//! Descriptors versus codewords, at the register level.
//!
//! Appendix A.3 and A.4 side by side: the B5000 names a segment through
//! a Program Reference Table descriptor (base, extent, presence), while
//! the Rice machine's codeword additionally names an index register
//! whose contents are added on every access — "the equivalent operation
//! on the B5000 would have to be programmed explicitly." This example
//! walks a row-sum loop through both mechanisms and shows the same
//! bounds trap firing on each.
//!
//! ```text
//! cargo run --release --example descriptors_and_codewords
//! ```

use dsa::core::error::AccessFault;
use dsa::core::ids::{PhysAddr, SegId};
use dsa::seg::{Codeword, IndexRegisters, Prt};

fn main() {
    // A 4x8 matrix stored row-major as one 32-word segment, resident at
    // absolute address 1000.
    let rows = 4u64;
    let cols = 8u64;

    // --- B5000: descriptor in a PRT; the program does its own indexing.
    let mut prt = Prt::new();
    prt.declare(SegId(0), rows * cols);
    prt.get_mut(SegId(0))
        .expect("declared")
        .place(PhysAddr(1000));
    println!(
        "B5000 descriptor: {:?}",
        prt.get(SegId(0)).expect("declared")
    );
    let mut b5000_addrs = Vec::new();
    for r in 0..rows {
        // The explicit address arithmetic the B5000 programmer writes:
        let row_base = r * cols;
        for c in 0..cols {
            let addr = prt.resolve(SegId(0), row_base + c).expect("in bounds");
            b5000_addrs.push(addr);
        }
    }

    // --- Rice: a codeword with an index register; the hardware indexes.
    let mut cw = Codeword::absent(SegId(0), rows * cols).with_index(2);
    cw.base = PhysAddr(1000);
    cw.present = true;
    let mut regs = IndexRegisters::new();
    let mut rice_addrs = Vec::new();
    for r in 0..rows {
        // The Rice programmer just sets the register once per row...
        regs.set(2, r * cols);
        for c in 0..cols {
            // ...and the codeword adds it automatically.
            let addr = cw.resolve(c, &regs).expect("in bounds");
            rice_addrs.push(addr);
        }
    }

    assert_eq!(b5000_addrs, rice_addrs);
    println!("codeword (index reg 2): both walks visit identical addresses\n");

    // The off-by-one, on both machines: row index `rows` does not exist.
    let bad = prt.resolve(SegId(0), rows * cols);
    println!("B5000  A[4][0]: {}", bad.expect_err("must trap"));
    regs.set(2, rows * cols);
    let bad = cw.resolve(0, &regs);
    println!("Rice   A[4][0]: {}", bad.expect_err("must trap"));
    assert!(matches!(
        cw.resolve(0, &regs),
        Err(AccessFault::BoundsViolation { .. })
    ));
    println!(
        "\nthe index register moves the arithmetic from the program into the\n\
         addressing hardware — and the bound check rides along, covering\n\
         even the indexed part of the effective address."
    );
}
