//! Dynamic storage allocation systems — an executable reproduction of
//! B. Randell & C. J. Kuehner, *Dynamic Storage Allocation Systems*
//! (ACM Symposium on Operating System Principles, Gatlinburg, 1967;
//! CACM 11(5), 1968).
//!
//! This facade crate re-exports the whole workspace under one name:
//!
//! * [`alloc`] — a *real* allocator built from the same primitives: a
//!   size-class slab heap, Bonwick-style per-thread magazine caches,
//!   and a [`core::alloc::GlobalAlloc`] backend installable with
//!   `#[global_allocator]`, benchmarked against the system allocator;
//! * [`arena`] — the concurrent allocation service: lock-free
//!   fixed-size slabs (uniform units) and a sharded variable-size
//!   arena over the free-list allocators, behind a batching request
//!   port;
//! * [`core`] — the four-axis taxonomy, shared types, faults, advice;
//! * [`storage`] — simulated storage levels, hierarchies, memory,
//!   packing channels;
//! * [`mapping`] — addressing mechanisms: relocation registers, block
//!   maps, the ATLAS frame-associative map, two-level segment+page maps
//!   with associative memories;
//! * [`exec`] — the deterministic parallel simulation engine: grid
//!   fan-out over scoped threads, merged in grid order so any `--jobs`
//!   width reproduces the sequential output byte for byte;
//! * [`faults`] — deterministic fault injection (transfer errors, bad
//!   frames, channel delays, forced allocation failures) and recovery
//!   policies: bounded retry, frame quarantine, graceful degradation;
//! * [`freelist`] — variable-unit allocation: placement policies, the
//!   Rice inactive-block chain, the buddy system, compaction;
//! * [`paging`] — uniform-unit allocation: demand paging and
//!   replacement policies (FIFO, LRU, Clock, Random, the ATLAS learning
//!   program, Belady's MIN, M44 class-random, working set);
//! * [`seg`] — segmentation: descriptors, codewords, dynamic segments,
//!   symbolic and linear name dictionaries;
//! * [`sched`] — multiprogramming, page-wait overlap, space-time
//!   products;
//! * [`stackdist`] — one-pass Mattson stack-distance evaluation: exact
//!   LRU and MIN fault counts for every memory size from one traversal;
//! * [`machines`] — the seven appendix machines as runnable presets;
//! * [`trace`] — deterministic synthetic workloads;
//! * [`metrics`] — stats, histograms, space-time meters, tables;
//! * [`probe`] — structured event tracing: the probe sink trait, the
//!   event vocabulary, and ready-made sinks (counting, latency
//!   histograms, space-time feeding, JSONL recording);
//! * [`telemetry`] — always-on production telemetry over the probe
//!   spine: a lock-free flight recorder, sharded atomic histograms,
//!   fragmentation heatmap sampling, and a Prometheus/JSON exporter.
//!
//! # Quickstart
//!
//! ```
//! use dsa::machines::{atlas, Machine};
//! use dsa::trace::{ProgramCfg, Rng64};
//!
//! let mut rng = Rng64::new(1);
//! let program = ProgramCfg::default().generate(&mut rng);
//! let mut machine = atlas();
//! let report = machine.run(&program.ops).unwrap();
//! assert!(report.touches > 0);
//! ```

pub use dsa_alloc as alloc;
pub use dsa_arena as arena;
pub use dsa_core as core;
pub use dsa_exec as exec;
pub use dsa_faults as faults;
pub use dsa_freelist as freelist;
pub use dsa_machines as machines;
pub use dsa_mapping as mapping;
pub use dsa_metrics as metrics;
pub use dsa_paging as paging;
pub use dsa_probe as probe;
pub use dsa_sched as sched;
pub use dsa_seg as seg;
pub use dsa_stackdist as stackdist;
pub use dsa_storage as storage;
pub use dsa_telemetry as telemetry;
pub use dsa_trace as trace;
